"""Property-based tests (hypothesis) for core invariants."""

import struct

from hypothesis import assume, given, settings, strategies as st

from tests.helpers import execute, ints_to_bytes

from repro.analysis import CodeSizeCostModel, DominatorTree
from repro.ir import (
    BasicBlock,
    BinaryOp,
    Br,
    ConstantInt,
    FunctionType,
    I32,
    IRBuilder,
    Module,
    Ret,
    VOID,
    parse_module,
    print_module,
    run_function,
    verify_module,
)
from repro.rolag import (
    AlignmentGraph,
    RolagConfig,
    SequenceNode,
    roll_loops_in_module,
)
from repro.transforms import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    unroll_loops,
)


# --------------------------------------------------------------------------
# Monotonic sequence detection (paper IV-C1)
# --------------------------------------------------------------------------


@given(
    start=st.integers(min_value=-1000, max_value=1000),
    step=st.integers(min_value=-100, max_value=100),
    lanes=st.integers(min_value=2, max_value=12),
)
@settings(deadline=None)
def test_sequence_detection_exact(start, step, lanes):
    assume(step != 0)
    block = BasicBlock("b")
    ag = AlignmentGraph(block)
    group = [ConstantInt(I32, start + i * step) for i in range(lanes)]
    node = ag._try_sequence(group)
    assert isinstance(node, SequenceNode)
    assert node.start == start
    assert node.step == step


@given(
    values=st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=3, max_size=10
    )
)
@settings(deadline=None)
def test_sequence_detection_rejects_non_arithmetic(values):
    diffs = {values[i] - values[i - 1] for i in range(1, len(values))}
    assume(len(diffs) > 1)  # not an arithmetic progression
    block = BasicBlock("b")
    ag = AlignmentGraph(block)
    group = [ConstantInt(I32, v) for v in values]
    assert ag._try_sequence(group) is None


# --------------------------------------------------------------------------
# Constant folding agrees with the interpreter
# --------------------------------------------------------------------------

_FOLDABLE_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"]


@given(
    ops=st.lists(st.sampled_from(_FOLDABLE_OPS), min_size=1, max_size=6),
    constants=st.lists(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        min_size=2,
        max_size=7,
    ),
)
@settings(max_examples=60, deadline=None)
def test_constant_folding_matches_interpreter(ops, constants):
    assume(len(constants) == len(ops) + 1)
    module = Module()
    fn = module.add_function("f", FunctionType(I32, []))
    block = fn.add_block("entry")
    builder = IRBuilder(block)
    value = builder.i32(constants[0])
    for op, const in zip(ops, constants[1:]):
        value = builder.binop(op, value, builder.i32(const))
    builder.ret(value)
    verify_module(module)

    reference, _ = run_function(module, "f")
    fold_constants(fn)
    verify_module(module)
    folded, _ = run_function(module, "f")
    assert reference == folded


# --------------------------------------------------------------------------
# Printer / parser round trip on randomized straight-line functions
# --------------------------------------------------------------------------


@given(
    data=st.lists(
        st.tuples(
            st.sampled_from(_FOLDABLE_OPS + ["sdiv", "srem"]),
            st.integers(min_value=-100, max_value=100),
        ),
        min_size=1,
        max_size=12,
    ),
    args=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_print_parse_roundtrip_random(data, args):
    module = Module()
    fn = module.add_function(
        "f", FunctionType(I32, [I32] * args), [f"a{i}" for i in range(args)]
    )
    block = fn.add_block("entry")
    builder = IRBuilder(block)
    values = list(fn.arguments)
    for op, const in data:
        lhs = values[len(values) % len(values) - 1]
        value = builder.binop(op, lhs, builder.i32(const if const else 1))
        values.append(value)
    builder.ret(values[-1])
    verify_module(module)

    text1 = print_module(module)
    reparsed = parse_module(text1)
    verify_module(reparsed)
    assert print_module(reparsed) == text1


# --------------------------------------------------------------------------
# Dominator tree vs naive dataflow oracle on random CFGs
# --------------------------------------------------------------------------


def _naive_dominators(fn):
    """Classic O(n^2) dataflow dominance for cross-checking."""
    from repro.analysis.domtree import reverse_postorder

    blocks = reverse_postorder(fn)
    all_ids = {id(b) for b in blocks}
    dom = {id(b): set(all_ids) for b in blocks}
    dom[id(fn.entry)] = {id(fn.entry)}
    changed = True
    while changed:
        changed = False
        for block in blocks[1:]:
            preds = [
                p for p in block.predecessors() if id(p) in all_ids
            ]
            if not preds:
                continue
            new = set.intersection(*(dom[id(p)] for p in preds)) | {id(block)}
            if new != dom[id(block)]:
                dom[id(block)] = new
                changed = True
    return blocks, dom


@given(
    edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=60, deadline=None)
def test_dominators_match_naive_oracle(edges):
    module = Module()
    fn = module.add_function("f", FunctionType(VOID, [__import__("repro.ir", fromlist=["I1"]).I1]))
    blocks = [fn.add_block(f"b{i}") for i in range(8)]
    cond = fn.arguments[0]
    for i, block in enumerate(blocks):
        spec = edges[i % len(edges)]
        src, t, f = spec
        if i == len(blocks) - 1:
            block.append(Ret())
        elif t == f:
            block.append(Br(blocks[t]))
        else:
            block.append(Br(cond, blocks[t], blocks[f]))
    verify_module(module)

    domtree = DominatorTree(fn)
    naive_blocks, naive = _naive_dominators(fn)
    for a in naive_blocks:
        for b in naive_blocks:
            expected = id(a) in naive[id(b)]
            assert domtree.dominates_block(a, b) == expected


# --------------------------------------------------------------------------
# RoLAG end-to-end on random store blocks
# --------------------------------------------------------------------------


@given(
    lanes=st.integers(min_value=2, max_value=10),
    kind=st.sampled_from(["same", "stride", "random", "computed"]),
    stride=st.integers(min_value=1, max_value=4),
    seed_values=st.lists(
        st.integers(min_value=-(2**20), max_value=2**20),
        min_size=10,
        max_size=10,
    ),
)
@settings(max_examples=60, deadline=None)
def test_rolag_random_store_blocks_preserve_semantics(
    lanes, kind, stride, seed_values
):
    # Scalars precede buffers in `execute`'s argument convention.
    lines = ["define void @f(i32 %x, i32* %p) {", "entry:"]
    for i in range(lanes):
        offset = i * stride
        if kind == "same":
            value = f"{seed_values[0]}"
        elif kind == "stride":
            value = f"{seed_values[0] + i * seed_values[1]}"
        elif kind == "random":
            value = f"{seed_values[i]}"
        else:
            lines.append(f"  %v{i} = mul i32 %x, {seed_values[i]}")
            value = f"%v{i}"
        lines.append(
            f"  %g{i} = getelementptr i32, i32* %p, i64 {offset}"
        )
        lines.append(f"  store i32 {value}, i32* %g{i}")
    lines += ["  ret void", "}"]
    source = "\n".join(lines)

    module = parse_module(source)
    buffer = ints_to_bytes([0] * (lanes * stride + 1))
    before = execute(module, "f", [13], buffer_specs=[buffer])
    roll_loops_in_module(module)
    verify_module(module)
    after = execute(module, "f", [13], buffer_specs=[buffer])
    assert before.same_behaviour(after), before.explain_difference(after)


# --------------------------------------------------------------------------
# Unrolling preserves semantics for random loop bodies
# --------------------------------------------------------------------------


@given(
    factor=st.sampled_from([2, 3, 4, 6]),
    trips=st.integers(min_value=1, max_value=4),
    op=st.sampled_from(["add", "xor", "mul"]),
    scale=st.integers(min_value=-50, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_unroll_random_loops_preserve_semantics(factor, trips, op, scale):
    bound = factor * trips
    source = f"""
define i32 @f(i32* %p) {{
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %acc = phi i32 [ 1, %entry ], [ %an, %loop ]
  %g = getelementptr i32, i32* %p, i32 %i
  %v = load i32, i32* %g
  %t = mul i32 %v, {scale if scale else 1}
  store i32 %t, i32* %g
  %an = {op} i32 %acc, %v
  %in = add i32 %i, 1
  %c = icmp slt i32 %in, {bound}
  br i1 %c, label %loop, label %out

out:
  ret i32 %an
}}
"""
    module = parse_module(source)
    buffer = ints_to_bytes(list(range(1, bound + 1)))
    before = execute(module, "f", buffer_specs=[buffer])
    count = unroll_loops(module.get_function("f"), factor)
    assert count == 1
    verify_module(module)
    after = execute(module, "f", buffer_specs=[buffer])
    assert before.same_behaviour(after), before.explain_difference(after)


# --------------------------------------------------------------------------
# Cleanup passes are sound on random expression DAGs
# --------------------------------------------------------------------------


@given(
    picks=st.lists(
        st.tuples(
            st.sampled_from(_FOLDABLE_OPS),
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=60, deadline=None)
def test_cse_dce_sound_on_random_dags(picks):
    module = Module()
    fn = module.add_function("f", FunctionType(I32, [I32, I32]), ["a", "b"])
    block = fn.add_block("entry")
    builder = IRBuilder(block)
    pool = list(fn.arguments)
    for op, li, ri in picks:
        lhs = pool[li % len(pool)]
        rhs = pool[ri % len(pool)]
        pool.append(builder.binop(op, lhs, rhs))
    builder.ret(pool[-1])
    verify_module(module)

    reference, _ = run_function(module, "f", [17, -3])
    eliminate_common_subexpressions(fn)
    eliminate_dead_code(fn)
    verify_module(module)
    optimized, _ = run_function(module, "f", [17, -3])
    assert reference == optimized


# --------------------------------------------------------------------------
# Cost model invariants
# --------------------------------------------------------------------------


@given(
    picks=st.lists(
        st.tuples(
            st.sampled_from(_FOLDABLE_OPS),
            st.integers(min_value=0, max_value=10),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=40, deadline=None)
def test_cost_model_nonnegative_and_additive(picks):
    module = Module()
    fn = module.add_function("f", FunctionType(I32, [I32]), ["a"])
    block = fn.add_block("entry")
    builder = IRBuilder(block)
    pool = [fn.arguments[0]]
    for op, idx in picks:
        pool.append(builder.binop(op, pool[idx % len(pool)], builder.i32(3)))
    builder.ret(pool[-1])

    cm = CodeSizeCostModel()
    per_inst = [cm.instruction_cost(i) for i in block.instructions]
    assert all(c >= 0 for c in per_inst)
    from repro.analysis.costmodel import FUNCTION_OVERHEAD

    assert cm.function_cost(fn) == FUNCTION_OVERHEAD + sum(per_inst)
