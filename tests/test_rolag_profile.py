"""Tests for profile-guided rolling (paper Sec. V-D suggestion)."""

import pytest

from repro.bench.objsize import function_size
from repro.frontend import compile_c
from repro.ir import Machine, verify_module
from repro.rolag import RolagConfig, roll_loops_in_module

#: A module with a hot rollable block (inside a 200-trip loop) and a
#: cold rollable function that runs once.
SOURCE = """
int sink[8];
int out[8];

void hot(int n) {
  for (int iter = 0; iter < n; iter++) {
    sink[0] = iter; sink[1] = iter; sink[2] = iter; sink[3] = iter;
    sink[4] = iter; sink[5] = iter; sink[6] = iter; sink[7] = iter;
  }
}

void cold(void) {
  out[0] = 1; out[1] = 2; out[2] = 3; out[3] = 4;
  out[4] = 5; out[5] = 6; out[6] = 7; out[7] = 8;
}

void main_like(void) {
  hot(200);
  cold();
}
"""


def profile_module(module):
    machine = Machine(module, step_limit=50_000_000)
    machine.call(module.get_function("main_like"), [])
    return dict(machine.block_counts), machine.steps


class TestBlockCounts:
    def test_interpreter_counts_blocks(self):
        module = compile_c(SOURCE)
        counts, _ = profile_module(module)
        hot_counts = [v for (fn, _), v in counts.items() if fn == "hot"]
        assert max(hot_counts) >= 200
        cold_counts = [v for (fn, _), v in counts.items() if fn == "cold"]
        assert max(cold_counts) == 1


class TestProfileGuidedRolling:
    def test_hot_block_skipped_cold_rolled(self):
        module = compile_c(SOURCE)
        profile, _ = profile_module(module)
        config = RolagConfig(profile=profile, hot_block_threshold=100)
        rolled = roll_loops_in_module(module, config=config)
        verify_module(module)
        assert rolled == 1  # only the cold function
        # hot() keeps its straight-line body: one block loop, 8 stores.
        from repro.ir import Store

        hot_fn = module.get_function("hot")
        stores = [i for i in hot_fn.instructions() if isinstance(i, Store)]
        assert len(stores) == 8

    def test_without_profile_both_roll(self):
        module = compile_c(SOURCE)
        rolled = roll_loops_in_module(module)
        assert rolled == 2

    def test_profile_preserves_cold_size_win(self):
        unguided = compile_c(SOURCE)
        roll_loops_in_module(unguided)

        guided = compile_c(SOURCE)
        profile, _ = profile_module(guided)
        roll_loops_in_module(
            guided, config=RolagConfig(profile=profile, hot_block_threshold=100)
        )
        # The cold function shrinks identically under both policies.
        assert function_size(guided.get_function("cold")) == function_size(
            unguided.get_function("cold")
        )

    def test_profile_eliminates_dynamic_overhead(self):
        unguided = compile_c(SOURCE)
        roll_loops_in_module(unguided)
        _, steps_unguided = profile_module(unguided)

        guided = compile_c(SOURCE)
        profile, steps_baseline = profile_module(guided)
        roll_loops_in_module(
            guided, config=RolagConfig(profile=profile, hot_block_threshold=100)
        )
        _, steps_guided = profile_module(guided)

        # Rolling the hot block costs many dynamic instructions; the
        # profile-guided build stays within a whisker of the baseline.
        assert steps_unguided > steps_baseline * 1.5
        assert steps_guided < steps_baseline * 1.05

    def test_threshold_respected(self):
        module = compile_c(SOURCE)
        profile, _ = profile_module(module)
        # A sky-high threshold disables the guard entirely.
        config = RolagConfig(profile=profile, hot_block_threshold=10**9)
        assert roll_loops_in_module(module, config=config) == 2
