"""Chaos-campaign tests: randomized (but seeded) fault storms.

The fast tests pin down plan generation; the actual multi-round
campaign runs under ``-m slow`` like the other long smokes.
"""

import random

import pytest

from repro.faultinject import clear_plan
from repro.faultinject.chaos import (
    SITE_ACTIONS,
    build_chaos_plan,
    run_chaos,
)

pytestmark = pytest.mark.fault


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


class TestChaosPlans:
    def test_plan_generation_is_seeded(self):
        first = build_chaos_plan(random.Random(7), job_count=10)
        again = build_chaos_plan(random.Random(7), job_count=10)
        assert first.spec_string() == again.spec_string()

    def test_plans_stay_on_known_sites(self):
        sites = {site for site, _ in SITE_ACTIONS}
        for seed in range(20):
            plan = build_chaos_plan(random.Random(seed), job_count=10)
            for spec in plan.specs:
                assert spec.site in sites
                # `abort` would os._exit the campaign process on the
                # serial path; the chaos menu must never include it.
                assert spec.action != "abort"

    def test_ir_faults_adds_corrupt_ir_at_every_pass_exit(self):
        plan = build_chaos_plan(
            random.Random(3), job_count=8, ir_faults=True
        )
        ir_specs = {
            spec.site: spec.action
            for spec in plan.specs
            if spec.site.endswith(".exit")
        }
        assert ir_specs == {
            "pipeline.pass.exit": "corrupt-ir",
            "rolag.roll.exit": "corrupt-ir",
        }


@pytest.mark.slow
class TestChaosCampaign:
    def test_campaign_holds_invariants(self, tmp_path):
        report = run_chaos(
            seed=3,
            job_count=8,
            rounds=3,
            workers=2,
            deadline=5.0,
            base_dir=str(tmp_path),
        )
        assert len(report.rounds) == 3
        # Round 0 is fault-free and must be clean.
        assert report.rounds[0].failed == 0
        assert report.ok, report.summary()
        assert "OK" in report.summary()

    @pytest.mark.guard
    def test_validated_ir_storm_commits_no_corruption(self, tmp_path):
        report = run_chaos(
            seed=3,
            job_count=4,
            rounds=3,
            workers=1,
            deadline=10.0,
            base_dir=str(tmp_path),
            validate="safe",
            ir_faults=True,
        )
        assert report.ok, report.summary()
        # Round 0 is fault-free: the gate must stay silent.
        assert report.rounds[0].guard_failures == 0
        # The storm rounds actually exercised the gate...
        assert sum(r.guard_failures for r in report.rounds) > 0
        # ...and nothing semantics-changing got through.
        assert all(r.wrong_outputs == 0 for r in report.rounds)
        assert "guard rollbacks" in report.summary()

    @pytest.mark.guard
    def test_unvalidated_ir_storm_miscompiles(self, tmp_path):
        report = run_chaos(
            seed=3,
            job_count=4,
            rounds=3,
            workers=1,
            deadline=10.0,
            base_dir=str(tmp_path),
            validate="off",
            ir_faults=True,
        )
        # Wrong outputs are informational with the gate off: the same
        # storm the validated campaign survives provably miscompiles.
        assert report.ok, report.summary()
        assert sum(r.wrong_outputs for r in report.rounds) >= 1

    def test_chaos_cli_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "chaos",
            "--seed", "5",
            "--jobs", "6",
            "--rounds", "2",
            "--workers", "2",
            "--base-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "chaos" in out
