"""Chaos-campaign tests: randomized (but seeded) fault storms.

The fast tests pin down plan generation; the actual multi-round
campaign runs under ``-m slow`` like the other long smokes.
"""

import random

import pytest

from repro.faultinject import clear_plan
from repro.faultinject.chaos import (
    SITE_ACTIONS,
    build_chaos_plan,
    run_chaos,
)

pytestmark = pytest.mark.fault


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


class TestChaosPlans:
    def test_plan_generation_is_seeded(self):
        first = build_chaos_plan(random.Random(7), job_count=10)
        again = build_chaos_plan(random.Random(7), job_count=10)
        assert first.spec_string() == again.spec_string()

    def test_plans_stay_on_known_sites(self):
        sites = {site for site, _ in SITE_ACTIONS}
        for seed in range(20):
            plan = build_chaos_plan(random.Random(seed), job_count=10)
            for spec in plan.specs:
                assert spec.site in sites
                # `abort` would os._exit the campaign process on the
                # serial path; the chaos menu must never include it.
                assert spec.action != "abort"


@pytest.mark.slow
class TestChaosCampaign:
    def test_campaign_holds_invariants(self, tmp_path):
        report = run_chaos(
            seed=3,
            job_count=8,
            rounds=3,
            workers=2,
            deadline=5.0,
            base_dir=str(tmp_path),
        )
        assert len(report.rounds) == 3
        # Round 0 is fault-free and must be clean.
        assert report.rounds[0].failed == 0
        assert report.ok, report.summary()
        assert "OK" in report.summary()

    def test_chaos_cli_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "chaos",
            "--seed", "5",
            "--jobs", "6",
            "--rounds", "2",
            "--workers", "2",
            "--base-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "chaos" in out
