"""Tests for loop-aware in-place rerolling (paper Sec. V-C improvement)."""

import pytest

from tests.helpers import execute, ints_to_bytes

from repro.bench import tsvc
from repro.bench.objsize import function_size
from repro.ir import Machine, parse_module, verify_module
from repro.rolag import RolagConfig, RolagStats, roll_loops_in_module
from repro.transforms import unroll_loops

AWARE = RolagConfig(fast_math=True, loop_aware=True)


def run_kernel(module, name):
    machine = Machine(module)
    tsvc.init_machine(machine)
    result = machine.call(module.get_function(name), [])
    contents = {
        k: v
        for k, v in machine.global_contents().items()
        if not k.startswith("__rolag")
    }
    return result, contents


class TestLoopAwareOnTsvc:
    #: Kernels with the canonical unrolled shape (element-wise and
    #: reduction loops) that in-place rerolling should fully recover.
    RECOVERABLE = ["s000", "vpv", "vtv", "vpvtv", "vas", "s451", "s1281",
                   "vdotr", "vsumr", "s312", "s126", "s127"]

    @pytest.mark.parametrize("name", RECOVERABLE)
    def test_recovers_oracle_size(self, name):
        module = tsvc.build_unrolled_kernel(name)
        rolled = roll_loops_in_module(module, config=AWARE)
        verify_module(module)
        assert rolled == 1
        oracle = tsvc.build_kernel(name)
        assert function_size(module.get_function(name)) == function_size(
            oracle.get_function(name)
        )

    @pytest.mark.parametrize("name", RECOVERABLE)
    def test_preserves_semantics(self, name):
        base = tsvc.build_unrolled_kernel(name)
        module = tsvc.build_unrolled_kernel(name)
        roll_loops_in_module(module, config=AWARE)
        verify_module(module)
        assert run_kernel(base, name) == run_kernel(module, name)

    def test_beats_inner_loop_mode(self):
        nested_total = 0
        aware_total = 0
        for name in self.RECOVERABLE:
            nested = tsvc.build_unrolled_kernel(name)
            roll_loops_in_module(nested, config=RolagConfig(fast_math=True))
            nested_total += function_size(nested.get_function(name))
            aware = tsvc.build_unrolled_kernel(name)
            roll_loops_in_module(aware, config=AWARE)
            aware_total += function_size(aware.get_function(name))
        assert aware_total < nested_total


class TestLoopAwareSafety:
    def test_not_applied_without_full_coverage(self):
        # An extra store inside the loop would execute 8x more often if
        # the latch step shrank: loop-aware must refuse; the general
        # path must also stay semantics-preserving.
        src = """
@A = global [32 x i32] zeroinitializer
@S = global i32 0

define void @f() {
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %p = getelementptr [32 x i32], [32 x i32]* @A, i64 0, i32 %i
  store i32 1, i32* %p
  %old = load i32, i32* @S
  %bump = add i32 %old, 1
  store i32 %bump, i32* @S
  %in = add i32 %i, 1
  %c = icmp slt i32 %in, 32
  br i1 %c, label %loop, label %exit

exit:
  ret void
}
"""
        module = parse_module(src)
        unroll_loops(module.get_function("f"), 8)
        verify_module(module)
        before = execute(module, "f")
        roll_loops_in_module(module, config=AWARE)
        verify_module(module)
        after = execute(module, "f")
        assert before.same_behaviour(after), before.explain_difference(after)

    def test_not_applied_to_straight_line_code(self):
        # loop_aware must be a no-op outside loops: general path runs.
        src = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 7, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 7, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 7, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 7, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 7, i32* %p4
  %p5 = getelementptr i32, i32* %p, i64 5
  store i32 7, i32* %p5
  ret void
}
"""
        module = parse_module(src)
        before = execute(module, "f", buffer_specs=[ints_to_bytes([0] * 6)])
        rolled = roll_loops_in_module(module, config=AWARE)
        verify_module(module)
        after = execute(module, "f", buffer_specs=[ints_to_bytes([0] * 6)])
        assert rolled == 1  # general inner-loop path still fires
        assert before.same_behaviour(after)
        fn = module.get_function("f")
        assert len(fn.blocks) == 3  # preheader/loop/exit were created

    def test_step_mismatch_falls_back(self):
        # Unroll by 4 but only 2 lanes align (others differ): the iv
        # stride check must reject in-place rewriting.
        src = """
@A = global [32 x i32] zeroinitializer

define void @f() {
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %p0 = getelementptr [32 x i32], [32 x i32]* @A, i64 0, i32 %i
  store i32 1, i32* %p0
  %i1 = add i32 %i, 1
  %p1 = getelementptr [32 x i32], [32 x i32]* @A, i64 0, i32 %i1
  store i32 2, i32* %p1
  %i2 = add i32 %i, 2
  %p2 = getelementptr [32 x i32], [32 x i32]* @A, i64 0, i32 %i2
  store i32 1, i32* %p2
  %i3 = add i32 %i, 3
  %p3 = getelementptr [32 x i32], [32 x i32]* @A, i64 0, i32 %i3
  store i32 2, i32* %p3
  %in = add i32 %i, 4
  %c = icmp slt i32 %in, 32
  br i1 %c, label %loop, label %exit

exit:
  ret void
}
"""
        module = parse_module(src)
        before = execute(module, "f")
        roll_loops_in_module(module, config=AWARE)
        verify_module(module)
        after = execute(module, "f")
        assert before.same_behaviour(after), before.explain_difference(after)

    def test_whole_tsvc_suite_preserves_semantics(self):
        # Sweep: loop-aware over every kernel, differentially checked.
        failures = []
        for name in tsvc.kernel_names():
            base = tsvc.build_unrolled_kernel(name)
            module = tsvc.build_unrolled_kernel(name)
            roll_loops_in_module(module, config=AWARE)
            verify_module(module)
            if run_kernel(base, name) != run_kernel(module, name):
                failures.append(name)
        assert not failures, failures
