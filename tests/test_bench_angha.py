"""Tests for the synthetic corpus generator and the full-program builder."""

import pytest

from repro.bench import angha, programs
from repro.bench.objsize import function_size, measure_module
from repro.ir import Machine, verify_module
from repro.rolag import roll_loops_in_module


class TestCorpusGenerator:
    def test_deterministic(self):
        c1 = angha.generate_corpus(count=20, seed=5)
        c2 = angha.generate_corpus(count=20, seed=5)
        assert [f.source for f in c1] == [f.source for f in c2]
        assert [f.family for f in c1] == [f.family for f in c2]

    def test_seed_changes_output(self):
        c1 = angha.generate_corpus(count=20, seed=5)
        c2 = angha.generate_corpus(count=20, seed=6)
        assert [f.source for f in c1] != [f.source for f in c2]

    def test_all_families_reachable(self):
        corpus = angha.generate_corpus(count=150, seed=11)
        families = {f.family for f in corpus}
        assert families == set(angha.FAMILIES)

    def test_modules_verify(self):
        for cf in angha.generate_corpus(count=40, seed=3):
            verify_module(cf.module)
            assert cf.module.get_function(cf.name) is not None

    def test_custom_weights(self):
        corpus = angha.generate_corpus(
            count=30,
            seed=1,
            weights={name: 0.0 for name in angha.FAMILIES} | {"tiny": 1.0},
        )
        assert all(f.family == "tiny" for f in corpus)

    def test_rollable_families_roll(self):
        # At least one instance of each rollable family must actually
        # be rolled by RoLAG (the generator exists to exercise it).
        corpus = angha.generate_corpus(count=200, seed=13)
        rolled_families = set()
        for cf in corpus:
            if roll_loops_in_module(cf.module):
                rolled_families.add(cf.family)
        for family in (
            "field_copy", "call_sequence", "chained_calls",
            "dot_product", "array_init", "alternating", "elementwise",
        ):
            assert family in rolled_families, family

    def test_nonrollable_families_do_not_roll(self):
        corpus = angha.generate_corpus(
            count=30,
            seed=17,
            weights={name: 0.0 for name in angha.FAMILIES}
            | {"tiny": 0.5, "irregular": 0.5},
        )
        for cf in corpus:
            assert roll_loops_in_module(cf.module) == 0, cf.source


class TestFieldCopySemantics:
    def test_field_copy_is_a_memcpy(self):
        corpus = angha.generate_corpus(
            count=1,
            seed=99,
            weights={name: 0.0 for name in angha.FAMILIES}
            | {"field_copy": 1.0},
        )
        cf = corpus[0]
        fields = cf.source.count("dst->")
        module = cf.module

        def run(mod):
            machine = Machine(mod)
            dst = machine.alloc(4 * fields)
            src = machine.alloc(4 * fields)
            from repro.ir import I32

            for i in range(fields):
                machine.write_value(src + 4 * i, I32, i * 3 + 1)
            machine.call(mod.get_function(cf.name), [dst, src, 7])
            return machine.read_bytes(dst, 4 * fields)

        before = run(module)
        rolled = roll_loops_in_module(module)
        assert rolled >= 1
        after = run(module)
        assert before == after


class TestPrograms:
    def test_program_specs_cover_table1(self):
        names = {spec.name for spec in programs.PROGRAMS}
        for expected in (
            "typeset", "sha", "ghostscript", "tiff2rgba",
            "657.xz_s", "511.povray_r", "526.blender_r",
        ):
            assert expected in names
        assert len(programs.PROGRAMS) == 21

    def test_build_small_program(self):
        spec = programs.PROGRAMS[1]  # sha: smallest
        module = programs.build_program(spec, scale=0.5)
        verify_module(module)
        report = measure_module(module)
        assert report.text > 0

    def test_function_count_scales_with_kb(self):
        big = programs.PROGRAMS[-1]  # blender
        small = programs.PROGRAMS[1]  # sha
        assert programs.function_count_for(big) > programs.function_count_for(
            small
        )

    def test_program_build_deterministic(self):
        spec = programs.PROGRAMS[3]
        m1 = programs.build_program(spec, scale=0.4)
        m2 = programs.build_program(spec, scale=0.4)
        from repro.ir import print_module

        assert print_module(m1) == print_module(m2)
