"""Transactional pass execution and the online validation gate.

Everything here exercises the real production ladder: snapshots are
captured, passes run, and commits are gated exactly as in a validated
corpus run.  The storm tests replay the ISSUE acceptance scenario --
``corrupt-ir`` injected at every pass exit -- and hold the driver to
the gate's contract with :func:`repro.validation.evidence_check`.
"""

import json
import os
import zlib

import pytest

from repro.bench import angha
from repro.driver import FunctionJob, optimize_functions
from repro.faultinject import clear_plan
from repro.frontend import compile_c
from repro.ir import (
    ConstantInt,
    FunctionSnapshot,
    I32,
    parse_module,
    print_function,
    print_module,
    verify_function,
)
from repro.rolag import RolagConfig
from repro.transforms.pass_manager import PassError
from repro.transforms.txn import TransactionalPassManager
from repro.validation import (
    FAILURE_KINDS,
    GuardReport,
    Validator,
    evidence_check,
)

pytestmark = pytest.mark.guard


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


SRC = """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  ret i32 %b
}
"""

TWO_BLOCK_SRC = """
define i32 @g(i32 %x) {
entry:
  %a = add i32 %x, 1
  br label %exit
exit:
  %b = mul i32 %a, 2
  ret i32 %b
}
"""


def _fn(src=SRC, name="f"):
    module = parse_module(src)
    return module, module.get_function(name)


def bump_constant(fn):
    """Verifier-clean but semantics-changing: the classic miscompile."""
    for block in fn.blocks:
        for inst in block.instructions:
            for index, op in enumerate(inst.operands):
                if isinstance(op, ConstantInt):
                    inst.set_operand(
                        index, ConstantInt(op.type, op.value + 1)
                    )
                    return 1
    return 0


def break_ssa(fn):
    """Malformed output: hoist a user above its definition."""
    insts = fn.blocks[0].instructions
    insts[0], insts[1] = insts[1], insts[0]
    return 1


def explode(fn):
    raise ZeroDivisionError("kaboom")


class TestFunctionSnapshot:
    def test_restore_roundtrip(self):
        module, fn = _fn()
        before = print_function(fn)
        snapshot = FunctionSnapshot(fn)
        assert not snapshot.changed()
        bump_constant(fn)
        break_ssa(fn)
        assert snapshot.changed()
        snapshot.restore()
        assert print_function(fn) == before
        verify_function(fn)
        assert not snapshot.changed()

    def test_identity_preserved_across_restore(self):
        module, fn = _fn()
        block_ids = [id(b) for b in fn.blocks]
        inst_ids = [
            id(i) for b in fn.blocks for i in b.instructions
        ]
        snapshot = FunctionSnapshot(fn)
        first = fn.blocks[0].instructions[0]
        first.replace_all_uses_with(fn.arguments[0])
        first.erase_from_parent()
        snapshot.restore()
        assert [id(b) for b in fn.blocks] == block_ids
        assert [
            id(i) for b in fn.blocks for i in b.instructions
        ] == inst_ids
        verify_function(fn)

    def test_touched_blocks_scoped_to_the_edit(self):
        module, fn = _fn(TWO_BLOCK_SRC, "g")
        snapshot = FunctionSnapshot(fn)
        assert snapshot.touched_blocks() == []
        exit_block = fn.blocks[1]
        exit_block.instructions[0].set_operand(1, ConstantInt(I32, 3))
        assert snapshot.touched_blocks() == [exit_block]
        assert snapshot.changed()

    def test_added_globals_rolled_back(self):
        module, fn = _fn()
        snapshot = FunctionSnapshot(fn)
        module.add_global("__rolag_test", I32)
        assert snapshot.changed()
        snapshot.restore()
        assert module.get_global("__rolag_test") is None


class TestTransactionalRollback:
    def test_semantic_corruption_rolled_back_at_safe(self):
        module, fn = _fn()
        before = print_function(fn)
        validator = Validator("safe", seed=7)
        pm = TransactionalPassManager(verify=False, validator=validator)
        pm.add("evil", bump_constant)
        assert pm.run(module) == 0
        assert print_function(fn) == before
        (report,) = validator.reports
        assert report.pass_name == "evil"
        assert report.function == "f"
        assert report.failure_kind == "semantics"
        assert report.level == "safe"
        assert "@f" in report.ir_diff and "+" in report.ir_diff

    def test_fast_level_misses_semantic_corruption(self):
        # The ladder is honest about what each rung buys: a
        # verifier-clean miscompile sails through `fast`.
        module, fn = _fn()
        before = print_function(fn)
        validator = Validator("fast")
        pm = TransactionalPassManager(verify=False, validator=validator)
        pm.add("evil", bump_constant)
        assert pm.run(module) == 1
        assert print_function(fn) != before
        assert validator.reports == []

    def test_malformed_ir_rolled_back_at_fast(self):
        module, fn = _fn()
        before = print_function(fn)
        validator = Validator("fast")
        pm = TransactionalPassManager(verify=False, validator=validator)
        pm.add("breaker", break_ssa)
        assert pm.run(module) == 0
        assert print_function(fn) == before
        (report,) = validator.reports
        assert report.failure_kind == "verifier"
        assert "dominate" in report.detail

    def test_raising_pass_degrades_one_decision(self):
        module, fn = _fn()
        before = print_function(fn)
        ran = []

        def witness(fn):
            ran.append(fn.name)
            return 0

        validator = Validator("fast")
        pm = TransactionalPassManager(verify=False, validator=validator)
        pm.add("explode", explode).add("witness", witness)
        assert pm.run(module) == 0
        assert ran == ["f"]  # the pipeline continued past the crash
        (report,) = validator.reports
        assert report.failure_kind == "exception"
        assert "ZeroDivisionError" in report.detail
        assert print_function(fn) == before

    def test_level_off_keeps_the_plain_contract(self):
        module, fn = _fn()
        pm = TransactionalPassManager(
            verify=False, validator=Validator("off")
        )
        pm.add("explode", explode)
        with pytest.raises(PassError):
            pm.run(module)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown validation level"):
            Validator("paranoid")


class TestGuardBundles:
    def test_bundle_written_and_self_describing(self, tmp_path):
        module, fn = _fn()
        guard_dir = str(tmp_path / "guards")
        validator = Validator("safe", guard_dir=guard_dir, seed=1)
        pm = TransactionalPassManager(verify=False, validator=validator)
        pm.add("evil", bump_constant)
        pm.run(module)
        (report,) = validator.reports
        assert report.repro_path and os.path.exists(report.repro_path)
        assert os.path.basename(report.repro_path).startswith("f_evil_")
        repro_text = open(report.repro_path).read()
        assert "@f" in repro_text
        sidecar = report.repro_path[:-3] + ".json"
        data = json.loads(open(sidecar).read())
        assert data["pass_name"] == "evil"
        assert data["function"] == "f"
        assert data["failure_kind"] == "semantics"
        summary = GuardReport.from_json_dict(data).summary()
        assert "'evil'" in summary and "@f" in summary
        assert report.repro_path in summary


class TestEvidenceCheck:
    def test_identical_modules_pass(self):
        ok, details = evidence_check(
            parse_module(SRC), parse_module(SRC), seed=7
        )
        assert ok and details == []

    def test_detects_a_miscompile(self):
        module, fn = _fn()
        bump_constant(fn)
        ok, details = evidence_check(parse_module(SRC), module, seed=7)
        assert not ok
        assert details and "@f" in details[0]


#: The ISSUE acceptance plan: semantics-changing corruption at *every*
#: pass exit and every RoLAG rolling decision, unlimited firings.
STORM_PLAN = (
    "pipeline.pass.exit:corrupt-irx*;rolag.roll.exit:corrupt-irx*;seed=13"
)


def _ir_jobs(count, seed=2022):
    # Precompiled IR text keeps the frontend out of the blast radius
    # and gives the evidence oracle a parseable "before" module.
    return [
        FunctionJob(
            name=cs.name,
            ir_text=print_module(compile_c(cs.source, cs.name)),
            metadata=(("family", cs.family),),
        )
        for cs in angha.generate_sources(count=count, seed=seed)
    ]


def _evidence(job, result, config):
    vector_seed = zlib.crc32(job.text.encode("utf-8")) & 0x7FFFFFFF
    return evidence_check(
        parse_module(job.text),
        parse_module(result.optimized_ir),
        seed=vector_seed,
        vectors=config.validate_vectors,
        step_limit=config.validate_step_limit,
        evaluator=config.validate_evaluator,
    )


@pytest.mark.fault
class TestValidatedStorm:
    """Corrupt-ir storm: validated runs commit nothing wrong; the same
    storm unvalidated provably miscompiles (the gate is load-bearing)."""

    def test_safe_storm_commits_no_corruption(self, tmp_path):
        jobs = _ir_jobs(3)
        config = RolagConfig(
            validate="safe", guard_dir=str(tmp_path / "guards")
        )
        report = optimize_functions(
            jobs, config, workers=1, retries=0, retry_backoff=0.0,
            fault_plan=STORM_PLAN,
        )
        assert not any(r.failed for r in report.results)
        assert report.stats.guard_failures > 0
        assert report.stats.guard_failures == sum(
            len(r.guard_reports) for r in report.results
        )
        for job, result in zip(jobs, report.results):
            ok, details = _evidence(job, result, config)
            assert ok, details
        guards = [
            GuardReport.from_json_dict(data)
            for result in report.results
            for data in result.guard_reports
        ]
        assert all(g.failure_kind in FAILURE_KINDS for g in guards)
        with_repro = [g for g in guards if g.repro_path]
        assert with_repro
        for guard in with_repro:
            assert os.path.exists(guard.repro_path)

    def test_same_storm_unvalidated_miscompiles(self):
        jobs = _ir_jobs(3)
        config = RolagConfig()  # validate="off"
        report = optimize_functions(
            jobs, config, workers=1, retries=0, retry_backoff=0.0,
            fault_plan=STORM_PLAN,
        )
        assert report.stats.guard_failures == 0
        wrong = sum(
            1
            for job, result in zip(jobs, report.results)
            if not result.failed and not _evidence(job, result, config)[0]
        )
        assert wrong >= 1

    def test_validate_level_splits_the_cache(self, tmp_path):
        jobs = _ir_jobs(1)
        cache_dir = str(tmp_path / "cache")
        first = optimize_functions(
            jobs, RolagConfig(), workers=1, cache_dir=cache_dir
        )
        assert first.stats.cache_writes == 1
        # A validated rerun must recompute: a result that was never
        # gated is not evidence for a validated configuration.
        second = optimize_functions(
            jobs, RolagConfig(validate="fast"), workers=1,
            cache_dir=cache_dir,
        )
        assert second.stats.cache_hits == 0


@pytest.mark.fault
class TestGuardContextPropagation:
    """Satellite: GuardReport context (pass, function, repro path)
    survives the trip through driver batches and the CLI summary."""

    def _assert_context(self, report):
        assert report.stats.guard_failures > 0
        guards = [
            GuardReport.from_json_dict(data)
            for result in report.results
            for data in result.guard_reports
        ]
        assert guards
        for guard in guards:
            assert guard.pass_name and guard.function
            line = guard.summary()
            assert guard.pass_name in line
            assert f"@{guard.function}" in line
            if guard.repro_path:
                assert os.path.exists(guard.repro_path)
                assert guard.repro_path in line

    def test_serial_batch_carries_guard_context(self, tmp_path):
        jobs = _ir_jobs(2)
        config = RolagConfig(
            validate="safe", guard_dir=str(tmp_path / "guards")
        )
        report = optimize_functions(
            jobs, config, workers=1, retries=0, retry_backoff=0.0,
            fault_plan=STORM_PLAN,
        )
        self._assert_context(report)

    @pytest.mark.parallel
    def test_parallel_batch_carries_guard_context(self, tmp_path):
        jobs = _ir_jobs(4)
        config = RolagConfig(
            validate="safe", guard_dir=str(tmp_path / "guards")
        )
        report = optimize_functions(
            jobs, config, workers=2, retries=0, retry_backoff=0.0,
            fault_plan=STORM_PLAN,
        )
        self._assert_context(report)

    def test_cli_batch_summary_names_pass_function_and_repro(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        paths = []
        for cs in angha.generate_sources(count=2, seed=2022):
            path = tmp_path / f"{cs.name}.c"
            path.write_text(cs.source)
            paths.append(str(path))
        guard_dir = str(tmp_path / "guards")
        code = main(paths + [
            "--roll", "--jobs", "1", "--retries", "0",
            "--validate", "safe", "--guard-dir", guard_dir,
            "--fault-plan", STORM_PLAN,
        ])
        captured = capsys.readouterr()
        # Rollbacks are the gate working, not a run failure.
        assert code == 0, captured.err
        assert "guard rollbacks:" in captured.out
        assert "; GUARD" in captured.err
        assert "rolled back" in captured.err
        assert paths[0] in captured.err or paths[1] in captured.err
        assert os.path.isdir(guard_dir) and os.listdir(guard_dir)
