"""Integration tests for the ``repro serve`` streaming daemon.

The daemon is exercised both **in-process** (an
:class:`~repro.serve.OptimizeService` driven through
:class:`~repro.serve.LoopbackClient`, unthreaded where determinism
matters) and **over a real subprocess pipe** (``python -m repro
serve`` behind :meth:`~repro.serve.ServeClient.spawn`).  Admission
edges -- per-tenant quota, the global backpressure watermark,
cross-tenant structural dedupe -- are pinned with the unthreaded
scheduler: submissions land deterministically before a single
``pump_once`` resolves them, so there are no sleeps and no races.
The chaos acceptance storm rides the shared fault-injection plans
(injected hangs consume *virtual* deadline seconds).
"""

import json
import threading

import pytest

from repro.faultinject import clear_plan
from repro.serve import (
    LoopbackClient,
    OptimizeService,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeError,
    encode_line,
    error_response,
    ok_response,
    parse_request,
    response_error_kind,
)

pytestmark = pytest.mark.serve


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


IR = """
define i32 @f(i32 %n) {
entry:
  %a = add i32 %n, 1
  %b = add i32 %a, 2
  %c = add i32 %b, 3
  ret i32 %c
}
"""

#: The same computation, alpha-renamed: different symbol, different
#: register spellings, identical structure.
IR_RESPELLED = (
    IR.replace("@f", "@g").replace("%a", "%x").replace("%b", "%y")
)


def unthreaded_service(**overrides):
    config = ServeConfig(workers=1, use_cache=False, **overrides)
    service = OptimizeService(config)
    service.start(threaded=False)
    return service


class TestProtocol:
    def test_parse_roundtrip(self):
        line = encode_line(
            {"jsonrpc": "2.0", "id": 3, "method": "ping", "params": {}}
        )
        request = parse_request(line)
        assert request == {"id": 3, "method": "ping", "params": {}}

    def test_unparsable_line_is_parse_error(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request("{nope")
        assert excinfo.value.kind == "parse"

    def test_non_object_request_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request("[1, 2]")
        assert excinfo.value.kind == "invalid"

    def test_missing_method_keeps_request_id(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(json.dumps({"id": 9}))
        assert excinfo.value.req_id == 9

    def test_error_response_carries_typed_kind(self):
        response = error_response(1, "busy", "full up")
        assert response_error_kind(response) == "busy"
        assert response["error"]["code"] == -32000

    def test_ok_response_has_no_kind(self):
        assert response_error_kind(ok_response(1, {"pong": True})) is None


class TestInProcessDaemon:
    def test_ping_optimize_stats_roundtrip(self):
        service = unthreaded_service()
        client = LoopbackClient(service)
        try:
            ticket = client.submit_optimize(
                IR, name="f", tenant="ci", emit_ir=True
            )
            service.pump_once()
            result = client.wait(ticket)["result"]
            assert result["status"] == "ok"
            assert result["name"] == "f"
            assert result["size_before"] > 0
            assert "@f" in result["optimized_ir"]
            assert client.ping()
            stats = client.stats()
            assert stats["accepted"] == 1
            assert stats["completed"] == 1
            assert stats["tenants"]["ci"]["completed"] == 1
            assert stats["latency_p99"] > 0.0
        finally:
            client.close()
        assert not service.alive

    def test_failed_job_is_an_ok_response_with_error_status(self):
        service = unthreaded_service(
            fault_plan="driver.worker.start:raise@1x9", retries=0
        )
        client = LoopbackClient(service)
        try:
            ticket = client.submit_optimize(IR, name="f", emit_ir=True)
            service.pump_once()
            result = client.wait(ticket)["result"]
            assert result["status"] == "error"
            assert result["error_kind"] == "crash"
            # Degraded responses keep the original text: the client
            # can always fall back to its own input.
            assert result["optimized_ir"] == IR
        finally:
            client.close()

    def test_malformed_params_rejected_inline(self):
        service = unthreaded_service()
        client = LoopbackClient(service)
        try:
            with pytest.raises(ServeError) as excinfo:
                client.call("optimize", {"tenant": "ci"})  # no source
            assert excinfo.value.kind == "params"
            with pytest.raises(ServeError) as excinfo:
                client.call("optimize", {"ir": IR, "c": "int f(){}"})
            assert excinfo.value.kind == "params"
            with pytest.raises(ServeError) as excinfo:
                client.call("nope")
            assert excinfo.value.kind == "method"
            assert client.stats()["rejected_invalid"] == 2
        finally:
            client.close()

    def test_cross_tenant_structural_dedupe_executes_once(self):
        service = unthreaded_service()
        client = LoopbackClient(service)
        try:
            first = client.submit_optimize(
                IR, name="f", tenant="alice", emit_ir=True
            )
            second = client.submit_optimize(
                IR_RESPELLED, name="g", tenant="bob", emit_ir=True
            )
            service.pump_once()
            leader = client.wait(first)["result"]
            follower = client.wait(second)["result"]
            assert not leader["dedupe_hit"]
            assert follower["dedupe_hit"]
            # The follower's answer lives in *its* namespace.
            assert "@g" in follower["optimized_ir"]
            assert leader["size_after"] == follower["size_after"]
            stats = client.stats()
            assert stats["dedupe_hits"] == 1
            assert stats["tenants"]["bob"]["dedupe_hits"] == 1
            assert stats["driver"]["executed"] == 1
        finally:
            client.close()

    def test_quota_rejection_is_typed_and_recoverable(self):
        service = unthreaded_service(tenant_quota=2, max_queue=64)
        client = LoopbackClient(service)
        try:
            tickets = [
                client.submit_optimize(IR + f"; v{i}\n", name="f",
                                       tenant="greedy")
                for i in range(2)
            ]
            refused = client.submit_optimize(
                IR + "; v9\n", name="f", tenant="greedy"
            )
            response = client.poll(refused)
            assert response_error_kind(response) == "quota"
            # Another tenant is unaffected by the greedy one's quota.
            other = client.submit_optimize(IR, name="f", tenant="modest")
            assert client.poll(other) is None
            service.pump_once()
            for ticket in tickets + [other]:
                assert client.wait(ticket)["result"]["status"] == "ok"
            # Slots freed: the refused submission now goes through.
            retry = client.submit_optimize(
                IR + "; v9\n", name="f", tenant="greedy"
            )
            service.pump_once()
            assert client.wait(retry)["result"]["status"] == "ok"
            stats = client.stats()
            assert stats["rejected_quota"] == 1
            assert stats["tenants"]["greedy"]["rejected_quota"] == 1
        finally:
            client.close()

    def test_backpressure_watermark_returns_busy(self):
        service = unthreaded_service(max_queue=2, tenant_quota=64)
        client = LoopbackClient(service)
        try:
            for i in range(2):
                client.submit_optimize(
                    IR + f"; v{i}\n", name="f", tenant=f"t{i}"
                )
            refused = client.submit_optimize(IR, name="f", tenant="t9")
            response = client.poll(refused)
            assert response_error_kind(response) == "busy"
            assert response["error"]["code"] == -32000
            service.pump_once()
            # Watermark cleared: same submission is admitted now.
            retry = client.submit_optimize(IR, name="f", tenant="t9")
            assert client.poll(retry) is None
            service.pump_once()
            assert client.wait(retry)["result"]["status"] == "ok"
            assert client.stats()["rejected_busy"] == 1
        finally:
            client.close()

    def test_shared_cache_across_daemon_lifetime(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = OptimizeService(
            ServeConfig(workers=1, cache_dir=cache_dir)
        )
        first.start(threaded=False)
        client = LoopbackClient(first)
        ticket = client.submit_optimize(IR, name="f")
        first.pump_once()
        assert not client.wait(ticket)["result"]["cache_hit"]
        client.close()

        second = OptimizeService(
            ServeConfig(workers=1, cache_dir=cache_dir)
        )
        second.start(threaded=False)
        client = LoopbackClient(second)
        # A *respelling* of the cached job: structural keys must hit.
        ticket = client.submit_optimize(IR_RESPELLED, name="g")
        second.pump_once()
        result = client.wait(ticket)["result"]
        assert result["cache_hit"]
        assert client.stats()["tenants"]["anon"]["cache_hits"] == 1
        client.close()

    def test_drain_refuses_new_work_but_stays_alive(self):
        service = unthreaded_service()
        client = LoopbackClient(service)
        try:
            ticket = client.submit_optimize(IR, name="f")
            assert client.drain() is True
            refused = client.submit_optimize(IR, name="f")
            assert response_error_kind(client.poll(refused)) == (
                "shutting_down"
            )
            # Drained the in-flight job, still answering control traffic.
            assert client.wait(ticket)["result"]["status"] == "ok"
            assert client.ping()
            assert service.alive
        finally:
            client.close()

    def test_stop_degrades_unfinished_work(self):
        service = unthreaded_service()
        client = LoopbackClient(service)
        ticket = client.submit_optimize(IR, name="f", emit_ir=True)
        # Stop without ever pumping: the admitted job must still be
        # answered -- degraded, original text intact.
        service.stop(drain_timeout=0.0)
        response = client.wait(ticket)
        result = response["result"]
        assert result["status"] == "error"
        assert result["error_kind"] == "pool"
        assert result["optimized_ir"] == IR
        assert not service.alive
        service.stop()  # idempotent


class TestConcurrentClients:
    def test_two_threaded_clients_interleave(self):
        service = OptimizeService(ServeConfig(workers=1, use_cache=False))
        service.start(threaded=True)

        outcomes = {}

        def conversation(tag, text, name):
            client = LoopbackClient(service)
            results = [
                client.optimize(
                    text + f"; run{i}\n", name=name, tenant=tag
                )["status"]
                for i in range(3)
            ]
            outcomes[tag] = results
            client.close(shutdown=False)

        threads = [
            threading.Thread(
                target=conversation, args=("alice", IR, "f")
            ),
            threading.Thread(
                target=conversation,
                args=("bob", IR_RESPELLED, "g"),
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        service.stop()
        assert outcomes["alice"] == ["ok", "ok", "ok"]
        assert outcomes["bob"] == ["ok", "ok", "ok"]
        snapshot = service.stats_snapshot()
        assert snapshot["completed"] == 6
        assert set(snapshot["tenants"]) == {"alice", "bob"}


class TestSubprocessDaemon:
    """The real thing: ``python -m repro serve`` over its stdio pipe."""

    def test_pipe_roundtrip_and_clean_exit(self):
        client = ServeClient.spawn("--workers", "1", "--no-cache")
        try:
            assert client.ping()
            first = client.submit_optimize(
                IR, name="f", tenant="alice", emit_ir=True
            )
            second = client.submit_optimize(
                IR_RESPELLED, name="g", tenant="bob"
            )
            leader = client.wait(first)["result"]
            follower = client.wait(second)["result"]
            assert leader["status"] == "ok"
            assert follower["status"] == "ok"
            # In-flight coalescing across the pipe: at most one
            # execution between the two spellings.
            stats = client.stats()
            assert stats["completed"] == 2
            assert (
                stats["driver"]["executed"]
                + stats["driver"]["cache_hits"]
                <= 2
            )
            assert stats["dedupe_hits"] + stats["cache_hits"] >= (
                stats["completed"] - stats["driver"]["executed"]
            )
        finally:
            exit_code = client.close()
        assert exit_code == 0

    def test_eof_shuts_the_daemon_down(self):
        client = ServeClient.spawn("--workers", "1", "--no-cache")
        assert client.ping()
        # Slam the pipe shut with no shutdown handshake: the daemon
        # must notice EOF, drain, and exit zero on its own.
        exit_code = client.close(shutdown=False)
        assert exit_code == 0

    def test_cli_client_prints_batch_table(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "fn.ll"
        source.write_text(IR)
        code = main(["client", str(source), "--", "--workers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fn.ll" in out
        assert "ok" in out


class TestChaosUnderServe:
    """The acceptance storm: seeded faults against the live daemon."""

    def test_storm_holds_service_invariants(self, tmp_path):
        from repro.faultinject.chaos import run_serve_chaos

        report = run_serve_chaos(
            seed=0,
            job_count=12,
            workers=1,
            validate="safe",
            base_dir=str(tmp_path),
        )
        assert report.ok, report.summary()
        # Every admitted job answered; daemon alive throughout.
        assert report.completed == report.accepted
        assert report.pings_ok >= 2
        # The validation gate held: degradation is per-job and typed,
        # wrong outputs are zero even with corrupt-ir faults firing.
        assert report.wrong_outputs == 0
        assert report.success_rate >= 0.99
        # Cross-tenant duplicates coalesced rather than re-executed.
        assert report.duplicates > 0
        assert report.coalesced == report.duplicates

    def test_storm_is_deterministic_per_seed(self, tmp_path):
        from repro.faultinject.chaos import run_serve_chaos

        first = run_serve_chaos(
            seed=5, job_count=6, workers=1,
            base_dir=str(tmp_path / "a"),
        )
        second = run_serve_chaos(
            seed=5, job_count=6, workers=1,
            base_dir=str(tmp_path / "b"),
        )
        assert first.plan == second.plan
        assert first.ok and second.ok
        assert (first.submitted, first.failed, first.coalesced) == (
            second.submitted, second.failed, second.coalesced
        )


@pytest.mark.parallel
class TestPoolServe:
    """Pool-backed daemon: real worker processes behind the scheduler."""

    def test_pool_roundtrip_and_no_orphans(self):
        service = OptimizeService(
            ServeConfig(workers=2, use_cache=False)
        )
        service.start(threaded=True)
        client = LoopbackClient(service)
        try:
            tickets = [
                client.submit_optimize(
                    IR + f"; job{i}\n", name="f", tenant="pool"
                )
                for i in range(4)
            ]
            for ticket in tickets:
                assert client.wait(ticket)["result"]["status"] == "ok"
        finally:
            client.close()
        session = service.scheduler.session
        assert session._executor is None, "pool outlived the daemon"
        assert not service.alive


class TestHttpTransport:
    """The localhost HTTP mode: same handler core, plus header edges."""

    @staticmethod
    def _boot():
        from repro.serve.httpd import serve_http

        service = OptimizeService(
            ServeConfig(workers=1, use_cache=False)
        ).start()
        started = threading.Event()
        address_box = {}
        thread = threading.Thread(
            target=serve_http,
            args=(service, 0, started, address_box),
            daemon=True,
        )
        thread.start()
        assert started.wait(timeout=10.0)
        host, port = address_box["address"]
        return service, thread, host, port

    def test_rpc_roundtrip_and_malformed_content_length(self):
        import http.client

        service, thread, host, port = self._boot()
        try:
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                # Liveness probe.
                conn.request("GET", "/healthz")
                reply = conn.getresponse()
                assert reply.status == 200
                assert json.loads(reply.read())["ok"] is True

                # One optimize round-trip through POST /rpc.
                body = encode_line(
                    {
                        "id": 1,
                        "method": "optimize",
                        "params": {"ir": IR, "name": "f"},
                    }
                )
                conn.request(
                    "POST", "/rpc", body=body.encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                reply = conn.getresponse()
                assert reply.status == 200
                payload = json.loads(reply.read())
                assert payload["result"]["status"] == "ok"

                # A malformed Content-Length must come back as a typed
                # 400, not an aborted connection.
                conn.putrequest("POST", "/rpc")
                conn.putheader("Content-Length", "banana")
                conn.endheaders()
                reply = conn.getresponse()
                assert reply.status == 400
                assert response_error_kind(json.loads(reply.read())) == (
                    "invalid"
                )
            finally:
                conn.close()

            # A shutdown request stops the HTTP server loop too.
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                body = encode_line({"id": 2, "method": "shutdown"})
                conn.request("POST", "/rpc", body=body.encode("utf-8"))
                assert conn.getresponse().status == 200
            finally:
                conn.close()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        finally:
            service.stop()
        assert not service.alive


@pytest.mark.parallel
class TestSubprocessPoolDaemon:
    """Regression: a pool-backed daemon over the real stdio pipe.

    Pool workers are forked from the scheduler thread while the
    transport thread sits inside ``sys.stdin``'s buffered readline;
    before ``serve_stdio`` detached ``sys.stdin``, the forked child
    inherited the held reader lock and deadlocked in multiprocessing's
    ``_close_stdin`` bootstrap -- two distinct concurrent jobs hung
    the client forever.
    """

    def test_two_distinct_jobs_complete_over_pipe(self):
        ir_other = IR.replace("@f", "@h").replace(
            "add i32 %n, 1", "add i32 %n, 7"
        )
        client = ServeClient.spawn("--workers", "2", "--no-cache")
        watchdog = threading.Timer(60.0, client._process.kill)
        watchdog.start()
        try:
            first = client.submit_optimize(IR, name="f", tenant="a")
            second = client.submit_optimize(ir_other, name="h", tenant="b")
            assert client.wait(first)["result"]["status"] == "ok"
            assert client.wait(second)["result"]["status"] == "ok"
        finally:
            watchdog.cancel()
            exit_code = client.close()
        assert exit_code == 0
