"""Tier-1 differential-testing smoke: a bounded fuzzing campaign.

200 fuzzed functions, fixed seed, three vectors each, through the full
cleanup + reroll + RoLAG pipeline.  This is the standing guard against
miscompiles; the heavyweight campaigns run via ``repro difftest``.
Budgeted to stay well under ten seconds.
"""

import time

import pytest

from repro.difftest import run_difftest

SMOKE_SEED = 0
SMOKE_COUNT = 200


@pytest.mark.difftest
def test_smoke_campaign_finds_no_mismatches():
    start = time.monotonic()
    report = run_difftest(seed=SMOKE_SEED, count=SMOKE_COUNT)
    elapsed = time.monotonic() - start

    assert report.ok, report.summary()
    assert report.mismatches == []
    assert report.unexplained == []
    # The campaign genuinely exercises the transform under test ...
    assert report.rolled_loops > 0
    # ... and the trap-preservation half of the oracle.
    assert report.trap_cases > 0
    assert elapsed < 10.0, f"smoke campaign took {elapsed:.1f}s"
