"""Tier-1 differential-testing smoke: a bounded fuzzing campaign.

200 fuzzed functions, fixed seed, three vectors each, through the full
cleanup + reroll + RoLAG pipeline.  This is the standing guard against
miscompiles; the heavyweight campaigns run via ``repro difftest``.
Budgeted to stay well under ten seconds.
"""

import time

import pytest

from repro.difftest import run_difftest

SMOKE_SEED = 0
SMOKE_COUNT = 200


@pytest.mark.difftest
def test_smoke_campaign_finds_no_mismatches():
    start = time.monotonic()
    report = run_difftest(seed=SMOKE_SEED, count=SMOKE_COUNT)
    elapsed = time.monotonic() - start

    assert report.ok, report.summary()
    assert report.mismatches == []
    assert report.unexplained == []
    # The campaign genuinely exercises the transform under test ...
    assert report.rolled_loops > 0
    # ... and the trap-preservation half of the oracle.
    assert report.trap_cases > 0
    assert elapsed < 10.0, f"smoke campaign took {elapsed:.1f}s"


# --------------------------------------------------------------------------
# Fault injection: campaigns degrade to structured reports, never
# tracebacks.
# --------------------------------------------------------------------------

from repro.difftest.bisect import bisect_pipeline
from repro.difftest.oracle import ArgumentVector
from repro.difftest.runner import check_module_semantics
from repro.faultinject import FaultPlan, active_plan, clear_plan
from repro.frontend import compile_c
from repro.ir import print_module


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


@pytest.mark.fault
class TestDifftestUnderFaults:
    def test_evaluator_fault_becomes_report_error(self):
        plan = FaultPlan.parse("difftest.observe:raise@3x*")
        with active_plan(plan):
            report = run_difftest(seed=0, count=5)
        assert not report.ok
        assert report.errors
        assert any("InjectedFault" in note for note in report.errors)
        # The campaign still completed and can describe itself.
        assert "ERROR" in report.summary()
        assert report.mismatches == []

    def test_case_deadline_is_a_structured_error(self):
        # The 5th observation stalls "forever" in virtual time; the
        # per-case deadline catches it and the campaign moves on.
        plan = FaultPlan.parse("difftest.observe:hang@5")
        with active_plan(plan):
            report = run_difftest(seed=0, count=5, case_deadline=2.0)
        assert not report.ok
        assert any("case deadline exceeded" in n for n in report.errors)
        # Only the faulted case errored.
        assert len(report.errors) == 1

    def test_fault_free_plan_changes_nothing(self):
        plan = FaultPlan.parse("unmatched.site:raise@1x*")
        with active_plan(plan):
            report = run_difftest(seed=0, count=10)
        assert report.ok, report.summary()

    def test_bisector_names_a_raising_stage(self):
        ir_text = print_module(compile_c("int f(int x) { return x + 2; }"))

        def boom(module):
            raise RuntimeError("injected stage failure")

        record = bisect_pipeline(
            ir_text,
            "f",
            stages=[("identity", lambda m: None), ("boom", boom)],
            vectors=[ArgumentVector(values=(3,))],
            origin="unit",
        )
        assert record is not None
        assert record.stage == "boom"
        assert record.actual.trap_kind == "stage-error"
        assert "stage raised: RuntimeError" in record.detail

    def test_check_module_semantics_reports_evaluator_error(self):
        source = "int g(int x) { return x * 3; }"
        original = compile_c(source)
        transformed = compile_c(source)
        plan = FaultPlan.parse("difftest.observe:raise@1")
        with active_plan(plan):
            ok, details = check_module_semantics(
                original, transformed, seed=1
            )
        assert not ok
        assert any("evaluator error" in d for d in details)
