"""Lazy module parsing: round-trip fidelity and materialization rules.

``parse_module(source, lazy=True)`` scans top-level structure only and
defers each function body until ``fn.blocks`` is first touched.  These
tests pin the contract: lazy and eager parses print byte-identically,
``is_declaration`` never forces a body, bodies materialize exactly
once, and a body whose parse fails surfaces the same ParseError
(with position) on every touch.
"""

import pytest

from repro.difftest.fuzzer import FunctionFuzzer
from repro.ir import (
    ParseError,
    parse_module,
    print_module,
    verify_module,
)
from repro.ir.parser import LazyFunction


MULTI_FUNCTION = """
declare i32 @ext(i32)

@G = global [4 x i32] [i32 1, i32 2, i32 3, i32 4]

define i32 @first(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define i32 @second(i32 %n) {
entry:
  %start = icmp slt i32 0, %n
  br i1 %start, label %loop, label %done
loop:
  %i = phi i32 [ 0, %entry ], [ %next, %loop ]
  %acc = phi i32 [ 0, %entry ], [ %sum, %loop ]
  %sum = add i32 %acc, %i
  %next = add i32 %i, 1
  %more = icmp slt i32 %next, %n
  br i1 %more, label %loop, label %done
done:
  %r = phi i32 [ 0, %entry ], [ %sum, %loop ]
  %c = call i32 @ext(i32 %r)
  ret i32 %c
}

define i32 @third() {
entry:
  %p = getelementptr [4 x i32], [4 x i32]* @G, i64 0, i64 2
  %v = load i32, i32* %p
  ret i32 %v
}
"""


def test_lazy_round_trip_matches_eager():
    eager = print_module(parse_module(MULTI_FUNCTION))
    lazy = print_module(parse_module(MULTI_FUNCTION, lazy=True))
    assert lazy == eager


def test_lazy_round_trip_matches_eager_on_fuzzed_corpus():
    fuzzer = FunctionFuzzer(7)
    for index in range(25):
        module, _ = fuzzer.build(index)
        source = print_module(module)
        eager = print_module(parse_module(source))
        lazy = print_module(parse_module(source, lazy=True))
        assert lazy == eager, f"case {index} diverged"


def test_lazy_module_verifies_after_forcing():
    module = parse_module(MULTI_FUNCTION, lazy=True)
    verify_module(module)


def test_is_declaration_does_not_force():
    module = parse_module(MULTI_FUNCTION, lazy=True)
    fn = module.get_function("second")
    assert isinstance(fn, LazyFunction)
    assert not fn.is_materialized
    assert not fn.is_declaration
    assert not fn.is_materialized, "is_declaration must not force the body"
    decl = module.get_function("ext")
    assert decl.is_declaration


def test_body_materializes_once_on_first_touch():
    module = parse_module(MULTI_FUNCTION, lazy=True)
    fn = module.get_function("second")
    assert not fn.is_materialized
    blocks = fn.blocks
    assert fn.is_materialized
    assert [b.name for b in blocks] == ["entry", "loop", "done"]
    assert fn.blocks is blocks, "second touch must reuse the parsed body"


def test_untouched_functions_stay_unmaterialized():
    module = parse_module(MULTI_FUNCTION, lazy=True)
    first = module.get_function("first")
    third = module.get_function("third")
    _ = first.blocks
    assert first.is_materialized
    assert not third.is_materialized


BROKEN_BODY = """
define i32 @fine() {
entry:
  ret i32 0
}

define i32 @broken(i32 %x) {
entry:
  %r = add i32 %x, %undefined_op
  ret i32 %r
}
"""


def test_eager_parse_raises_for_broken_body():
    with pytest.raises(ParseError):
        parse_module(BROKEN_BODY)


def test_lazy_body_error_raises_on_every_touch():
    module = parse_module(BROKEN_BODY, lazy=True)  # top-level scan succeeds
    fine = module.get_function("fine")
    assert [b.name for b in fine.blocks] == ["entry"]

    broken = module.get_function("broken")
    with pytest.raises(ParseError) as first:
        broken.blocks
    with pytest.raises(ParseError) as second:
        broken.blocks
    assert str(first.value) == str(second.value)
    # The message carries the line:column of the offending token.
    assert "%undefined_op" in str(first.value) or "undefined" in str(
        first.value
    )
    assert first.value.line is not None
    assert first.value.column is not None
    # A failed body never counts as a declaration.
    assert not broken.is_declaration
    assert not broken.is_materialized
