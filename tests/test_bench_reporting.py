"""Tests for the reporting helpers, the size metric, and the pass manager."""

import pytest

from repro.analysis import CodeSizeCostModel
from repro.bench import (
    SizeReport,
    ascii_curve,
    format_table,
    function_size,
    histogram,
    measure_module,
    reduction_percent,
)
from repro.ir import parse_module
from repro.transforms import PassManager, default_cleanup_pipeline


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["Name", "Value"], [("a", 1), ("longer", 123456)]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("Name")
        widths = {len(line) for line in lines}
        assert len(widths) <= 2  # header may differ by trailing spaces

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text


class TestAsciiCurve:
    def test_empty(self):
        assert ascii_curve([]) == "(empty series)"

    def test_contains_extremes(self):
        curve = ascii_curve([50.0] * 10 + [0.0] * 10, height=8, width=20)
        assert "50.0" in curve
        assert "*" in curve

    def test_negative_values(self):
        curve = ascii_curve([10.0, 5.0, -20.0])
        assert "-20.0" in curve

    def test_label(self):
        curve = ascii_curve([1.0], label="hello")
        assert curve.splitlines()[0] == "hello"

    def test_downsampling_long_series(self):
        curve = ascii_curve(list(float(x) for x in range(1000)), width=40)
        # Must not exceed requested width (plus the axis prefix).
        for line in curve.splitlines():
            assert len(line) <= 40 + 10


class TestHistogram:
    def test_empty(self):
        assert histogram({}) == "(no data)"

    def test_sorted_by_count(self):
        text = histogram({"small": 1, "big": 100, "mid": 10})
        lines = [l for l in text.splitlines() if l.strip()]
        assert lines[0].split()[0] == "big"
        assert lines[-1].split()[0] == "small"

    def test_percentages_sum(self):
        text = histogram({"a": 50, "b": 50})
        assert "50.0%" in text


class TestObjSize:
    MODULE = """
@G = global [4 x i32] zeroinitializer

declare void @ext()

define void @f() {
entry:
  ret void
}

define i32 @g(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
"""

    def test_measure_module(self):
        m = parse_module(self.MODULE)
        report = measure_module(m)
        assert set(report.per_function) == {"f", "g"}
        assert report.text == sum(report.per_function.values())
        assert report.data == 16
        assert report.total == report.text + report.data

    def test_function_size_matches_cost_model(self):
        m = parse_module(self.MODULE)
        cm = CodeSizeCostModel()
        assert function_size(m.get_function("g"), cm) == cm.function_cost(
            m.get_function("g")
        )

    def test_reduction_percent(self):
        assert reduction_percent(100, 80) == 20.0
        assert reduction_percent(100, 120) == -20.0
        assert reduction_percent(0, 0) == 0.0


class TestPassManager:
    def test_change_accounting(self):
        m = parse_module(
            """
define i32 @f() {
entry:
  %a = add i32 2, 3
  %dead = mul i32 %a, 0
  ret i32 %a
}
"""
        )
        pm = default_cleanup_pipeline()
        changed = pm.run(m)
        assert changed > 0
        assert pm.changes.get("constfold", 0) + pm.changes.get(
            "constfold2", 0
        ) >= 1

    def test_verify_catches_broken_pass(self):
        from repro.ir import VerificationError
        from repro.transforms.pass_manager import PassError

        def breaker(fn):
            # Remove the terminator: invalid IR.
            fn.entry.instructions.pop()
            return 1

        m = parse_module("define void @f() {\nentry:\n  ret void\n}")
        pm = PassManager(verify=True)
        pm.add("breaker", breaker)
        # The verifier failure is wrapped with pass + function context.
        with pytest.raises(PassError) as info:
            pm.run(m)
        assert info.value.pass_name == "breaker"
        assert isinstance(info.value.__cause__, VerificationError)

    def test_declarations_skipped(self):
        m = parse_module("declare void @x()")
        pm = default_cleanup_pipeline()
        assert pm.run(m) == 0
