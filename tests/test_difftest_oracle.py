"""Unit tests for the difftest subsystem itself: fuzzer determinism
and shape coverage, observation comparison, pass bisection, and the
driver/CLI integration points.
"""

import pytest

from repro.difftest import (
    FunctionFuzzer,
    FuzzConfig,
    Observation,
    bisect_pipeline,
    check_module_semantics,
    compare_observations,
    default_pipeline,
    make_argument_vectors,
    minimize_record,
    observe_call,
)
from repro.ir import parse_module, print_module, verify_module


class TestFuzzer:
    def test_deterministic_per_seed_and_index(self):
        a = FunctionFuzzer(7).build(3)
        b = FunctionFuzzer(7).build(3)
        assert print_module(a[0]) == print_module(b[0])

    def test_distinct_across_indices(self):
        fuzzer = FunctionFuzzer(7)
        texts = {print_module(fuzzer.build(i)[0]) for i in range(10)}
        assert len(texts) > 1

    def test_output_verifies_and_round_trips(self):
        fuzzer = FunctionFuzzer(11)
        for index in range(20):
            module, fn_name = fuzzer.build(index)
            verify_module(module)
            text = print_module(module)
            reparsed = parse_module(text)
            verify_module(reparsed)
            assert print_module(reparsed) == text
            assert reparsed.get_function(fn_name) is not None

    def test_produces_rollable_material(self):
        # The generator is biased toward RoLAG shapes; over a small
        # corpus the pipeline must actually roll something.
        from repro.rolag import roll_loops_in_module

        fuzzer = FunctionFuzzer(0)
        rolled = 0
        for index in range(30):
            module, _ = fuzzer.build(index)
            rolled += roll_loops_in_module(module)
        assert rolled > 0


class TestObservation:
    TEXT = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  ret i32 %q
}
"""

    def _observe(self, a, b):
        from repro.difftest.oracle import ArgumentVector

        module = parse_module(self.TEXT)
        return observe_call(module, "f", ArgumentVector((a, b)))

    def test_ok_and_trap_statuses(self):
        assert self._observe(10, 2).status == "ok"
        assert self._observe(10, 2).result == 5
        trapped = self._observe(10, 0)
        assert trapped.status == "trap"
        assert trapped.trap_kind == "div-by-zero"

    def test_observation_determinism(self):
        assert self._observe(9, 3) == self._observe(9, 3)

    def test_compare_rules(self):
        ok1 = Observation(status="ok", result=1)
        ok2 = Observation(status="ok", result=2)
        trap_a = Observation(status="trap", trap_kind="div-by-zero")
        trap_b = Observation(status="trap", trap_kind="oob")
        timeout = Observation(status="timeout")
        assert compare_observations(ok1, ok1) is None
        assert compare_observations(ok1, ok2) is not None
        assert compare_observations(ok1, trap_a) is not None
        # Both trapping: equal even across trap kinds (which fault
        # fires first is implementation-defined under rolling).
        assert compare_observations(trap_a, trap_b) is None
        # Timeouts are inconclusive, never mismatches.
        assert compare_observations(ok1, timeout) is None
        assert compare_observations(timeout, trap_a) is None

    def test_vectors_match_signature_and_are_deterministic(self):
        module = parse_module(self.TEXT)
        fn = module.get_function("f")
        first = make_argument_vectors(fn, seed=5, count=4)
        second = make_argument_vectors(fn, seed=5, count=4)
        assert first == second
        assert all(len(v.values) == 2 for v in first)


class TestBisect:
    TEXT = """
define i32 @f(i32 %a) {
entry:
  %t = add i32 %a, 1
  %u = mul i32 %t, 2
  ret i32 %u
}
"""

    def _broken_stage(self, module):
        # A deliberately miscompiling "pass": constants bump by one.
        from repro.ir.instructions import BinaryOp
        from repro.ir.values import ConstantInt

        for fn in module.functions:
            for block in fn.blocks:
                for inst in block.instructions:
                    if isinstance(inst, BinaryOp) and inst.opcode == "mul":
                        rhs = inst.operands[1]
                        if isinstance(rhs, ConstantInt):
                            inst.set_operand(
                                1, ConstantInt(rhs.type, rhs.value + 1)
                            )
        return 1

    def test_names_the_guilty_pass(self):
        module = parse_module(self.TEXT)
        fn = module.get_function("f")
        vectors = make_argument_vectors(fn, seed=1, count=3)
        stages = [
            ("harmless", lambda m: 0),
            ("evil", self._broken_stage),
            ("harmless2", lambda m: 0),
        ]
        record = bisect_pipeline(self.TEXT, "f", stages, vectors)
        assert record is not None
        assert record.stage == "evil"
        assert "result" in record.detail
        # The repro text parses and carries the provenance comments.
        text = record.to_text()
        assert "guilty pass: evil" in text
        ir_only = "\n".join(
            line for line in text.splitlines() if not line.startswith(";")
        )
        verify_module(parse_module(ir_only))

    def test_clean_pipeline_reports_none(self):
        module = parse_module(self.TEXT)
        fn = module.get_function("f")
        vectors = make_argument_vectors(fn, seed=1, count=3)
        assert bisect_pipeline(self.TEXT, "f", default_pipeline(), vectors) is None

    def test_minimize_keeps_the_mismatch(self):
        padded = """
define i32 @f(i32 %a) {
entry:
  %noise1 = add i32 %a, 40
  %noise2 = xor i32 %a, 9
  %t = add i32 %a, 1
  %u = mul i32 %t, 2
  ret i32 %u
}
"""
        module = parse_module(padded)
        fn = module.get_function("f")
        vectors = make_argument_vectors(fn, seed=1, count=3)
        stages = [("evil", self._broken_stage)]
        record = bisect_pipeline(padded, "f", stages, vectors)
        assert record is not None
        minimized = minimize_record(record, stages)
        assert minimized.stage == "evil"
        assert "noise1" not in minimized.ir_before
        assert "noise2" not in minimized.ir_before


class TestCheckModuleSemantics:
    def test_equal_modules_pass(self):
        text = TestBisect.TEXT
        ok, details = check_module_semantics(
            parse_module(text), parse_module(text), seed=3
        )
        assert ok and details == []

    def test_detects_divergence(self):
        original = parse_module(TestBisect.TEXT)
        broken = parse_module(TestBisect.TEXT.replace("add i32 %a, 1",
                                                      "add i32 %a, 2"))
        ok, details = check_module_semantics(original, broken, seed=3)
        assert not ok
        assert details and "@f" in details[0]

    def test_missing_function_is_reported(self):
        original = parse_module(TestBisect.TEXT)
        empty = parse_module("define i32 @g(i32 %a) {\nentry:\n  ret i32 %a\n}\n")
        ok, details = check_module_semantics(original, empty, seed=3)
        assert not ok
        assert "missing" in details[0]


class TestDriverIntegration:
    C_SOURCE = "int f(int* p) { p[0]=1; p[1]=2; p[2]=3; p[3]=4; return 0; }\n"

    def test_check_semantics_rides_the_result(self, tmp_path):
        from repro.driver import FunctionJob, optimize_functions

        jobs = [FunctionJob(name=None, c_source=self.C_SOURCE)]
        report = optimize_functions(
            jobs, workers=1, check_semantics=True,
            cache_dir=str(tmp_path), use_cache=True,
        )
        result = report.results[0]
        assert result.semantics_checked
        assert result.semantics_ok is True
        assert result.semantics_mismatches == []
        assert result.rolag_rolled >= 1

        # The verdict survives the memo cache round-trip.
        warm = optimize_functions(
            jobs, workers=1, check_semantics=True,
            cache_dir=str(tmp_path), use_cache=True,
        )
        assert warm.stats.cache_hits == 1
        assert warm.results[0].semantics_ok is True
        assert warm.results[0].semantics_checked

        # An unchecked request must not be served the checked entry's
        # key (and vice versa): different key, so it recomputes.
        unchecked = optimize_functions(
            jobs, workers=1, check_semantics=False,
            cache_dir=str(tmp_path), use_cache=True,
        )
        assert unchecked.stats.cache_hits == 0
        assert unchecked.results[0].semantics_checked is False
        assert unchecked.results[0].semantics_ok is None

    def test_cli_difftest_subcommand(self, capsys):
        from repro.cli import main

        code = main(["difftest", "--seed", "3", "--count", "5", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no unexplained mismatches" in out
