"""Alpha-invariant structural hashing: the properties the cache rests on.

The driver's memo cache and in-batch dedupe treat two modules as "the
same work" exactly when their structural fingerprints match, so these
tests pin both directions: every *naming/spelling* change the
fingerprint promises to erase (value renames, block-label renames,
defined-function renames, reachable-block reordering, comments and
whitespace) must leave it fixed, and every *semantic* change -- the
``corrupt-ir`` fault actions, the same miscompile simulator the
validation tests use -- must move it.  The closing fuzz loop checks
the central guarantee directly: hash-equal implies print-equal after
canonical renaming.
"""

import pytest

from repro.difftest.fuzzer import FunctionFuzzer
from repro.faultinject import FaultPlan
from repro.ir import (
    canonical_function_text,
    canonical_module_text,
    compose_witness_renames,
    parse_module,
    print_module,
    rename_function_locals,
    rename_globals,
    structural_eq,
    structural_fingerprint,
    structural_summary,
    verify_module,
)

BRANCHY = """
define i32 @max3(i32 %a, i32 %b, i32 %c) {
entry:
  %ab = icmp sgt i32 %a, %b
  br i1 %ab, label %left, label %right
left:
  %lc = icmp sgt i32 %a, %c
  br i1 %lc, label %done, label %usec
right:
  %rc = icmp sgt i32 %b, %c
  br i1 %rc, label %useb, label %usec
useb:
  br label %done
usec:
  br label %done
done:
  %best = phi i32 [ %a, %left ], [ %b, %useb ], [ %c, %usec ]
  ret i32 %best
}
"""


def _fp(source):
    return structural_fingerprint(parse_module(source))


class TestInvariance:
    def test_value_and_argument_renames_preserve_hash(self):
        renamed = (
            BRANCHY.replace("%a", "%first")
            .replace("%best", "%winner")
            .replace("%lc", "%cmp0")
        )
        assert renamed != BRANCHY
        assert _fp(renamed) == _fp(BRANCHY)

    def test_block_label_renames_preserve_hash(self):
        renamed = (
            BRANCHY.replace("%left", "%bb1").replace("left:", "bb1:")
            .replace("%done", "%exit").replace("done:", "exit:")
        )
        assert _fp(renamed) == _fp(BRANCHY)

    def test_defined_function_rename_preserves_hash(self):
        renamed = BRANCHY.replace("@max3", "@pick_largest")
        assert _fp(renamed) == _fp(BRANCHY)

    def test_reachable_block_reorder_preserves_hash(self):
        # Textually move ``usec`` before ``useb``: the CFG is unchanged,
        # so the RPO the canonical form prints is unchanged.
        lines = BRANCHY.strip().splitlines()
        useb = lines.index("useb:")
        usec = lines.index("usec:")
        reordered = "\n".join(
            lines[:useb] + lines[usec:usec + 2] + lines[useb:useb + 2]
            + lines[usec + 2:]
        )
        assert reordered != BRANCHY.strip()
        parse_module(reordered)  # still well-formed
        assert _fp(reordered) == _fp(BRANCHY)

    def test_comments_and_whitespace_preserve_hash(self):
        noisy = BRANCHY.replace(
            "entry:", "entry:  ; the entry block"
        ).replace("  %ab =", "\n  ; compare the first pair\n    %ab =")
        assert _fp(noisy) == _fp(BRANCHY)

    def test_structural_eq_agrees_with_fingerprint(self):
        a = parse_module(BRANCHY)
        b = parse_module(BRANCHY.replace("%a", "%x").replace("@max3", "@m"))
        assert structural_eq(a, b)
        assert structural_fingerprint(a) == structural_fingerprint(b)


#: The corrupt-ir mutator needs material to bite on: integer-constant
#: operands to bump, or non-commutative binary ops to swap.
MUTABLE = """
define i32 @poly(i32 %x) {
entry:
  %sq = mul i32 %x, %x
  %scaled = mul i32 %sq, 3
  %shifted = sub i32 %scaled, %x
  %r = add i32 %shifted, 17
  ret i32 %r
}
"""


class TestSensitivity:
    def _corrupted(self, seed):
        """MUTABLE with one injected semantic edit (verifier-clean)."""
        module = parse_module(MUTABLE)
        plan = FaultPlan.parse(f"probe:corrupt-ir;seed={seed}")
        plan.visit("probe", ir_fn=module.functions[0])
        verify_module(module)
        return module

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_semantic_edits_change_hash(self, seed):
        baseline = _fp(MUTABLE)
        corrupted = self._corrupted(seed)
        assert print_module(corrupted) != print_module(parse_module(MUTABLE))
        assert structural_fingerprint(corrupted) != baseline

    def test_extern_names_are_observable(self):
        # Calling @ext versus @other is a different extern trace even
        # though the call graphs are isomorphic.
        src = (
            "declare i32 @ext(i32)\n"
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %r = call i32 @ext(i32 %x)\n  ret i32 %r\n}\n"
        )
        other = src.replace("@ext", "@other")
        assert _fp(src) != _fp(other)

    def test_function_attributes_are_observable(self):
        module = parse_module(BRANCHY)
        baseline = structural_fingerprint(module)
        module.functions[0].attributes.add("readnone")
        assert structural_fingerprint(module) != baseline

    def test_unreachable_block_order_is_not_erased(self):
        # Unreachable blocks sit outside the RPO; their list order is
        # part of the identity (documented limitation, pinned here).
        src = (
            "define i32 @f() {\nentry:\n  ret i32 0\n"
            "dead1:\n  ret i32 1\ndead2:\n  ret i32 2\n}\n"
        )
        swapped = (
            "define i32 @f() {\nentry:\n  ret i32 0\n"
            "dead2:\n  ret i32 2\ndead1:\n  ret i32 1\n}\n"
        )
        assert _fp(src) != _fp(swapped)


class TestWitnesses:
    def test_witness_rewrites_leader_text_into_follower_namespace(self):
        follower_src = (
            BRANCHY.replace("%a", "%x").replace("%b", "%y")
            .replace("%best", "%top").replace("@max3", "@largest")
        )
        leader = structural_summary(parse_module(BRANCHY))
        follower = structural_summary(parse_module(follower_src))
        assert leader.fingerprint == follower.fingerprint
        locals_map, globals_map = compose_witness_renames(leader, follower)
        rewritten = rename_globals(
            rename_function_locals(BRANCHY, locals_map), globals_map
        )
        assert print_module(parse_module(rewritten)) == print_module(
            parse_module(follower_src)
        )

    def test_canonical_target_maps_defined_functions(self):
        summary = structural_summary(parse_module(BRANCHY))
        assert summary.canonical_target("max3") == "f$0"
        assert summary.canonical_target("not_defined") == "not_defined"
        assert summary.canonical_target(None) is None


class TestFuzzedGuarantee:
    def test_hash_equal_implies_canonical_print_equal(self):
        """The central guarantee, fuzzed: fingerprints partition a
        corpus exactly as canonical prints do."""
        fuzzer = FunctionFuzzer(7)
        by_fp = {}
        for index in range(60):
            module, _ = fuzzer.build(index)
            verify_module(module)
            fp = structural_fingerprint(module)
            text = canonical_module_text(module)
            assert by_fp.setdefault(fp, text) == text
            # And the fingerprint survives a full print -> parse trip.
            assert structural_fingerprint(
                parse_module(print_module(module))
            ) == fp

    def test_fuzzed_rename_perturbation_is_invariant(self):
        """Renaming every local through the canonical form and back via
        real text renaming never moves the fingerprint."""
        fuzzer = FunctionFuzzer(11)
        checked = 0
        for index in range(30):
            module, fn_name = fuzzer.build(index)
            source = print_module(module)
            summary = structural_summary(module)
            canonical = summary.canonical_target(fn_name)
            locals_map = {fn_name: summary.fn_renames.get(canonical, {})}
            if not locals_map[fn_name]:
                continue
            perturbed = rename_globals(
                rename_function_locals(source, locals_map),
                {fn_name: canonical},
            )
            assert perturbed != source
            assert _fp(perturbed) == summary.fingerprint
            checked += 1
        assert checked >= 20

    def test_canonical_function_text_is_shared_by_variants(self):
        a = parse_module(BRANCHY).functions[0]
        b = parse_module(
            BRANCHY.replace("%a", "%p").replace("left:", "l:")
            .replace("%left", "%l")
        ).functions[0]
        assert canonical_function_text(a) == canonical_function_text(b)
