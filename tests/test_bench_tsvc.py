"""Tests for the TSVC benchmark substrate."""

import pytest

from repro.bench import tsvc
from repro.bench.objsize import function_size
from repro.ir import Machine, verify_module
from repro.rolag import RolagConfig, roll_loops_in_module
from repro.transforms import reroll_loops


#: A spread of kernels covering the major pattern categories.
SAMPLE = [
    "s000", "vpv", "vdotr", "vsumr", "s112", "s121", "s451", "s452",
    "s453", "s3113", "s276", "s1281", "s4114", "s491", "s2102", "s122",
]


class TestKernelConstruction:
    def test_all_kernels_compile(self):
        for name in tsvc.kernel_names():
            module = tsvc.build_kernel(name)
            verify_module(module)
            assert module.get_function(name) is not None

    @pytest.mark.parametrize("name", SAMPLE)
    def test_unrolled_kernels_verify(self, name):
        module = tsvc.build_unrolled_kernel(name)
        verify_module(module)

    @pytest.mark.parametrize("name", SAMPLE)
    def test_unroll_preserves_kernel_semantics(self, name):
        rolled = tsvc.build_kernel(name)
        unrolled = tsvc.build_unrolled_kernel(name)

        def run(module):
            machine = Machine(module)
            tsvc.init_machine(machine)
            result = machine.call(module.get_function(name), [])
            return result, machine.global_contents()

        r0, g0 = run(rolled)
        r1, g1 = run(unrolled)
        assert r0 == r1
        assert g0 == g1

    def test_unroll_actually_unrolls_most_kernels(self):
        from repro.ir import Store

        unrollable = 0
        for name in tsvc.kernel_names():
            rolled = tsvc.build_kernel(name)
            unrolled = tsvc.build_unrolled_kernel(name)
            before = sum(
                1 for f in rolled.functions for i in f.instructions()
            )
            after = sum(
                1 for f in unrolled.functions for i in f.instructions()
            )
            if after > before * 2:
                unrollable += 1
        # Multi-block kernels (conditionals) cannot unroll; most can.
        assert unrollable > len(tsvc.kernel_names()) * 0.6


class TestKernelTransformSafety:
    @pytest.mark.parametrize("name", SAMPLE)
    def test_rolag_preserves_semantics(self, name):
        base = tsvc.build_unrolled_kernel(name)
        transformed = tsvc.build_unrolled_kernel(name)
        roll_loops_in_module(transformed, config=RolagConfig(fast_math=True))
        verify_module(transformed)

        def run(module):
            machine = Machine(module)
            tsvc.init_machine(machine)
            result = machine.call(module.get_function(name), [])
            contents = {
                k: v
                for k, v in machine.global_contents().items()
                if not k.startswith("__rolag")
            }
            return result, contents

        r0, g0 = run(base)
        r1, g1 = run(transformed)
        assert r0 == r1, name
        assert g0 == g1, name

    @pytest.mark.parametrize("name", SAMPLE)
    def test_reroll_preserves_semantics(self, name):
        base = tsvc.build_unrolled_kernel(name)
        transformed = tsvc.build_unrolled_kernel(name)
        for fn in transformed.functions:
            if not fn.is_declaration:
                reroll_loops(fn)
        verify_module(transformed)

        def run(module):
            machine = Machine(module)
            tsvc.init_machine(machine)
            result = machine.call(module.get_function(name), [])
            return result, machine.global_contents()

        r0, g0 = run(base)
        r1, g1 = run(transformed)
        assert r0 == r1, name
        assert g0 == g1, name


class TestExperimentShapes:
    def test_small_experiment_shape(self):
        from repro.bench import run_tsvc_experiment

        exp = run_tsvc_experiment(kernels=SAMPLE, measure_dynamic=True)
        assert exp.rolag_kernels >= exp.llvm_kernels
        for r in exp.results:
            # The oracle is never worse than the unrolled baseline.
            assert r.oracle_size <= r.base_size
            # Transforms never increase the measured size above base.
            assert r.llvm_size <= r.base_size
            # Rolled loops execute at least as many instructions.
            if r.rolag_rolled:
                assert r.steps_rolag >= r.steps_base

    def test_llvm_beats_or_ties_rolag_when_both_fire(self):
        from repro.bench import run_tsvc_experiment

        exp = run_tsvc_experiment(kernels=SAMPLE)
        both = [r for r in exp.results if r.llvm_rolled and r.rolag_rolled]
        for r in both:
            assert r.llvm_size <= r.rolag_size + 2, r.name
