"""Core RoLAG tests: rolling works, preserves semantics, shrinks code."""

import pytest

from tests.helpers import (
    assert_transform_preserves,
    execute,
    floats_to_bytes,
    ints_to_bytes,
)

from repro.analysis import CodeSizeCostModel
from repro.ir import parse_module, print_module, verify_module
from repro.rolag import (
    RolagConfig,
    RolagStats,
    roll_loops_in_function,
    roll_loops_in_module,
)


def roll(module, name="f", config=None, stats=None):
    return roll_loops_in_function(
        module.get_function(name), config=config, stats=stats
    )


STORES_SEQUENTIAL = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 7, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 7, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 7, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 7, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 7, i32* %p4
  %p5 = getelementptr i32, i32* %p, i64 5
  store i32 7, i32* %p5
  ret void
}
"""


class TestBasicRolling:
    def test_store_run_rolls_and_preserves(self):
        def transform(m):
            return roll(m)

        rolled, module = assert_transform_preserves(
            STORES_SEQUENTIAL,
            transform,
            "f",
            buffer_specs=[ints_to_bytes([0] * 6)],
        )
        assert rolled == 1
        fn = module.get_function("f")
        assert len(fn.blocks) == 3  # preheader, loop, exit

    def test_code_size_shrinks(self):
        m = parse_module(STORES_SEQUENTIAL)
        cm = CodeSizeCostModel()
        before = cm.function_cost(m.get_function("f"))
        assert roll(m) == 1
        after = cm.function_cost(m.get_function("f"))
        assert after < before

    def test_monotonic_value_sequence(self):
        # Stored values 10, 20, 30, 40 -> sequence node.
        src = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 10, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 20, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 30, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 40, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 50, i32* %p4
  %p5 = getelementptr i32, i32* %p, i64 5
  store i32 60, i32* %p5
  ret void
}
"""
        stats = RolagStats()

        def transform(m):
            return roll(m, stats=stats)

        rolled, module = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([0] * 6)]
        )
        assert rolled == 1
        assert stats.node_counts["sequence"] >= 1

    def test_decreasing_sequence(self):
        src = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 50, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 40, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 30, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 20, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 10, i32* %p4
  %p5 = getelementptr i32, i32* %p, i64 5
  store i32 0, i32* %p5
  ret void
}
"""
        def transform(m):
            return roll(m)

        rolled, _ = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([0] * 6)]
        )
        assert rolled == 1

    def test_loads_computation_stores(self):
        # b[i] = a[i] * 3 + 1, fully unrolled.
        lines = ["define void @f(i32* %a, i32* %b) {", "entry:"]
        for i in range(6):
            lines += [
                f"  %pa{i} = getelementptr i32, i32* %a, i64 {i}",
                f"  %v{i} = load i32, i32* %pa{i}",
                f"  %m{i} = mul i32 %v{i}, 3",
                f"  %s{i} = add i32 %m{i}, 1",
                f"  %pb{i} = getelementptr i32, i32* %b, i64 {i}",
                f"  store i32 %s{i}, i32* %pb{i}",
            ]
        lines += ["  ret void", "}"]
        src = "\n".join(lines)

        def transform(m):
            return roll(m)

        rolled, module = assert_transform_preserves(
            src,
            transform,
            "f",
            buffer_specs=[
                ints_to_bytes([5, -3, 11, 0, 2, 8]),
                ints_to_bytes([0] * 6),
            ],
        )
        assert rolled == 1

    def test_two_lanes_only(self):
        # Two stores: legal but usually unprofitable.
        src = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 7, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 7, i32* %p1
  ret void
}
"""
        m = parse_module(src)
        stats = RolagStats()
        rolled = roll(m, stats=stats)
        verify_module(m)
        # Either rejected as unprofitable or rolled -- never corrupted.
        assert rolled in (0, 1)
        assert stats.unprofitable + stats.rolled >= 1

    def test_min_lanes_config(self):
        m = parse_module(STORES_SEQUENTIAL)
        config = RolagConfig(min_lanes=8)
        assert roll(m, config=config) == 0


class TestMismatchNodes:
    def test_constant_mismatch_array(self):
        # Stored values with no arithmetic pattern -> constant array.
        values = [13, -7, 99, 4, 4, 250, 1, 0]
        lines = ["define void @f(i32* %p) {", "entry:"]
        for i, v in enumerate(values):
            lines += [
                f"  %p{i} = getelementptr i32, i32* %p, i64 {i}",
                f"  store i32 {v}, i32* %p{i}",
            ]
        lines += ["  ret void", "}"]
        src = "\n".join(lines)

        stats = RolagStats()

        def transform(m):
            return roll(m, stats=stats)

        rolled, module = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([0] * 8)]
        )
        if rolled:
            assert stats.node_counts["mismatch"] >= 1
            assert any(g.name.startswith("__rolag.vals") for g in module.globals)

    def test_runtime_mismatch_values(self):
        # Per-lane values are unrelated arguments: stack array path.
        src = """
define void @f(i32 %a, i32 %b, i32 %c, i32 %d, i32 %e, i32 %g, i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 %a, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 %b, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 %c, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 %d, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 %e, i32* %p4
  %p5 = getelementptr i32, i32* %p, i64 5
  store i32 %g, i32* %p5
  ret void
}
"""
        m = parse_module(src)
        before = execute(
            m, "f", [1, 2, 3, 4, 5, 6], buffer_specs=[ints_to_bytes([0] * 6)]
        )
        rolled = roll(m)
        verify_module(m)
        after = execute(
            m, "f", [1, 2, 3, 4, 5, 6], buffer_specs=[ints_to_bytes([0] * 6)]
        )
        assert before.same_behaviour(after), before.explain_difference(after)
        # Mismatch handling is expensive; may or may not be profitable,
        # but must never be wrong.


class TestCallRolling:
    def test_identical_calls(self):
        src = """
declare void @hit(i32)

define void @f() {
entry:
  call void @hit(i32 0)
  call void @hit(i32 1)
  call void @hit(i32 2)
  call void @hit(i32 3)
  call void @hit(i32 4)
  ret void
}
"""
        def transform(m):
            return roll(m)

        rolled, module = assert_transform_preserves(src, transform, "f")
        assert rolled == 1

    def test_call_results_used_by_reduction_like_chain(self):
        src = """
declare i32 @get(i32) readnone

define i32 @f() {
entry:
  %a = call i32 @get(i32 0)
  %b = call i32 @get(i32 1)
  %c = call i32 @get(i32 2)
  %d = call i32 @get(i32 3)
  %s1 = add i32 %a, %b
  %s2 = add i32 %s1, %c
  %s3 = add i32 %s2, %d
  ret i32 %s3
}
"""
        def transform(m):
            return roll_loops_in_module(m)

        externs = {"get": lambda machine, args: args[0] * 11 + 1}
        rolled, module = assert_transform_preserves(
            src, transform, "f", externs=externs
        )
        assert rolled >= 1

    def test_calls_different_callees_not_merged(self):
        src = """
declare void @one(i32)

declare void @two(i32)

define void @f() {
entry:
  call void @one(i32 0)
  call void @two(i32 1)
  call void @one(i32 2)
  call void @two(i32 3)
  ret void
}
"""
        m = parse_module(src)
        stats = RolagStats()
        rolled = roll(m, stats=stats)
        verify_module(m)
        # Each callee group has only 2 lanes; the joint node may roll
        # them together -- but one() must never be replaced by two().
        before = execute(parse_module(src), "f")
        after = execute(m, "f")
        assert before.same_behaviour(after)


class TestExternalUses:
    def test_last_lane_external_use(self):
        # Chained external use of only the final value: direct reuse.
        src = """
declare i32 @step(i32) readnone

define i32 @f(i32 %seed) {
entry:
  %a = call i32 @step(i32 %seed)
  %b = call i32 @step(i32 %a)
  %c = call i32 @step(i32 %b)
  %d = call i32 @step(i32 %c)
  %e = call i32 @step(i32 %d)
  ret i32 %e
}
"""
        stats = RolagStats()

        def transform(m):
            return roll(m, stats=stats)

        externs = {"step": lambda machine, args: (args[0] * 3 + 1) % 1000}
        rolled, module = assert_transform_preserves(
            src, transform, "f", [5], externs=externs
        )
        assert rolled == 1
        assert stats.node_counts["recurrence"] >= 1
        # Direct reuse means no extraction arrays were needed.
        fn = module.get_function("f")
        from repro.ir import Alloca

        assert not any(isinstance(i, Alloca) for i in fn.instructions())

    def test_middle_lane_external_use_extracted(self):
        src = """
declare i32 @get(i32) readnone

define i32 @f(i32* %out) {
entry:
  %a = call i32 @get(i32 0)
  %b = call i32 @get(i32 1)
  %c = call i32 @get(i32 2)
  %d = call i32 @get(i32 3)
  %e = call i32 @get(i32 4)
  %keep = add i32 %b, %d
  ret i32 %keep
}
"""
        m = parse_module(src)
        externs = {"get": lambda machine, args: args[0] * 7 + 3}
        before = execute(m, "f", buffer_specs=[ints_to_bytes([0])],
                         externs=externs)
        rolled = roll(m)
        verify_module(m)
        after = execute(m, "f", buffer_specs=[ints_to_bytes([0])],
                        externs=externs)
        assert before.same_behaviour(after), before.explain_difference(after)


class TestProfitability:
    def test_unprofitable_not_rolled(self):
        # Two cheap stores; rolling adds loop control that outweighs.
        src = """
define void @f(i32* %p, i32 %x, i32 %y) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 %x, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 %y, i32* %p1
  ret void
}
"""
        m = parse_module(src)
        stats = RolagStats()
        rolled = roll(m, stats=stats)
        assert rolled == 0
        assert stats.unprofitable >= 1

    def test_cost_model_gate(self):
        # With a absurdly expensive cost table for stores the same code
        # becomes profitable to roll.
        m = parse_module(STORES_SEQUENTIAL)
        cm = CodeSizeCostModel()
        cm.table["store"] = 50
        rolled = roll_loops_in_function(m.get_function("f"), cost_model=cm)
        assert rolled == 1

    def test_estimated_savings_recorded(self):
        m = parse_module(STORES_SEQUENTIAL)
        stats = RolagStats()
        roll(m, stats=stats)
        assert stats.savings
        name, saving = stats.savings[0]
        assert name == "f"
        assert saving > 0


class TestMultipleRegionsAndModule:
    def test_two_rollable_regions_in_one_function(self):
        src = """
define void @f(i32* %p, i32* %q) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 1, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 1, i32* %p4
  %q0 = getelementptr i32, i32* %q, i64 0
  store i32 2, i32* %q0
  %q1 = getelementptr i32, i32* %q, i64 1
  store i32 2, i32* %q1
  %q2 = getelementptr i32, i32* %q, i64 2
  store i32 2, i32* %q2
  %q3 = getelementptr i32, i32* %q, i64 3
  store i32 2, i32* %q3
  %q4 = getelementptr i32, i32* %q, i64 4
  store i32 2, i32* %q4
  ret void
}
"""
        def transform(m):
            return roll(m)

        rolled, module = assert_transform_preserves(
            src,
            transform,
            "f",
            buffer_specs=[ints_to_bytes([0] * 5), ints_to_bytes([0] * 5)],
        )
        assert rolled == 2

    def test_module_driver(self):
        src = STORES_SEQUENTIAL + """
define void @g(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 9, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 9, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 9, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 9, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 9, i32* %p4
  ret void
}
"""
        m = parse_module(src)
        stats = RolagStats()
        total = roll_loops_in_module(m, stats=stats)
        verify_module(m)
        assert total == 2
        assert stats.rolled == 2

    def test_idempotent_on_rolled_output(self):
        m = parse_module(STORES_SEQUENTIAL)
        assert roll(m) == 1
        # Running again on the transformed function must not reroll the
        # generated loop (or diverge).
        assert roll(m) == 0
        verify_module(m)
