"""Tests for min/max compare+select reduction rolling (Fig. 20b ext)."""

import pytest

from tests.helpers import execute, ints_to_bytes

from repro.frontend import compile_c
from repro.ir import I32, Machine, parse_module, verify_module
from repro.rolag import RolagConfig, RolagStats, roll_loops_in_module
from repro.rolag.seeds import collect_minmax_seeds, collect_seed_groups


def straight_line_max(lanes, pred="sgt", cmp_leaf_first=True,
                      select_leaf_first=True):
    """Build IR text for an unrolled max over `lanes` loaded values."""
    lines = ["define i32 @f(i32* %p, i32 %seed) {", "entry:"]
    acc = "%seed"
    for i in range(lanes):
        lines.append(f"  %g{i} = getelementptr i32, i32* %p, i64 {i}")
        lines.append(f"  %v{i} = load i32, i32* %g{i}")
        leaf = f"%v{i}"
        a, b = (leaf, acc) if cmp_leaf_first else (acc, leaf)
        lines.append(f"  %c{i} = icmp {pred} i32 {a}, {b}")
        x, y = (leaf, acc) if select_leaf_first else (acc, leaf)
        lines.append(f"  %m{i} = select i1 %c{i}, i32 {x}, i32 {y}")
        acc = f"%m{i}"
    lines.append(f"  ret i32 {acc}")
    lines.append("}")
    return "\n".join(lines)


class TestChainDetection:
    def test_detects_canonical_chain(self):
        m = parse_module(straight_line_max(5))
        block = m.get_function("f").entry
        groups = collect_minmax_seeds(block, RolagConfig())
        assert len(groups) == 1
        group = groups[0]
        assert group.size == 5
        assert group.minmax_predicate == "sgt"
        assert group.minmax_init is m.get_function("f").arguments[1]

    @pytest.mark.parametrize("pred", ["sgt", "slt", "sge", "ule"])
    def test_all_predicates(self, pred):
        m = parse_module(straight_line_max(4, pred=pred))
        block = m.get_function("f").entry
        groups = collect_minmax_seeds(block, RolagConfig())
        assert len(groups) == 1
        assert groups[0].minmax_predicate == pred

    @pytest.mark.parametrize("cmp_first", [True, False])
    @pytest.mark.parametrize("sel_first", [True, False])
    def test_all_orientations(self, cmp_first, sel_first):
        m = parse_module(
            straight_line_max(
                4, cmp_leaf_first=cmp_first, select_leaf_first=sel_first
            )
        )
        block = m.get_function("f").entry
        groups = collect_minmax_seeds(block, RolagConfig())
        assert len(groups) == 1
        assert groups[0].minmax_cmp_leaf_first == cmp_first
        assert groups[0].minmax_select_leaf_first == sel_first

    def test_mixed_predicates_break_chain(self):
        src = """
define i32 @f(i32 %a, i32 %b, i32 %c, i32 %s) {
entry:
  %c0 = icmp sgt i32 %a, %s
  %m0 = select i1 %c0, i32 %a, i32 %s
  %c1 = icmp slt i32 %b, %m0
  %m1 = select i1 %c1, i32 %b, i32 %m0
  %c2 = icmp sgt i32 %c, %m1
  %m2 = select i1 %c2, i32 %c, i32 %m1
  ret i32 %m2
}
"""
        m = parse_module(src)
        block = m.get_function("f").entry
        groups = collect_minmax_seeds(block, RolagConfig())
        # A maximal consistent suffix may be found, but never the full
        # mixed chain.
        assert all(g.size < 3 for g in groups)

    def test_short_chain_ignored(self):
        m = parse_module(straight_line_max(2))
        block = m.get_function("f").entry
        assert collect_minmax_seeds(block, RolagConfig()) == []

    def test_disabled_by_config(self):
        m = parse_module(straight_line_max(6))
        block = m.get_function("f").entry
        config = RolagConfig(enable_minmax=False)
        groups = collect_seed_groups(block, config)
        assert all(g.kind != "minmax" for g in groups)


class TestRolling:
    @pytest.mark.parametrize("pred,reference", [
        ("sgt", max),
        ("slt", min),
        ("sge", max),
    ])
    def test_semantics(self, pred, reference):
        m = parse_module(straight_line_max(8, pred=pred))
        values = [3, -7, 22, 0, 15, 22, -100, 9]
        machine = Machine(m)
        buf = machine.alloc(32)
        for i, v in enumerate(values):
            machine.write_value(buf + 4 * i, I32, v)
        seed = 4
        expected = machine.call(m.get_function("f"), [buf, seed])
        assert expected == reference(values + [seed])

        stats = RolagStats()
        rolled = roll_loops_in_module(m, stats=stats)
        verify_module(m)
        assert rolled == 1
        assert stats.node_counts["minmax"] == 1

        machine2 = Machine(m)
        buf2 = machine2.alloc(32)
        for i, v in enumerate(values):
            machine2.write_value(buf2 + 4 * i, I32, v)
        assert machine2.call(m.get_function("f"), [buf2, seed]) == expected

    @pytest.mark.parametrize("cmp_first", [True, False])
    @pytest.mark.parametrize("sel_first", [True, False])
    def test_orientation_semantics(self, cmp_first, sel_first):
        src = straight_line_max(
            6, cmp_leaf_first=cmp_first, select_leaf_first=sel_first
        )
        m = parse_module(src)
        values = [5, 1, 9, -2, 9, 3]

        def run(module):
            machine = Machine(module)
            buf = machine.alloc(24)
            for i, v in enumerate(values):
                machine.write_value(buf + 4 * i, I32, v)
            return machine.call(module.get_function("f"), [buf, 0])

        expected = run(m)
        rolled = roll_loops_in_module(m)
        verify_module(m)
        assert rolled == 1
        assert run(m) == expected

    def test_float_max_from_c(self):
        source = """
float mx8(float *v) {
  float m = v[0];
  if (v[1] > m) m = v[1];
  if (v[2] > m) m = v[2];
  if (v[3] > m) m = v[3];
  if (v[4] > m) m = v[4];
  if (v[5] > m) m = v[5];
  if (v[6] > m) m = v[6];
  if (v[7] > m) m = v[7];
  return m;
}
"""
        module = compile_c(source)  # if-conversion produces the selects
        verify_module(module)
        from repro.ir import F32

        def run(mod):
            machine = Machine(mod)
            buf = machine.alloc(32)
            data = [1.5, -2.0, 8.25, 0.0, 8.25, 3.5, -9.0, 2.0]
            for i, v in enumerate(data):
                machine.write_value(buf + 4 * i, F32, v)
            return machine.call(mod.get_function("mx8"), [buf])

        expected = run(module)
        assert expected == 8.25
        stats = RolagStats()
        rolled = roll_loops_in_module(module, stats=stats)
        verify_module(module)
        assert rolled == 1
        assert stats.node_counts["minmax"] == 1
        assert run(module) == expected

    def test_external_init_stays_outside(self):
        # The init is an argument: must become the phi's entry value.
        m = parse_module(straight_line_max(6))
        roll_loops_in_module(m)
        verify_module(m)
        fn = m.get_function("f")
        loop_blocks = [b for b in fn.blocks if "loop" in b.name]
        assert len(loop_blocks) == 1
        phis = loop_blocks[0].phis()
        assert len(phis) == 2  # iv + accumulator
