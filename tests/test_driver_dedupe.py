"""In-batch structural dedupe and cross-run structural cache hits.

The driver partitions every batch into cache hits (served inline),
dedupe followers (structurally identical to an earlier job in the same
batch -- never dispatched, fanned out from their leader's result), and
unique misses (the only jobs that reach the pool).  These tests pin
that scheduler's observable contract: follower results land in the
follower's own namespace, resilience semantics survive dedupe (failed
leaders degrade every follower, nothing failed is ever cached, guard
reports travel with the copies), quarantine condemns a structural
identity rather than a spelling, and the stats/CLI report the three
populations separately.
"""

import json
import os

import pytest

from repro.bench import angha
from repro.cli import main
from repro.driver import FunctionJob, optimize_functions
from repro.driver.quarantine import quarantine_key
from repro.frontend import compile_c
from repro.ir import (
    parse_module,
    print_module,
    rename_function_locals,
    rename_globals,
    structural_eq,
    structural_summary,
)

ROLLABLE = """
define i32 @sum8(i32 %a, i32 %b) {
entry:
  %t0 = add i32 %a, %b
  %t1 = add i32 %t0, %a
  %t2 = add i32 %t1, %b
  %t3 = add i32 %t2, %a
  %t4 = add i32 %t3, %b
  %t5 = add i32 %t4, %a
  %t6 = add i32 %t5, %b
  %t7 = add i32 %t6, %a
  ret i32 %t7
}
"""


def _perturb(source, name):
    """An alpha-variant: every unique local and the function renamed
    into the canonical namespace (a real rename, not a re-print)."""
    summary = structural_summary(parse_module(source))
    canonical = summary.canonical_target(name)
    perturbed = rename_globals(
        rename_function_locals(
            source, {name: summary.fn_renames.get(canonical, {})}
        ),
        {name: canonical},
    )
    assert perturbed != source
    return perturbed, canonical


def _variant(suffix="other"):
    """ROLLABLE with hand-renamed locals and a different function name."""
    return (
        ROLLABLE.replace("%t", "%acc").replace("%a", "%x")
        .replace("%b", "%y").replace("@sum8", f"@{suffix}")
    )


def _ir_jobs(count, seed=2022):
    return [
        FunctionJob(
            name=cs.name,
            ir_text=print_module(compile_c(cs.source, cs.name)),
            metadata=(("family", cs.family),),
        )
        for cs in angha.generate_sources(count=count, seed=seed)
    ]


class TestInBatchDedupe:
    def test_structural_duplicates_coalesce(self, tmp_path):
        jobs = [
            FunctionJob(name="sum8", ir_text=ROLLABLE),
            FunctionJob(name="other", ir_text=_variant()),
        ]
        report = optimize_functions(
            jobs, workers=1, cache_dir=str(tmp_path / "cache")
        )
        assert report.stats.dedupe_hits == 1
        assert report.stats.executed == 1
        assert not report.results[0].dedupe_hit
        assert report.results[1].dedupe_hit
        # The leader's entry is the only write: followers are a view of
        # the same memo, not a second copy.
        assert report.stats.cache_writes == 1

    def test_follower_lands_in_its_own_namespace(self, tmp_path):
        variant = _variant()
        jobs = [
            FunctionJob(name="sum8", ir_text=ROLLABLE),
            FunctionJob(name="other", ir_text=variant),
        ]
        report = optimize_functions(
            jobs, workers=1, cache_dir=str(tmp_path / "cache")
        )
        follower = report.results[1]
        assert follower.name == "other"
        assert "@other" in follower.optimized_ir
        assert "@sum8" not in follower.optimized_ir
        # Byte-for-byte what a solo run of the variant would produce.
        solo = optimize_functions(
            [jobs[1]], workers=1, cache_dir=str(tmp_path / "solo")
        ).results[0]
        assert follower.optimized_ir == solo.optimized_ir
        assert follower.rolag_size == solo.rolag_size
        assert follower.savings == solo.savings

    def test_without_cache_only_exact_text_coalesces(self):
        # No cache directory means no structural hashing (the no-cache
        # path stays hash-free); dedupe degrades to exact-text matches.
        twins = [
            FunctionJob(name="sum8", ir_text=ROLLABLE),
            FunctionJob(name="sum8", ir_text=ROLLABLE),
            FunctionJob(name="other", ir_text=_variant()),
        ]
        report = optimize_functions(twins, workers=1)
        assert report.stats.dedupe_hits == 1
        assert report.results[1].dedupe_hit
        assert not report.results[2].dedupe_hit

    def test_dedupe_can_be_disabled(self, tmp_path):
        jobs = [
            FunctionJob(name="sum8", ir_text=ROLLABLE),
            FunctionJob(name="other", ir_text=_variant()),
        ]
        report = optimize_functions(
            jobs, workers=1, cache_dir=str(tmp_path / "cache"), dedupe=False
        )
        assert report.stats.dedupe_hits == 0
        assert report.stats.executed == 2
        # Both computed results land on the same structural key (last
        # write wins; either spelling rewrites cleanly on a later hit).
        assert report.stats.cache_writes == 2

    def test_fan_out_through_the_pool_path(self, tmp_path):
        variants = [FunctionJob(name="sum8", ir_text=ROLLABLE)] + [
            FunctionJob(name=f"v{i}", ir_text=_variant(f"v{i}"))
            for i in range(4)
        ]
        report = optimize_functions(
            variants, workers=2, cache_dir=str(tmp_path / "cache")
        )
        assert report.stats.dedupe_hits == 4
        assert report.stats.executed == 1
        assert len({r.rolag_size for r in report.results}) == 1
        for job, result in zip(variants, report.results):
            assert f"@{job.name}" in result.optimized_ir
            parse_module(result.optimized_ir)


class TestCrossRunStructuralHits:
    def test_rename_perturbed_rerun_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        jobs = _ir_jobs(4)
        cold = optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        assert cold.stats.cache_misses == len(jobs)

        perturbed_jobs = []
        for job in jobs:
            text, canonical = _perturb(job.ir_text, job.name)
            perturbed_jobs.append(
                FunctionJob(name=canonical, ir_text=text)
            )
        warm = optimize_functions(
            perturbed_jobs, workers=1, cache_dir=cache_dir
        )
        assert warm.stats.cache_hits == len(jobs)
        assert warm.stats.cache_misses == 0
        for job, result in zip(perturbed_jobs, warm.results):
            assert result.cache_hit
            assert result.name == job.name
            optimized = parse_module(result.optimized_ir)
            assert optimized.get_function(job.name) is not None

    def test_perturbed_hits_match_a_fresh_run(self, tmp_path):
        jobs = _ir_jobs(3)
        cache_dir = str(tmp_path / "cache")
        optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        perturbed = [
            FunctionJob(name=canonical, ir_text=text)
            for text, canonical in (
                _perturb(job.ir_text, job.name) for job in jobs
            )
        ]
        warm = optimize_functions(perturbed, workers=1, cache_dir=cache_dir)
        fresh = optimize_functions(perturbed, workers=1)
        assert warm.stats.cache_hits == len(jobs)
        for hit, computed in zip(warm.results, fresh.results):
            # The witness rewrites *input* names; RoLAG-introduced
            # temporaries keep the leader's spelling, so equality with
            # a fresh run holds structurally, not byte-for-byte.
            assert structural_eq(
                parse_module(hit.optimized_ir),
                parse_module(computed.optimized_ir),
            )
            assert hit.rolag_size == computed.rolag_size
            assert hit.llvm_size == computed.llvm_size
            assert hit.savings == computed.savings

    def test_byte_identical_rerun_is_still_byte_identical(self, tmp_path):
        jobs = _ir_jobs(3)
        cache_dir = str(tmp_path / "cache")
        cold = optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        warm = optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        for before, after in zip(cold.results, warm.results):
            assert before.stable_dict() == after.stable_dict()


@pytest.mark.fault
class TestFailureSemantics:
    def _pair(self):
        return [
            FunctionJob(name="sum8", ir_text=ROLLABLE),
            FunctionJob(name="other", ir_text=_variant()),
        ]

    def test_crashing_leader_degrades_every_follower(self, tmp_path):
        report = optimize_functions(
            self._pair(), workers=1, cache_dir=str(tmp_path / "cache"),
            fault_plan="driver.worker.start:raise@1x*", retries=0,
        )
        assert report.stats.dedupe_hits == 1
        assert report.stats.crashed == 2
        leader, follower = report.results
        assert leader.failed and leader.error_kind == "crash"
        assert follower.failed and follower.error_kind == "crash"
        assert follower.dedupe_hit
        # Graceful degradation hands each job back its *own* text.
        assert follower.optimized_ir == self._pair()[1].ir_text
        # A failed result must never be memoized.
        assert report.stats.cache_writes == 0

    def test_quarantine_condemns_the_structural_identity(self, tmp_path):
        jobs = self._pair()
        assert quarantine_key(jobs[0]) == quarantine_key(jobs[1])
        cache_dir = str(tmp_path / "cache")
        qfile = str(tmp_path / "quarantine.json")
        for _ in range(2):  # two failed attempts cross the threshold
            report = optimize_functions(
                jobs, workers=1, cache_dir=cache_dir,
                quarantine_file=qfile,
                fault_plan="driver.worker.start:raise@1x*", retries=0,
            )
            assert report.stats.crashed == 2
        entries = json.load(open(qfile))["entries"]
        assert list(entries) == [quarantine_key(jobs[0])]
        # The third run skips *both* spellings without dispatching.
        third = optimize_functions(
            jobs, workers=1, cache_dir=cache_dir, quarantine_file=qfile,
        )
        assert third.stats.quarantined == 2
        assert all(r.error_kind == "quarantined" for r in third.results)

    def test_guard_reports_travel_with_followers(self, tmp_path):
        jobs = _ir_jobs(3)
        followers = [
            FunctionJob(name=canonical, ir_text=text)
            for text, canonical in (
                _perturb(job.ir_text, job.name) for job in jobs
            )
        ]
        from repro.rolag import RolagConfig

        config = RolagConfig(
            validate="safe", guard_dir=str(tmp_path / "guards")
        )
        report = optimize_functions(
            jobs + followers, config, workers=1,
            cache_dir=str(tmp_path / "cache"), retries=0,
            fault_plan=(
                "pipeline.pass.exit:corrupt-irx*;"
                "rolag.roll.exit:corrupt-irx*;seed=13"
            ),
        )
        assert report.stats.dedupe_hits == len(followers)
        assert report.stats.guard_failures > 0
        leaders, fanned = (
            report.results[: len(jobs)], report.results[len(jobs):]
        )
        for leader, follower in zip(leaders, fanned):
            assert follower.guard_reports == leader.guard_reports
        # The aggregate counts every attribution, copies included.
        assert report.stats.guard_failures == sum(
            len(r.guard_reports) for r in report.results
        )


class TestStatsAndCli:
    def test_three_populations_are_reported_separately(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        jobs = [
            FunctionJob(name="sum8", ir_text=ROLLABLE),
            FunctionJob(name="other", ir_text=_variant()),
            FunctionJob(name="third", ir_text=_variant("third")),
        ]
        cold = optimize_functions(jobs[:1], workers=1, cache_dir=cache_dir)
        assert (cold.stats.cache_hits, cold.stats.dedupe_hits) == (0, 0)
        mixed = optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        # sum8 hits the cache; "other" and "third" both hit too (the
        # structural key ignores their names) -- force a dedupe by
        # clearing the cache instead.
        assert mixed.stats.cache_hits == 3
        fresh = optimize_functions(
            jobs, workers=1, cache_dir=str(tmp_path / "fresh")
        )
        assert fresh.stats.cache_hits == 0
        assert fresh.stats.dedupe_hits == 2
        assert fresh.stats.executed == 1

    def test_unbuildable_jobs_fall_back_to_text_keys(self, tmp_path):
        bad = FunctionJob(name="nope", ir_text="define @broken {")
        worse = FunctionJob(name="nope2", ir_text="define @broken2 {")
        report = optimize_functions(
            [bad, worse], workers=1, cache_dir=str(tmp_path / "cache"),
            retries=0,
        )
        assert report.stats.hash_fallbacks == 2
        assert report.stats.dedupe_hits == 0  # different texts, no match

    def _write_pair(self, tmp_path):
        first = tmp_path / "a.ll"
        second = tmp_path / "b.ll"
        first.write_text(ROLLABLE)
        second.write_text(_variant())
        return str(first), str(second)

    def test_cli_reports_dedupe(self, tmp_path, capsys):
        first, second = self._write_pair(tmp_path)
        code = main(
            [first, second, "--roll", "--jobs", "1",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dedup" in out
        assert "dedupe hits: 1" in out

    def test_cli_no_dedupe_flag(self, tmp_path, capsys):
        first, second = self._write_pair(tmp_path)
        code = main(
            [first, second, "--roll", "--jobs", "1", "--no-dedupe",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dedupe hits: 0" in out
        assert "dedup\n" not in out
