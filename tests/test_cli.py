"""Tests for the command-line driver."""

import os

import pytest

from repro.cli import build_arg_parser, load_module, main


C_SOURCE = """
int table[8];
void fill(void) {
  table[0] = 5; table[1] = 10; table[2] = 15; table[3] = 20;
  table[4] = 25; table[5] = 30; table[6] = 35; table[7] = 40;
}
int add2(int a, int b) { return a + b; }
"""

LL_SOURCE = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 1, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 1, i32* %p4
  ret void
}
"""

LOOP_SOURCE = """
int a[24];
void init(void) {
  for (int i = 0; i < 24; i++) a[i] = i * 3;
}
"""


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(C_SOURCE)
    return str(path)


@pytest.fixture
def ll_file(tmp_path):
    path = tmp_path / "prog.ll"
    path.write_text(LL_SOURCE)
    return str(path)


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.c"
    path.write_text(LOOP_SOURCE)
    return str(path)


class TestLoading:
    def test_load_c(self, c_file):
        module = load_module(c_file, optimize=True)
        assert module.get_function("fill") is not None

    def test_load_ll(self, ll_file):
        module = load_module(ll_file, optimize=True)
        assert module.get_function("f") is not None

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/x.c", "--size"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unparsable_ll_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.ll"
        path.write_text("define i32 @f( this is not IR")
        assert main([str(path), "--size"]) == 1
        err = capsys.readouterr().err
        assert "error" in err
        assert "Traceback" not in err

    def test_unverifiable_ll_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.ll"
        path.write_text(
            "define void @f() {\nentry:\n  %x = add i32 1, 2\n}\n"
        )
        assert main([str(path), "--size"]) == 1
        err = capsys.readouterr().err
        assert "terminator" in err
        assert "Traceback" not in err


class TestActions:
    def test_roll_and_size(self, c_file, capsys):
        assert main([c_file, "--roll", "--size"]) == 0
        out = capsys.readouterr().out
        assert "RoLAG rolled 1 loop(s)" in out
        assert "fill" in out
        assert "text:" in out

    def test_roll_stats(self, c_file, capsys):
        assert main([c_file, "--roll", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "node" in out

    def test_roll_ll_input(self, ll_file, capsys):
        assert main([ll_file, "--roll", "--emit-ir"]) == 0
        out = capsys.readouterr().out
        assert "rolag.loop" in out

    def test_unroll_then_reroll(self, loop_file, capsys):
        assert main([loop_file, "--unroll", "8", "--reroll", "--size"]) == 0
        out = capsys.readouterr().out
        assert "unrolled 1 loop(s)" in out
        assert "rerolled 1 loop(s)" in out

    def test_unroll_then_roll_loop_aware(self, loop_file, capsys):
        assert main(
            [loop_file, "--unroll", "8", "--roll", "--loop-aware", "--size"]
        ) == 0
        out = capsys.readouterr().out
        assert "RoLAG rolled 1 loop(s)" in out

    def test_run_function(self, c_file, capsys):
        assert main([c_file, "--run", "add2", "40", "2"]) == 0
        out = capsys.readouterr().out
        assert "returned 42" in out
        assert "instructions executed" in out

    def test_run_after_roll_same_result(self, c_file, capsys):
        main([c_file, "--run", "add2", "1", "2"])
        plain = capsys.readouterr().out
        main([c_file, "--roll", "--run", "add2", "1", "2"])
        rolled = capsys.readouterr().out
        assert "returned 3" in plain
        assert "returned 3" in rolled

    def test_run_unknown_function(self, c_file, capsys):
        assert main([c_file, "--run", "nope"]) == 1

    def test_no_special_nodes_flag(self, c_file, capsys):
        assert main([c_file, "--roll", "--no-special-nodes"]) == 0

    def test_emit_ir_parses_back(self, c_file, capsys):
        assert main([c_file, "--roll", "--emit-ir"]) == 0
        out = capsys.readouterr().out
        ir_text = out[out.index("@table") :]
        from repro.ir import parse_module, verify_module

        verify_module(parse_module(ir_text))


class TestArgParser:
    def test_help_mentions_all_actions(self):
        parser = build_arg_parser()
        text = parser.format_help()
        for flag in ("--roll", "--reroll", "--unroll", "--size", "--run",
                     "--loop-aware", "--emit-ir", "--validate",
                     "--guard-dir"):
            assert flag in text

    def test_validate_flag_parses(self):
        parser = build_arg_parser()
        args = parser.parse_args(
            ["x.c", "--validate", "safe", "--guard-dir", "guards"]
        )
        assert args.validate == "safe"
        assert args.guard_dir == "guards"
        assert parser.parse_args(["x.c"]).validate == "off"

    def test_unknown_validate_level_rejected(self, capsys):
        parser = build_arg_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["x.c", "--validate", "paranoid"])


class TestValidatedSingleModule:
    @pytest.mark.guard
    def test_roll_under_validation_succeeds(self, c_file, capsys):
        assert main([c_file, "--roll", "--validate", "safe", "--size"]) == 0
        out = capsys.readouterr().out
        assert "RoLAG rolled 1 loop(s)" in out
