"""Unit tests for the IR type system and data layout."""

import pytest

from repro.ir import (
    ArrayType,
    DEFAULT_LAYOUT,
    F32,
    F64,
    FloatType,
    FunctionType,
    I1,
    I16,
    I32,
    I64,
    I8,
    IntType,
    PointerType,
    StructType,
    VOID,
    ptr,
    types_equivalent,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is IntType(32)
        assert IntType(32) is I32
        assert IntType(8) is not IntType(16)

    def test_float_types_are_interned(self):
        assert FloatType(32) is F32
        assert FloatType(64) is F64

    def test_pointer_types_are_interned(self):
        assert PointerType(I32) is PointerType(I32)
        assert ptr(I32) is PointerType(I32)
        assert PointerType(I32) is not PointerType(I64)

    def test_array_types_are_interned(self):
        assert ArrayType(I32, 4) is ArrayType(I32, 4)
        assert ArrayType(I32, 4) is not ArrayType(I32, 5)

    def test_function_types_are_interned(self):
        a = FunctionType(I32, [I32, I64])
        b = FunctionType(I32, [I32, I64])
        assert a is b
        assert FunctionType(I32, [I32]) is not a

    def test_named_struct_identity(self):
        s1 = StructType([I32, I32], "interned_pair")
        s2 = StructType([I32, I32], "interned_pair")
        assert s1 is s2

    def test_named_struct_redefinition_rejected(self):
        StructType([I32], "interned_one")
        with pytest.raises(ValueError):
            StructType([I64, I64], "interned_one")

    def test_forward_declared_struct_gets_body(self):
        fwd = StructType([], "interned_fwd")
        real = StructType([I32, I64], "interned_fwd")
        assert fwd is real
        assert fwd.fields == (I32, I64)

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            FloatType(16)


class TestTypePredicates:
    def test_first_class(self):
        assert I32.is_first_class
        assert ptr(I32).is_first_class
        assert not VOID.is_first_class
        assert not FunctionType(VOID, []).is_first_class

    def test_int_bounds(self):
        assert I8.signed_min == -128
        assert I8.signed_max == 127
        assert I8.mask == 0xFF
        assert I1.mask == 1


class TestDataLayout:
    def test_scalar_sizes(self):
        assert DEFAULT_LAYOUT.size_of(I8) == 1
        assert DEFAULT_LAYOUT.size_of(I16) == 2
        assert DEFAULT_LAYOUT.size_of(I32) == 4
        assert DEFAULT_LAYOUT.size_of(I64) == 8
        assert DEFAULT_LAYOUT.size_of(F32) == 4
        assert DEFAULT_LAYOUT.size_of(F64) == 8
        assert DEFAULT_LAYOUT.size_of(ptr(I8)) == 8

    def test_array_size(self):
        assert DEFAULT_LAYOUT.size_of(ArrayType(I32, 10)) == 40
        assert DEFAULT_LAYOUT.size_of(ArrayType(ArrayType(I8, 3), 2)) == 6

    def test_struct_padding(self):
        s = StructType([I8, I32])
        # i8 at 0, padding to 4, i32 at 4 -> size 8, align 4.
        assert DEFAULT_LAYOUT.size_of(s) == 8
        assert DEFAULT_LAYOUT.field_offset(s, 0) == 0
        assert DEFAULT_LAYOUT.field_offset(s, 1) == 4

    def test_struct_tail_padding(self):
        s = StructType([I64, I8])
        assert DEFAULT_LAYOUT.size_of(s) == 16

    def test_packed_fields_no_padding(self):
        s = StructType([I32, I32, I32])
        assert DEFAULT_LAYOUT.size_of(s) == 12
        assert DEFAULT_LAYOUT.field_offset(s, 2) == 8

    def test_alignment(self):
        assert DEFAULT_LAYOUT.align_of(I64) == 8
        assert DEFAULT_LAYOUT.align_of(ArrayType(I16, 7)) == 2
        assert DEFAULT_LAYOUT.align_of(StructType([I8, I64])) == 8


class TestTypeEquivalence:
    def test_identical(self):
        assert types_equivalent(I32, I32)

    def test_same_size_scalars(self):
        assert types_equivalent(I32, F32)
        assert types_equivalent(I64, F64)
        assert not types_equivalent(I32, I64)
        assert not types_equivalent(I32, F64)

    def test_pointers_equivalent(self):
        assert types_equivalent(ptr(I32), ptr(F64))
        assert types_equivalent(ptr(I8), ptr(StructType([I32])))

    def test_aggregates_not_equivalent(self):
        assert not types_equivalent(ArrayType(I8, 4), I32)
        assert not types_equivalent(StructType([I32]), I32)
