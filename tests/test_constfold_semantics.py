"""Constfold's evaluator must agree with the interpreter, bit for bit.

The two integer evaluators used to be separate implementations; a
divergence (constfold computing in unbounded Python ints, the
interpreter wrapping to the result width) is a silent miscompile
factory.  Constfold now delegates to
:func:`repro.ir.interp.eval_int_binop`, and this table pins the
agreement -- including the edge operands where wrapping, division
semantics, and shift-amount handling show: INT_MIN, -1, 0, bits-1,
bits, and 2*bits.
"""

import pytest

from repro.ir import BINARY_OPCODES, I8, I16, I32, I64, TrapError, parse_module
from repro.ir.compile_eval import EVALUATOR_CHOICES
from repro.ir.interp import (
    INT_MIN_DIV_WRAPS,
    SHIFT_AMOUNT_MODULO_BITS,
    eval_int_binop,
    run_function,
)
from repro.transforms.constfold import fold_int_binop

INT_OPCODES = sorted(
    op for op in BINARY_OPCODES if not op.startswith("f")
)

WIDTHS = (I8, I16, I32, I64)


def edge_operands(ty):
    bits = ty.bits
    return (
        ty.signed_min,
        -1,
        0,
        1,
        2,
        bits - 1,
        bits,
        2 * bits,
        ty.signed_max,
    )


@pytest.mark.parametrize("opcode", INT_OPCODES)
@pytest.mark.parametrize("ty", WIDTHS, ids=lambda t: str(t))
def test_fold_matches_interpreter(opcode, ty):
    for a in edge_operands(ty):
        for b in edge_operands(ty):
            try:
                expected = eval_int_binop(opcode, ty.bits, a, b)
            except TrapError:
                # A trapping operation must never be folded away.
                assert fold_int_binop(opcode, ty, a, b) is None
                continue
            folded = fold_int_binop(opcode, ty, a, b)
            assert folded == expected, (
                f"{opcode} {ty} {a}, {b}: fold={folded} interp={expected}"
            )
            # Every folded result must be representable in the type.
            assert ty.signed_min <= folded <= ty.signed_max


@pytest.mark.parametrize("evaluator", EVALUATOR_CHOICES)
@pytest.mark.parametrize("opcode", INT_OPCODES)
@pytest.mark.parametrize("ty", WIDTHS, ids=lambda t: str(t))
def test_evaluators_match_binop_table(opcode, ty, evaluator):
    """Executing ``%r = <op> %a, %b`` agrees with the table, per backend.

    The table pins fold-vs-interp above; this pins what the machines
    actually *execute* -- including the compiled backend's pre-bound
    binop closures -- to the very same edge operands.
    """
    module = parse_module(
        f"""
define {ty} @f({ty} %a, {ty} %b) {{
entry:
  %r = {opcode} {ty} %a, %b
  ret {ty} %r
}}
"""
    )
    for a in edge_operands(ty):
        for b in edge_operands(ty):
            try:
                expected = eval_int_binop(opcode, ty.bits, a, b)
            except TrapError:
                with pytest.raises(TrapError):
                    run_function(module, "f", (a, b), evaluator=evaluator)
                continue
            result, _ = run_function(module, "f", (a, b), evaluator=evaluator)
            assert result == expected, (
                f"{evaluator}: {opcode} {ty} {a}, {b}: "
                f"got={result} table={expected}"
            )


def test_add_wraps_to_width():
    assert eval_int_binop("add", 8, 127, 1) == -128
    assert eval_int_binop("mul", 8, 16, 16) == 0
    assert fold_int_binop("add", I8, 127, 1) == -128


def test_int_min_div_minus_one_wraps():
    # The documented contract: INT_MIN / -1 wraps instead of trapping,
    # in *both* evaluators.
    assert INT_MIN_DIV_WRAPS
    for ty in WIDTHS:
        assert eval_int_binop("sdiv", ty.bits, ty.signed_min, -1) == ty.signed_min
        assert fold_int_binop("sdiv", ty, ty.signed_min, -1) == ty.signed_min
        assert eval_int_binop("srem", ty.bits, ty.signed_min, -1) == 0
        assert fold_int_binop("srem", ty, ty.signed_min, -1) == 0


def test_division_by_zero_traps_and_never_folds():
    for opcode in ("sdiv", "udiv", "srem", "urem"):
        with pytest.raises(TrapError):
            eval_int_binop(opcode, 32, 7, 0)
        assert fold_int_binop(opcode, I32, 7, 0) is None


def test_sdiv_truncates_toward_zero():
    assert eval_int_binop("sdiv", 32, -7, 2) == -3
    assert eval_int_binop("sdiv", 32, 7, -2) == -3
    assert eval_int_binop("srem", 32, -7, 2) == -1
    assert eval_int_binop("srem", 32, 7, -2) == 1


def test_shift_amounts_reduce_modulo_width():
    assert SHIFT_AMOUNT_MODULO_BITS
    # shl by the width is shl by zero, not zero (or UB).
    assert eval_int_binop("shl", 32, 5, 32) == 5
    assert eval_int_binop("shl", 32, 5, 33) == 10
    assert eval_int_binop("lshr", 8, -1, 8) == -1
    assert eval_int_binop("ashr", 16, -4, 17) == -2
    assert fold_int_binop("shl", I32, 5, 32) == 5
    assert fold_int_binop("shl", I16, 1, 100) == 16  # 100 % 16 == 4
