"""Tests for the if-conversion pass."""

import pytest

from tests.helpers import assert_transform_preserves, execute, ints_to_bytes

from repro.ir import Select, parse_module, verify_module
from repro.transforms import convert_ifs


class TestTriangle:
    def test_empty_then_side(self):
        src = """
define i32 @f(i32 %x, i32 %y) {
entry:
  %c = icmp sgt i32 %x, %y
  br i1 %c, label %take, label %merge

take:
  br label %merge

merge:
  %r = phi i32 [ %x, %take ], [ %y, %entry ]
  ret i32 %r
}
"""
        def transform(m):
            return convert_ifs(m.get_function("f"))

        count, module = assert_transform_preserves(src, transform, "f", [3, 9])
        assert_transform_preserves(src, transform, "f", [9, 3])
        assert count == 1
        fn = module.get_function("f")
        assert len(fn.blocks) == 2  # side block gone; simplifycfg merges the rest
        assert any(isinstance(i, Select) for i in fn.entry.instructions)
        from repro.transforms import fold_constants, simplify_cfg

        simplify_cfg(fn)
        fold_constants(fn)
        assert len(fn.blocks) == 1

    def test_side_with_speculatable_code(self):
        src = """
define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %side, label %merge

side:
  %a = mul i32 %x, 3
  %b = add i32 %a, 1
  br label %merge

merge:
  %r = phi i32 [ %b, %side ], [ %x, %entry ]
  ret i32 %r
}
"""
        def transform(m):
            return convert_ifs(m.get_function("f"))

        count, module = assert_transform_preserves(src, transform, "f", [5, 1])
        assert_transform_preserves(src, transform, "f", [5, 0])
        assert count == 1

    def test_false_side_triangle(self):
        src = """
define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %merge, label %side

side:
  %a = sub i32 0, %x
  br label %merge

merge:
  %r = phi i32 [ %x, %entry ], [ %a, %side ]
  ret i32 %r
}
"""
        def transform(m):
            return convert_ifs(m.get_function("f"))

        count, _ = assert_transform_preserves(src, transform, "f", [7, 1])
        assert_transform_preserves(src, transform, "f", [7, 0])
        assert count == 1

    def test_store_blocks_conversion(self):
        src = """
define void @f(i32* %p, i1 %c) {
entry:
  br i1 %c, label %side, label %merge

side:
  store i32 1, i32* %p
  br label %merge

merge:
  ret void
}
"""
        m = parse_module(src)
        assert convert_ifs(m.get_function("f")) == 0

    def test_load_blocks_conversion(self):
        src = """
define i32 @f(i32* %p, i1 %c) {
entry:
  br i1 %c, label %side, label %merge

side:
  %v = load i32, i32* %p
  br label %merge

merge:
  %r = phi i32 [ %v, %side ], [ 0, %entry ]
  ret i32 %r
}
"""
        m = parse_module(src)
        assert convert_ifs(m.get_function("f")) == 0

    def test_division_blocks_conversion(self):
        src = """
define i32 @f(i32 %x, i32 %y, i1 %c) {
entry:
  br i1 %c, label %side, label %merge

side:
  %q = sdiv i32 %x, %y
  br label %merge

merge:
  %r = phi i32 [ %q, %side ], [ 0, %entry ]
  ret i32 %r
}
"""
        m = parse_module(src)
        assert convert_ifs(m.get_function("f")) == 0

    def test_budget_blocks_conversion(self):
        lines = [
            "define i32 @f(i32 %x, i1 %c) {",
            "entry:",
            "  br i1 %c, label %side, label %merge",
            "",
            "side:",
        ]
        prev = "%x"
        for i in range(10):  # over SPECULATION_BUDGET
            lines.append(f"  %a{i} = add i32 {prev}, {i}")
            prev = f"%a{i}"
        lines += [
            "  br label %merge",
            "",
            "merge:",
            f"  %r = phi i32 [ {prev}, %side ], [ %x, %entry ]",
            "  ret i32 %r",
            "}",
        ]
        m = parse_module("\n".join(lines))
        assert convert_ifs(m.get_function("f")) == 0


class TestDiamond:
    def test_both_sides_speculated(self):
        src = """
define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %t, label %f

t:
  %a = add i32 %x, 10
  br label %merge

f:
  %b = mul i32 %x, 2
  br label %merge

merge:
  %r = phi i32 [ %a, %t ], [ %b, %f ]
  ret i32 %r
}
"""
        def transform(m):
            return convert_ifs(m.get_function("f"))

        count, module = assert_transform_preserves(src, transform, "f", [5, 1])
        assert_transform_preserves(src, transform, "f", [5, 0])
        assert count == 1
        assert len(module.get_function("f").blocks) == 2

    def test_multiple_phis(self):
        src = """
define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %t, label %f

t:
  %a1 = add i32 %x, 1
  %a2 = add i32 %x, 2
  br label %merge

f:
  %b1 = sub i32 %x, 1
  %b2 = sub i32 %x, 2
  br label %merge

merge:
  %p = phi i32 [ %a1, %t ], [ %b1, %f ]
  %q = phi i32 [ %a2, %t ], [ %b2, %f ]
  %r = mul i32 %p, %q
  ret i32 %r
}
"""
        def transform(m):
            return convert_ifs(m.get_function("f"))

        count, _ = assert_transform_preserves(src, transform, "f", [9, 1])
        assert_transform_preserves(src, transform, "f", [9, 0])
        assert count == 1

    def test_shared_merge_with_other_preds(self):
        # A merge block with an extra predecessor: the triangle/diamond
        # must still handle (or refuse) it without corrupting phis.
        src = """
define i32 @f(i32 %x, i1 %c, i1 %d) {
entry:
  br i1 %d, label %early, label %branch

early:
  br label %merge

branch:
  br i1 %c, label %side, label %merge

side:
  %a = add i32 %x, 5
  br label %merge

merge:
  %r = phi i32 [ 0, %early ], [ %x, %branch ], [ %a, %side ]
  ret i32 %r
}
"""
        def transform(m):
            return convert_ifs(m.get_function("f"))

        for args in ([1, 1, 0], [1, 0, 0], [1, 0, 1], [1, 1, 1]):
            assert_transform_preserves(src, transform, "f", args)


class TestNestedAndChained:
    def test_chain_of_triangles_fixpoint(self):
        src = """
define i32 @f(i32 %x, i1 %c1, i1 %c2) {
entry:
  br i1 %c1, label %s1, label %m1

s1:
  %a = add i32 %x, 1
  br label %m1

m1:
  %p = phi i32 [ %a, %s1 ], [ %x, %entry ]
  br i1 %c2, label %s2, label %m2

s2:
  %b = mul i32 %p, 2
  br label %m2

m2:
  %q = phi i32 [ %b, %s2 ], [ %p, %m1 ]
  ret i32 %q
}
"""
        def transform(m):
            return convert_ifs(m.get_function("f"))

        for args in ([4, 0, 0], [4, 0, 1], [4, 1, 0], [4, 1, 1]):
            count, _ = assert_transform_preserves(src, transform, "f", args)
            assert count == 2
