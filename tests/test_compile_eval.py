"""Parity of the compiled evaluator with the reference interpreter.

``repro.ir.compile_eval`` lowers verified IR to Python closures for
speed; correctness is defined entirely by agreement with
``repro.ir.interp``.  These tests pin that agreement at machine level
-- results, step counts, block counts, memory, extern traces, trap
messages, hooks -- on handwritten programs covering each lowering
path, then sweep fuzzed modules through full ``Observation`` equality
(a 200-case campaign under ``-m slow``).
"""

import struct

import pytest

from repro.ir import (
    Machine,
    StepLimitExceeded,
    TrapError,
    parse_module,
    run_function,
)
from repro.ir.compile_eval import (
    EVALUATOR_CHOICES,
    CompiledMachine,
    CompiledProgram,
    make_machine,
)
from repro.difftest.parity import check_backend_parity


def machines_for(source):
    module = parse_module(source)
    return module, Machine(module), CompiledMachine(module)


def run_both(source, name, args=(), externs=None, step_limit=5_000_000):
    """Run ``@name`` under both backends and pin shared observables."""
    module = parse_module(source)
    results = {}
    machines = {}
    for evaluator in EVALUATOR_CHOICES:
        results[evaluator], machines[evaluator] = run_function(
            module, name, args, externs=externs,
            step_limit=step_limit, evaluator=evaluator,
        )
    interp, compiled = machines["interp"], machines["compiled"]
    assert results["interp"] == results["compiled"]
    assert interp.steps == compiled.steps
    assert interp.block_counts == compiled.block_counts
    assert interp.global_contents() == compiled.global_contents()
    assert interp.extern_trace == compiled.extern_trace
    return results["interp"], interp, compiled


def trap_both(source, name, args=(), exc=TrapError):
    """Both backends must raise ``exc`` with the identical message."""
    module = parse_module(source)
    messages = []
    for evaluator in EVALUATOR_CHOICES:
        with pytest.raises(exc) as info:
            run_function(module, name, args, evaluator=evaluator)
        messages.append(str(info.value))
    assert messages[0] == messages[1]
    return messages[0]


class TestControlFlowParity:
    def test_phi_loop(self):
        src = """
define i32 @tri(i32 %n) {
entry:
  br label %loop

loop:
  %i = phi i32 [ 1, %entry ], [ %in, %loop ]
  %acc = phi i32 [ 0, %entry ], [ %an, %loop ]
  %an = add i32 %acc, %i
  %in = add i32 %i, 1
  %c = icmp sle i32 %in, %n
  br i1 %c, label %loop, label %out

out:
  ret i32 %an
}
"""
        result, _, _ = run_both(src, "tri", [10])
        assert result == 55

    def test_phi_swap_is_atomic(self):
        # The compiled backend pre-resolves phi moves per CFG edge;
        # the parallel-copy read-then-write order must survive that.
        src = """
define i32 @f(i32 %n) {
entry:
  br label %loop

loop:
  %a = phi i32 [ 0, %entry ], [ %b, %loop ]
  %b = phi i32 [ 1, %entry ], [ %a, %loop ]
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %in = add i32 %i, 1
  %c = icmp slt i32 %in, %n
  br i1 %c, label %loop, label %out

out:
  ret i32 %a
}
"""
        for n in (1, 2, 3, 8):
            result, _, _ = run_both(src, "f", [n])
            assert result == (n - 1) % 2

    def test_recursion(self):
        src = """
define i32 @fact(i32 %n) {
entry:
  %base = icmp sle i32 %n, 1
  br i1 %base, label %ret1, label %rec

ret1:
  ret i32 1

rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fact(i32 %n1)
  %m = mul i32 %n, %r
  ret i32 %m
}
"""
        result, _, _ = run_both(src, "fact", [6])
        assert result == 720

    def test_select(self):
        src = """
define i32 @f(i1 %c, i32 %a, i32 %b) {
entry:
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}
"""
        assert run_both(src, "f", [1, 10, 20])[0] == 10
        assert run_both(src, "f", [0, 10, 20])[0] == 20


class TestMemoryParity:
    def test_globals_and_struct_gep(self):
        src = """
%struct.mixed = type { i8, i32, i64 }

@M = global %struct.mixed zeroinitializer
@A = global [3 x i32] [i32 10, i32 20, i32 30]

define i32 @f(i64 %idx) {
entry:
  %p1 = getelementptr %struct.mixed, %struct.mixed* @M, i64 0, i64 1
  store i32 77, i32* %p1
  %pa = getelementptr [3 x i32], [3 x i32]* @A, i64 0, i64 %idx
  %v = load i32, i32* %pa
  %w = load i32, i32* %p1
  %r = add i32 %v, %w
  ret i32 %r
}
"""
        result, interp, compiled = run_both(src, "f", [2])
        assert result == 107
        raw = compiled.global_contents()["M"]
        assert struct.unpack_from("<i", raw, 4)[0] == 77

    def test_alloca_roundtrip(self):
        src = """
define double @f(double %x) {
entry:
  %p = alloca double
  store double %x, double* %p
  %v = load double, double* %p
  ret double %v
}
"""
        assert run_both(src, "f", [2.5])[0] == 2.5

    def test_oob_trap_message(self):
        src = """
define i32 @f(i32* %p) {
entry:
  %v = load i32, i32* %p
  ret i32 %v
}
"""
        message = trap_both(src, "f", [0])
        assert "out-of-bounds access" in message


class TestTrapParity:
    def test_division_by_zero(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = sdiv i32 %a, %b
  ret i32 %r
}
"""
        trap_both(src, "f", [7, 0])

    def test_unreachable(self):
        src = """
define void @f() {
entry:
  unreachable
}
"""
        assert trap_both(src, "f") == "executed unreachable"

    def test_step_limit_agrees_exactly(self):
        src = """
define void @spin() {
entry:
  br label %loop

loop:
  br label %loop
}
"""
        module = parse_module(src)
        steps = []
        for evaluator in EVALUATOR_CHOICES:
            with pytest.raises(StepLimitExceeded) as info:
                run_function(
                    module, "spin", step_limit=1000, evaluator=evaluator
                )
            steps.append(str(info.value))
        assert steps[0] == steps[1] == "exceeded 1000 steps"

    def test_callee_arity_trap(self):
        src = """
define i32 @id(i32 %x) {
entry:
  ret i32 %x
}
"""
        module = parse_module(src)
        for evaluator in EVALUATOR_CHOICES:
            machine = make_machine(module, evaluator)
            with pytest.raises(TrapError, match="expects 1 args, got 2"):
                machine.call(module.get_function("id"), [1, 2])


class TestCastsAndCallsParity:
    def test_casts(self):
        src = """
define i64 @f(i8 %x) {
entry:
  %s = sext i8 %x to i64
  ret i64 %s
}

define i32 @g(float %x) {
entry:
  %b = bitcast float %x to i32
  ret i32 %b
}

define i32 @h(double %x) {
entry:
  %t = fptosi double %x to i32
  ret i32 %t
}
"""
        assert run_both(src, "f", [-1])[0] == -1
        expected = struct.unpack("<i", struct.pack("<f", 1.0))[0]
        assert run_both(src, "g", [1.0])[0] == expected
        # fptosi of NaN is pinned to 0 in both backends.
        assert run_both(src, "h", [float("nan")])[0] == 0

    def test_extern_trace_and_defaults(self):
        src = """
declare i32 @ext(i32)

define i32 @f() {
entry:
  %a = call i32 @ext(i32 1)
  %b = call i32 @ext(i32 2)
  %r = add i32 %a, %b
  ret i32 %r
}
"""
        result, interp, _ = run_both(
            src, "f", externs={"ext": lambda m, args: args[0] * 10}
        )
        assert result == 30
        assert interp.extern_trace == [("ext", (1,)), ("ext", (2,))]
        # The deterministic default handler must also agree.
        run_both(src, "f")

    def test_indirect_call(self):
        src = """
define i32 @double(i32 %x) {
entry:
  %r = add i32 %x, %x
  ret i32 %r
}

define i32 @f(i64 %fp) {
entry:
  %r = call i32 @double(i32 21)
  ret i32 %r
}
"""
        module = parse_module(src)
        caller = module.get_function("f")
        call_inst = caller.entry.instructions[0]
        # Rewrite the direct call into an indirect one through %fp
        # (the parser has no syntax for function-pointer calls).
        call_inst.set_operand(0, caller.arguments[0])
        for evaluator in EVALUATOR_CHOICES:
            machine = make_machine(module, evaluator)
            address = module.get_function("double")._interp_address
            fn = module.get_function("f")
            assert machine.call(fn, [address]) == 42
            with pytest.raises(TrapError, match="invalid address 12345"):
                machine.call(fn, [12345])


class TestBackendPlumbing:
    def test_make_machine_rejects_unknown(self):
        module = parse_module("define void @f() {\nentry:\n  ret void\n}\n")
        with pytest.raises(ValueError) as info:
            make_machine(module, "jit")
        for choice in EVALUATOR_CHOICES:
            assert choice in str(info.value)

    def test_program_reuse_across_machines(self):
        src = """
define i32 @f(i32 %x) {
entry:
  %r = mul i32 %x, 3
  ret i32 %r
}
"""
        module = parse_module(src)
        program = CompiledProgram(module)
        fn = module.get_function("f")
        for x in (1, 2, 3):
            machine = CompiledMachine(module, program=program)
            assert machine.call(fn, [x]) == 3 * x

    def test_program_must_match_module(self):
        module_a = parse_module("define void @f() {\nentry:\n  ret void\n}\n")
        module_b = parse_module("define void @f() {\nentry:\n  ret void\n}\n")
        program = CompiledProgram(module_a)
        with pytest.raises(ValueError):
            CompiledMachine(module_b, program=program)

    def test_instruction_hook_sees_same_stream(self):
        src = """
define i32 @f(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %pos, label %neg

pos:
  %a = add i32 %n, 1
  ret i32 %a

neg:
  %b = sub i32 %n, 1
  ret i32 %b
}
"""
        module = parse_module(src)
        streams = {}
        for evaluator in EVALUATOR_CHOICES:
            machine = make_machine(module, evaluator)
            opcodes = []
            machine.instruction_hook = lambda inst: opcodes.append(inst.opcode)
            machine.call(module.get_function("f"), [5])
            streams[evaluator] = opcodes
        assert streams["interp"] == streams["compiled"]
        assert streams["interp"] == ["icmp", "br", "add", "ret"]


class TestFuzzerParity:
    def test_parity_smoke_bounded(self):
        # Tier-1 keeps a small always-on sweep; the full 200-case
        # campaign runs under `-m slow`.
        assert check_backend_parity(0, 20) == []

    @pytest.mark.slow
    def test_parity_smoke_200(self):
        mismatches = check_backend_parity(0, 200)
        assert mismatches == [], "\n".join(mismatches)


@pytest.mark.fault
class TestParityUnderFaults:
    def test_evaluator_fault_is_a_structured_entry(self):
        from repro.faultinject import FaultPlan, active_plan, clear_plan

        clear_plan()
        try:
            plan = FaultPlan.parse("difftest.observe:raise@1x*")
            with active_plan(plan):
                mismatches = check_backend_parity(0, 2, run_pipeline=False)
        finally:
            clear_plan()
        # Every vector degrades to a structured "evaluator error" line
        # instead of a traceback unwinding the whole sweep.
        assert mismatches
        assert all("evaluator error" in m for m in mismatches)
