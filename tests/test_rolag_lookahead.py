"""Tests for look-ahead commutative operand reordering (paper VI-A)."""

import pytest

from tests.helpers import assert_transform_preserves, ints_to_bytes

from repro.ir import parse_module
from repro.rolag import RolagConfig, RolagStats, roll_loops_in_function
from repro.rolag.alignment import _similarity


class TestSimilarityScoring:
    def test_identity_scores_highest(self):
        m = parse_module(
            """
define i32 @f(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %x, %y
  ret i32 %a
}
"""
        )
        a, b, _ = m.get_function("f").entry.instructions
        x = m.get_function("f").arguments[0]
        assert _similarity(x, x) > _similarity(a, b)

    def test_lookahead_distinguishes_same_opcode(self):
        # Two muls: one shares operand structure with the reference
        # (load * invariant), the other multiplies unrelated values.
        m = parse_module(
            """
define void @f(i32* %p, i32 %k, i32 %u, i32 %v) {
entry:
  %l0 = load i32, i32* %p
  %ref = mul i32 %l0, %k
  %g1 = getelementptr i32, i32* %p, i64 1
  %l1 = load i32, i32* %g1
  %good = mul i32 %l1, %k
  %bad = mul i32 %u, %v
  store i32 %ref, i32* %p
  store i32 %good, i32* %g1
  store i32 %bad, i32* %g1
  ret void
}
"""
        )
        insts = {i.name: i for i in m.get_function("f").entry.instructions}
        assert _similarity(insts["ref"], insts["good"]) > _similarity(
            insts["ref"], insts["bad"]
        )

    def test_depth_zero_flat(self):
        m = parse_module(
            """
define void @f(i32* %p, i32 %k, i32 %u, i32 %v) {
entry:
  %l0 = load i32, i32* %p
  %a = mul i32 %l0, %k
  %b = mul i32 %u, %v
  store i32 %a, i32* %p
  store i32 %b, i32* %p
  ret void
}
"""
        )
        insts = {i.name: i for i in m.get_function("f").entry.instructions}
        assert _similarity(insts["a"], insts["b"], depth=0) == _similarity(
            insts["b"], insts["a"], depth=0
        )


class TestReorderingEndToEnd:
    def _swapped_mul_source(self, lanes):
        """store (k * x[i]) with the mul operands swapped on odd lanes;
        both operands are same-opcode loads, so only look-ahead can tell
        which order aligns (x-loads stride together, k is invariant-ish
        via a load from q)."""
        lines = ["define void @f(i32* %x, i32* %q, i32* %out) {", "entry:"]
        lines.append("  %k = load i32, i32* %q")
        for i in range(lanes):
            lines.append(f"  %gx{i} = getelementptr i32, i32* %x, i64 {i}")
            lines.append(f"  %lx{i} = load i32, i32* %gx{i}")
            if i % 2 == 0:
                lines.append(f"  %m{i} = mul i32 %lx{i}, %k")
            else:
                lines.append(f"  %m{i} = mul i32 %k, %lx{i}")
            lines.append(f"  %go{i} = getelementptr i32, i32* %out, i64 {i}")
            lines.append(f"  store i32 %m{i}, i32* %go{i}")
        lines += ["  ret void", "}"]
        return "\n".join(lines)

    def test_swapped_lanes_align_without_mismatch(self):
        src = self._swapped_mul_source(6)
        stats = RolagStats()

        def transform(m):
            return roll_loops_in_function(m.get_function("f"), stats=stats)

        rolled, _ = assert_transform_preserves(
            src,
            transform,
            "f",
            buffer_specs=[
                ints_to_bytes([2, 3, 4, 5, 6, 7]),
                ints_to_bytes([10]),
                ints_to_bytes([0] * 6),
            ],
        )
        assert rolled == 1
        assert stats.node_counts.get("mismatch", 0) == 0

    def test_reordering_disabled_degrades(self):
        src = self._swapped_mul_source(6)
        m = parse_module(src)
        config = RolagConfig(enable_commutative_reordering=False)
        stats = RolagStats()
        roll_loops_in_function(m.get_function("f"), config=config, stats=stats)
        # Without reordering a single clean 6-lane roll is impossible:
        # the pipeline either fails, pays for mismatch arrays, or falls
        # back to splitting the group into even/odd joint subsequences
        # (each internally consistent) -- strictly more structure than
        # the reordering-enabled single match.
        degraded = (
            stats.rolled == 0
            or stats.node_counts.get("mismatch", 0) > 0
            or stats.node_counts.get("joint", 0) > 0
        )
        assert degraded
        # And it must still be correct either way.
        from repro.ir import verify_module

        verify_module(m)
