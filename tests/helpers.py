"""Shared test utilities: differential execution of transforms."""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir import (
    F32,
    F64,
    FloatType,
    I16,
    I32,
    I64,
    I8,
    IntType,
    Machine,
    Module,
    PointerType,
    parse_module,
    verify_module,
)


class Observation:
    """Everything observable about one execution."""

    def __init__(
        self,
        result: object,
        globals_content: Dict[str, bytes],
        extern_trace: List[Tuple[str, tuple]],
        buffers: List[bytes],
        steps: int,
    ) -> None:
        self.result = result
        self.globals_content = globals_content
        self.extern_trace = extern_trace
        self.buffers = buffers
        self.steps = steps

    def same_behaviour(self, other: "Observation") -> bool:
        # Transforms may add compiler-generated constant globals (e.g.
        # RoLAG mismatch tables); only the original globals are state.
        globals_match = all(
            other.globals_content.get(name) == content
            for name, content in self.globals_content.items()
        )
        return (
            self.result == other.result
            and globals_match
            and self.buffers == other.buffers
            and _normalize_trace(self.extern_trace)
            == _normalize_trace(other.extern_trace)
        )

    def explain_difference(self, other: "Observation") -> str:
        parts = []
        if self.result != other.result:
            parts.append(f"result {self.result!r} != {other.result!r}")
        if self.globals_content != other.globals_content:
            for name in self.globals_content:
                if self.globals_content[name] != other.globals_content.get(name):
                    parts.append(f"global @{name} differs")
        if self.buffers != other.buffers:
            parts.append("argument buffers differ")
        if _normalize_trace(self.extern_trace) != _normalize_trace(
            other.extern_trace
        ):
            parts.append(
                f"extern trace {self.extern_trace} != {other.extern_trace}"
            )
        return "; ".join(parts) or "identical"


def _normalize_trace(trace):
    # Pointer arguments differ in absolute address between runs; traces
    # are compared as sequences of (name, arity) plus non-huge ints.
    out = []
    for name, args in trace:
        out.append(
            (name, tuple(a if isinstance(a, int) and abs(a) < 4096 else "<ptr>"
                          for a in args))
        )
    return out


def execute(
    module: Module,
    fn_name: str,
    scalar_args: Sequence[object] = (),
    buffer_specs: Sequence[bytes] = (),
    externs: Optional[Dict[str, Callable]] = None,
    step_limit: int = 5_000_000,
) -> Observation:
    """Run a function with fresh buffers and capture the observation.

    ``buffer_specs`` are initial byte contents; each becomes a fresh
    allocation whose address is appended to the argument list.
    """
    machine = Machine(module, step_limit=step_limit)
    for name, handler in (externs or {}).items():
        machine.register_extern(name, handler)
    addresses = []
    for spec in buffer_specs:
        addr = machine.alloc(max(len(spec), 1))
        machine.write_bytes(addr, spec)
        addresses.append(addr)
    fn = module.get_function(fn_name)
    assert fn is not None, f"no function @{fn_name}"
    result = machine.call(fn, list(scalar_args) + addresses)
    buffers = [
        machine.read_bytes(addr, len(spec))
        for addr, spec in zip(addresses, buffer_specs)
    ]
    return Observation(
        result=result,
        globals_content=machine.global_contents(),
        extern_trace=machine.extern_trace,
        buffers=buffers,
        steps=machine.steps,
    )


def assert_transform_preserves(
    source: str,
    transform: Callable[[Module], object],
    fn_name: str,
    scalar_args: Sequence[object] = (),
    buffer_specs: Sequence[bytes] = (),
    externs: Optional[Dict[str, Callable]] = None,
) -> Tuple[object, Module]:
    """Parse, run, transform, verify, run again, compare observations.

    Returns (transform return value, transformed module).
    """
    module = parse_module(source)
    verify_module(module)
    before = execute(module, fn_name, scalar_args, buffer_specs, externs)
    outcome = transform(module)
    verify_module(module)
    after = execute(module, fn_name, scalar_args, buffer_specs, externs)
    assert before.same_behaviour(after), before.explain_difference(after)
    return outcome, module


def ints_to_bytes(values: Sequence[int], width: int = 4) -> bytes:
    fmt = {1: "b", 2: "h", 4: "i", 8: "q"}[width]
    return struct.pack(f"<{len(values)}{fmt}", *values)


def floats_to_bytes(values: Sequence[float], width: int = 4) -> bytes:
    fmt = {4: "f", 8: "d"}[width]
    return struct.pack(f"<{len(values)}{fmt}", *values)


def bytes_to_ints(raw: bytes, width: int = 4) -> List[int]:
    fmt = {1: "b", 2: "h", 4: "i", 8: "q"}[width]
    count = len(raw) // width
    return list(struct.unpack(f"<{count}{fmt}", raw[: count * width]))
