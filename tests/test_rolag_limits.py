"""Known-limitation tests (paper Fig. 20 and Section V-C).

RoLAG is a single-block transform: multi-block loop bodies and min/max
reductions (compare+branch form) are out of scope -- the pass must skip
them cleanly rather than miscompile.
"""

import pytest

from tests.helpers import assert_transform_preserves, execute, ints_to_bytes

from repro.frontend import compile_c
from repro.ir import parse_module, verify_module
from repro.rolag import RolagConfig, RolagStats, roll_loops_in_module
from repro.transforms import unroll_loops


class TestMultiBlockLimitation:
    def test_conditional_body_not_rolled(self):
        # Paper Fig. 20a (kernel s271): if inside the loop body means
        # multiple blocks after unrolling; neither technique handles it.
        source = """
int a[64]; int b[64]; int c[64];

void s271(void) {
  for (int i = 0; i < 64; i++) {
    if (b[i] > 0) {
      a[i] += b[i] * c[i];
    }
  }
}
"""
        module = compile_c(source)
        unroll_loops(module.get_function("s271"), 8)
        verify_module(module)
        stats = RolagStats()
        rolled = roll_loops_in_module(module, stats=stats)
        # The unrolled body spans many blocks; the per-block store
        # groups are all 1-wide, so nothing rolls.
        assert rolled == 0

    MINMAX_SOURCE = """
int a[32];

int s3113(void) {
  int max = a[0];
  for (int i = 1; i < 25; i++) {
    if (a[i] > max) {
      max = a[i];
    }
  }
  return max;
}
"""

    def test_min_max_rolled_loop_left_alone(self):
        # Paper Fig. 20b (kernel s3113): already-rolled min/max loops
        # have a single select link -- nothing to roll.
        module = compile_c(self.MINMAX_SOURCE)
        stats = RolagStats()
        rolled = roll_loops_in_module(module, stats=stats)
        assert rolled == 0

    def test_min_max_extension_rolls_unrolled_chain(self):
        # The paper proposes supporting this via the select lowering
        # ("the single block solution should suffice"); the
        # MinMaxReductionNode extension implements it.
        from repro.ir import Machine, I32

        module = compile_c(self.MINMAX_SOURCE)
        unroll_loops(module.get_function("s3113"), 8)
        verify_module(module)

        def run(mod):
            machine = Machine(mod)
            addr = machine.global_addresses["a"]
            for i in range(32):
                machine.write_value(addr + 4 * i, I32, (i * 37) % 61 - 13)
            return machine.call(mod.get_function("s3113"), [])

        expected = run(module)
        stats = RolagStats()
        rolled = roll_loops_in_module(module, stats=stats)
        verify_module(module)
        assert rolled == 1
        assert stats.node_counts["minmax"] == 1
        assert run(module) == expected

    def test_min_max_extension_can_be_disabled(self):
        module = compile_c(self.MINMAX_SOURCE)
        unroll_loops(module.get_function("s3113"), 8)
        config = RolagConfig(enable_minmax=False)
        assert roll_loops_in_module(module, config=config) == 0


class TestRobustness:
    def test_empty_function(self):
        m = parse_module("define void @f() {\nentry:\n  ret void\n}")
        assert roll_loops_in_module(m) == 0

    def test_declaration_only_module(self):
        m = parse_module("declare void @x(i32)")
        assert roll_loops_in_module(m) == 0

    def test_single_store(self):
        m = parse_module(
            """
define void @f(i32* %p) {
entry:
  store i32 1, i32* %p
  ret void
}
"""
        )
        assert roll_loops_in_module(m) == 0

    def test_volatile_like_duplicate_stores_to_same_address(self):
        # All stores hit the same location: ptr stride is zero, so the
        # ptr-seq rule does not apply; only the last store survives
        # semantically and rolling must keep that outcome.
        src = """
define void @f(i32* %p) {
entry:
  store i32 1, i32* %p
  store i32 2, i32* %p
  store i32 3, i32* %p
  store i32 4, i32* %p
  ret void
}
"""
        def transform(m):
            return roll_loops_in_module(m)

        _, module = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([0])]
        )

    def test_mixed_width_stores_not_grouped(self):
        src = """
define void @f(i8* %p) {
entry:
  store i8 1, i8* %p
  %q = bitcast i8* %p to i32*
  %q1 = getelementptr i32, i32* %q, i64 1
  store i32 2, i32* %q1
  %p2 = getelementptr i8, i8* %p, i64 8
  store i8 3, i8* %p2
  ret void
}
"""
        m = parse_module(src)
        rolled = roll_loops_in_module(m)
        verify_module(m)
        assert rolled == 0

    def test_all_special_nodes_disabled_still_safe(self):
        src = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 7, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 7, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 7, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 7, i32* %p3
  ret void
}
"""
        config = RolagConfig().all_special_disabled()

        def transform(m):
            return roll_loops_in_module(m, config=config)

        assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([0] * 4)]
        )

    def test_deeply_nested_gep_chains(self):
        src = """
define void @f(i8* %p) {
entry:
  %a = getelementptr i8, i8* %p, i64 1
  %b = getelementptr i8, i8* %a, i64 1
  %c = getelementptr i8, i8* %b, i64 1
  store i8 1, i8* %c
  %d = getelementptr i8, i8* %p, i64 6
  store i8 1, i8* %d
  %e = getelementptr i8, i8* %p, i64 9
  store i8 1, i8* %e
  %g = getelementptr i8, i8* %p, i64 12
  store i8 1, i8* %g
  ret void
}
"""
        def transform(m):
            return roll_loops_in_module(m)

        rolled, _ = assert_transform_preserves(
            src, transform, "f", buffer_specs=[b"\0" * 16]
        )
        # Offsets 3, 6, 9, 12 form a stride-3 byte sequence across a
        # nested chain; rolling is legal either way.

    def test_rolling_then_cleanup_pipeline(self):
        from repro.transforms import default_cleanup_pipeline

        src = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 7, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 7, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 7, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 7, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 7, i32* %p4
  ret void
}
"""
        def transform(m):
            rolled = roll_loops_in_module(m)
            default_cleanup_pipeline().run(m)
            return rolled

        rolled, module = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([0] * 5)]
        )
        assert rolled == 1
