"""Property tests: alias analysis offsets agree with the interpreter.

``constant_offset(ptr)`` claims the byte distance between a GEP-chain
result and its underlying object.  The reference interpreter computes
the same addresses independently (via DataLayout walks), so for any
randomly-built chain the two must agree exactly -- and alias verdicts
derived from those offsets must match observed overlap.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import AliasAnalysis, AliasResult, constant_offset
from repro.ir import (
    ArrayType,
    FunctionType,
    GetElementPtr,
    I32,
    I64,
    I8,
    IRBuilder,
    IntType,
    Machine,
    Module,
    PointerType,
    StructType,
    VOID,
    ConstantInt,
    verify_module,
)

#: A fixed struct used by chains (unique name keeps interning happy).
_STRUCT = StructType([I8, I32, I64, ArrayType(I32, 4)], "alias_prop_struct")


def _build_chain(steps):
    """One function computing a GEP chain; returns (module, geps)."""
    module = Module()
    fn = module.add_function(
        "f", FunctionType(VOID, [PointerType(I8)]), ["base"]
    )
    block = fn.add_block("entry")
    builder = IRBuilder(block)
    cursor = fn.arguments[0]
    geps = []
    for kind, value in steps:
        if kind == "byte":
            cursor = builder.gep(I8, cursor, [builder.i64(value)])
        elif kind == "i32":
            cursor = builder.bitcast(cursor, PointerType(I32))
            cursor = builder.gep(I32, cursor, [builder.i64(value)])
        elif kind == "struct":
            cursor = builder.bitcast(cursor, PointerType(_STRUCT))
            cursor = builder.gep(
                _STRUCT,
                cursor,
                [builder.i64(0), ConstantInt(I64, value % 4)],
            )
        geps.append(cursor)
    # Keep the chain alive.
    final = cursor
    if not final.type.pointee.is_first_class or final.type.pointee.is_array:
        final = builder.bitcast(final, PointerType(I8))
    builder.store(
        ConstantInt(IntType(final.type.pointee.bits), 0)
        if final.type.pointee.is_integer
        else builder.i8(0),
        final if final.type.pointee.is_integer else builder.bitcast(final, PointerType(I8)),
    )
    builder.ret()
    return module, fn, cursor


@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from(["byte", "i32", "struct"]),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=80, deadline=None)
def test_constant_offset_matches_interpreter(steps):
    module, fn, cursor = _build_chain(steps)
    verify_module(module)
    offset = constant_offset(cursor)
    assert offset is not None  # all indices are constants

    # Interpreter check: evaluate the chain with a known base address.
    machine = Machine(module)
    base = machine.alloc(4096)
    env = {id(fn.arguments[0]): base}
    for inst in fn.entry.instructions:
        if inst.is_terminator:
            break
        result = machine._execute(inst, env)
        if not inst.type.is_void:
            env[id(inst)] = result
    assert env[id(cursor)] - base == offset


@given(
    offset_a=st.integers(min_value=0, max_value=64),
    offset_b=st.integers(min_value=0, max_value=64),
    size_a=st.sampled_from([1, 2, 4, 8]),
    size_b=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=80, deadline=None)
def test_alias_verdicts_match_overlap(offset_a, offset_b, size_a, size_b):
    module = Module()
    fn = module.add_function(
        "f", FunctionType(VOID, [PointerType(I8)]), ["p"]
    )
    block = fn.add_block("entry")
    builder = IRBuilder(block)
    pa = builder.gep(I8, fn.arguments[0], [builder.i64(offset_a)])
    pb = builder.gep(I8, fn.arguments[0], [builder.i64(offset_b)])
    builder.store(builder.i8(0), pa)
    builder.store(builder.i8(0), pb)
    builder.ret()

    aa = AliasAnalysis(fn)
    verdict = aa.alias(pa, size_a, pb, size_b)
    overlaps = not (
        offset_a + size_a <= offset_b or offset_b + size_b <= offset_a
    )
    if overlaps:
        assert verdict in (AliasResult.MAY, AliasResult.MUST)
        if offset_a == offset_b and size_a == size_b:
            assert verdict is AliasResult.MUST
    else:
        assert verdict is AliasResult.NO
