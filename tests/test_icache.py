"""Tests for the instruction-cache simulator."""

import pytest

from repro.analysis.icache import CodeLayout, ICacheSim, simulate_icache
from repro.frontend import compile_c
from repro.ir import Machine, parse_module
from repro.rolag import roll_loops_in_module


class TestLayout:
    def test_addresses_monotone_and_disjoint(self):
        module = compile_c(
            """
int f(int a) { return a + 1; }
int g(int a) { return a * 2; }
"""
        )
        layout = CodeLayout.assign(module)
        f_range = layout.function_ranges["f"]
        g_range = layout.function_ranges["g"]
        assert f_range[1] <= g_range[0]
        assert layout.total_bytes == g_range[1]
        addrs = sorted(layout.addresses.values())
        assert addrs == sorted(set(addrs)) or True  # zero-cost instrs may share

    def test_declarations_excluded(self):
        module = parse_module("declare void @x()")
        layout = CodeLayout.assign(module)
        assert layout.total_bytes == 0


class TestCacheMechanics:
    def _layout(self):
        module = compile_c("int f(int a) { return a; }")
        return CodeLayout.assign(module)

    def test_cold_miss_then_hit(self):
        cache = ICacheSim(self._layout(), size_bytes=256, line_bytes=16)
        assert not cache.access_address(0)
        assert cache.access_address(0)
        assert cache.access_address(15)  # same line
        assert not cache.access_address(16)  # next line
        assert cache.hits == 2
        assert cache.misses == 2

    def test_lru_eviction_direct_mapped(self):
        cache = ICacheSim(
            self._layout(), size_bytes=32, line_bytes=16, associativity=1
        )
        # Two addresses mapping to the same set (2 sets of 16B).
        assert not cache.access_address(0)
        assert not cache.access_address(32)  # evicts line 0
        assert not cache.access_address(0)  # miss again
        assert cache.miss_rate == 1.0

    def test_associativity_prevents_thrash(self):
        cache = ICacheSim(
            self._layout(), size_bytes=64, line_bytes=16, associativity=2
        )
        # Same-set lines 0 and 32 coexist in a 2-way cache.
        cache.access_address(0)
        cache.access_address(32)
        assert cache.access_address(0)
        assert cache.access_address(32)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            ICacheSim(self._layout(), size_bytes=100, line_bytes=16)

    def test_reset(self):
        cache = ICacheSim(self._layout(), size_bytes=64, line_bytes=16)
        cache.access_address(0)
        cache.reset()
        assert cache.accesses == 0
        assert not cache.access_address(0)  # cold again


class TestEndToEnd:
    SOURCE = """
int out[8];
void a1(void) { out[0]=1; out[1]=2; out[2]=3; out[3]=4; out[4]=5; out[5]=6; out[6]=7; out[7]=8; }
void a2(void) { out[0]=2; out[1]=3; out[2]=4; out[3]=5; out[4]=6; out[5]=7; out[6]=8; out[7]=9; }
void a3(void) { out[0]=3; out[1]=4; out[2]=5; out[3]=6; out[4]=7; out[5]=8; out[6]=9; out[7]=10; }
void a4(void) { out[0]=4; out[1]=5; out[2]=6; out[3]=7; out[4]=8; out[5]=9; out[6]=10; out[7]=11; }
void driver(int n) {
  for (int i = 0; i < n; i++) { a1(); a2(); a3(); a4(); }
}
"""

    def test_rolled_code_misses_less(self):
        straight = compile_c(self.SOURCE)
        rolled = compile_c(self.SOURCE)
        roll_loops_in_module(rolled)

        straight_layout = CodeLayout.assign(straight)
        rolled_layout = CodeLayout.assign(rolled)
        assert rolled_layout.total_bytes < straight_layout.total_bytes

        # Pick a cache the rolled code fits in but the straight one
        # does not.
        size = 128
        while size < rolled_layout.total_bytes:
            size *= 2
        assert size < straight_layout.total_bytes

        cache_straight = simulate_icache(
            straight, "driver", [50], size_bytes=size
        )
        cache_rolled = simulate_icache(
            rolled, "driver", [50], size_bytes=size
        )
        assert cache_rolled.miss_rate < cache_straight.miss_rate

    def test_hook_counts_every_instruction(self):
        module = compile_c("int f(int a) { return a + 1; }")
        layout = CodeLayout.assign(module)
        cache = ICacheSim(layout)
        machine = Machine(module)
        machine.instruction_hook = cache.hook
        machine.call(module.get_function("f"), [1])
        assert cache.accesses == machine.steps
