"""Scheduling-analysis safety tests (paper Section IV-D, Fig. 13).

Rolling reorders instructions; these tests craft blocks where a naive
reordering would be wrong and check that the analysis refuses them --
and that legal-but-tricky reorderings still succeed and stay correct.
"""

import pytest

from tests.helpers import assert_transform_preserves, execute, ints_to_bytes

from repro.ir import parse_module, verify_module
from repro.rolag import (
    RolagConfig,
    RolagStats,
    roll_loops_in_function,
)


def roll(module, name="f", config=None, stats=None):
    return roll_loops_in_function(
        module.get_function(name), config=config, stats=stats
    )


class TestMemoryOrderingSafety:
    def test_interleaved_conflicting_store_blocks_roll(self):
        # A store to p[1] sits between the group's stores and would be
        # overtaken by the rolled loop: must not roll (or must stay
        # correct if some subgroup is found).
        src = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  %clobber = getelementptr i32, i32* %p, i64 2
  store i32 99, i32* %clobber
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 1, i32* %p3
  ret void
}
"""
        def transform(m):
            return roll(m)

        # p[2] must end as 1 (group store wins over the 99 clobber).
        _, module = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([0] * 4)]
        )

    def test_load_after_group_store_blocks_reorder(self):
        # A load between the stores observes the partially-updated
        # buffer and feeds a later store: rolling the group past it
        # would change its value.
        src = """
define void @f(i32* %p, i32* %out) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 5, i32* %p0
  %snoop = load i32, i32* %p0
  store i32 %snoop, i32* %out
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 5, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 5, i32* %p2
  ret void
}
"""
        def transform(m):
            return roll(m)

        _, module = assert_transform_preserves(
            src,
            transform,
            "f",
            buffer_specs=[ints_to_bytes([0, 0, 0]), ints_to_bytes([0])],
        )

    def test_maybe_aliasing_arguments_conservative(self):
        # %q may alias %p: loads through %q cannot migrate across the
        # store group, whatever the rolled order is.
        src = """
define i32 @f(i32* %p, i32* %q) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %p0
  %v = load i32, i32* %q
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %p2
  ret i32 %v
}
"""
        m = parse_module(src)
        rolled = roll(m)
        verify_module(m)
        # Aliased run: q == &p[1]; the load must still see the OLD p[1].
        from repro.ir import Machine

        def run(module):
            mach = Machine(module)
            buf = mach.alloc(12)
            mach.write_bytes(buf, ints_to_bytes([7, 8, 9]))
            result = mach.call(module.get_function("f"), [buf, buf + 4])
            return result, mach.read_bytes(buf, 12)

        fresh = parse_module(src)
        assert run(fresh) == run(m)

    def test_opaque_call_between_stores(self):
        src = """
declare void @fence()

define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  call void @fence()
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 1, i32* %p3
  ret void
}
"""
        m = parse_module(src)
        stats = RolagStats()
        rolled = roll(m, stats=stats)
        verify_module(m)
        # The 4-store group cannot cross the call; subgroups of 2 are
        # unprofitable, so typically nothing rolls -- and whatever
        # happens, behaviour is preserved.
        before = execute(
            parse_module(src), "f", buffer_specs=[ints_to_bytes([0] * 4)]
        )
        after = execute(m, "f", buffer_specs=[ints_to_bytes([0] * 4)])
        assert before.same_behaviour(after)

    def test_disjoint_buffers_allow_interleaved_rolls(self):
        # Stores to two provably distinct allocas interleave; alias
        # analysis knows they cannot conflict, so each group can roll.
        src = """
define void @f(i32* %p, i32* %q) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %p0
  %q0 = getelementptr i32, i32* %q, i64 0
  store i32 2, i32* %q0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  %q1 = getelementptr i32, i32* %q, i64 1
  store i32 2, i32* %q1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %p2
  %q2 = getelementptr i32, i32* %q, i64 2
  store i32 2, i32* %q2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 1, i32* %p3
  %q3 = getelementptr i32, i32* %q, i64 3
  store i32 2, i32* %q3
  ret void
}
"""
        def transform(m):
            return roll(m)

        rolled, module = assert_transform_preserves(
            src,
            transform,
            "f",
            buffer_specs=[ints_to_bytes([0] * 4), ints_to_bytes([0] * 4)],
        )
        assert rolled >= 1


class TestDependenceDirection:
    def test_input_dependency_hoisted_before_loop(self):
        # A shared scale factor computed mid-block must end up in the
        # preheader.
        src = """
define void @f(i32 %x, i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  %scale = mul i32 %x, 3
  store i32 %scale, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 %scale, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 %scale, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 %scale, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 %scale, i32* %p4
  ret void
}
"""
        def transform(m):
            return roll(m)

        rolled, module = assert_transform_preserves(
            src, transform, "f", [7], buffer_specs=[ints_to_bytes([0] * 5)]
        )
        assert rolled == 1
        fn = module.get_function("f")
        preheader = fn.entry
        assert any(i.opcode == "mul" for i in preheader.instructions)

    def test_independent_tail_code_moves_after(self):
        src = """
declare i32 @pure(i32) readnone

define i32 @f(i32 %x, i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %p0
  %tail = call i32 @pure(i32 %x)
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 1, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 1, i32* %p4
  ret i32 %tail
}
"""
        def transform(m):
            return roll(m)

        rolled, module = assert_transform_preserves(
            src,
            transform,
            "f",
            [3],
            buffer_specs=[ints_to_bytes([0] * 5)],
            externs={"pure": lambda m, a: a[0] + 1},
        )
        assert rolled == 1

    def test_phi_in_block_stays_in_preheader(self):
        # The rolled block sits inside an outer loop; its phi must stay
        # at the top of the preheader.
        src = """
define void @f(i32 %n, i32* %p) {
entry:
  br label %outer

outer:
  %iter = phi i32 [ 0, %entry ], [ %iter.next, %outer ]
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 %iter, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 %iter, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 %iter, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 %iter, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 %iter, i32* %p4
  %iter.next = add i32 %iter, 1
  %c = icmp slt i32 %iter.next, %n
  br i1 %c, label %outer, label %done

done:
  ret void
}
"""
        def transform(m):
            return roll(m)

        rolled, module = assert_transform_preserves(
            src, transform, "f", [3], buffer_specs=[ints_to_bytes([0] * 5)]
        )
        assert rolled == 1
        verify_module(module)


class TestScheduleStats:
    def test_rejections_are_counted(self):
        src = """
declare void @fence()

define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %p0
  call void @fence()
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  call void @fence()
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %p2
  ret void
}
"""
        # 3 stores vs 2 calls: group sizes differ so no joint; the
        # store group cannot cross the opaque calls.
        m = parse_module(src)
        stats = RolagStats()
        rolled = roll(m, stats=stats)
        assert rolled == 0
        assert stats.schedule_rejected >= 1
