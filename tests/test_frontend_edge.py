"""Frontend edge cases: trickier C constructs and diagnostics."""

import pytest

from repro.frontend import CParseError, LowerError, compile_c
from repro.ir import I32, I64, Machine, run_function, verify_module


def run_c(source, fn, args=(), externs=None):
    module = compile_c(source)
    return run_function(module, fn, args, externs)


class TestExpressions:
    def test_comma_operator(self):
        src = "int f(int x) { int y; y = (x = x + 1, x * 2); return y; }"
        assert run_c(src, "f", [5])[0] == 12

    def test_chained_assignment_like(self):
        src = "int f(void) { int a; int b; a = b = 7; return a + b; }"
        assert run_c(src, "f")[0] == 14

    @pytest.mark.parametrize("op,expected", [
        ("+=", 15), ("-=", 5), ("*=", 50), ("/=", 2), ("%=", 0),
        ("&=", 0), ("|=", 15), ("^=", 15), ("<<=", 320), (">>=", 0),
    ])
    def test_compound_assignments(self, op, expected):
        src = f"int f(void) {{ int x = 10; x {op} 5; return x; }}"
        assert run_c(src, "f")[0] == expected

    def test_pre_vs_post_increment(self):
        assert run_c("int f(void) { int x = 5; int y = x++; return y * 100 + x; }",
                     "f")[0] == 506
        assert run_c("int f(void) { int x = 5; int y = ++x; return y * 100 + x; }",
                     "f")[0] == 606

    def test_pointer_increment(self):
        src = """
int f(int *p) {
  int *q = p;
  q++;
  return *q;
}
"""
        module = compile_c(src)
        machine = Machine(module)
        buf = machine.alloc(8)
        machine.write_value(buf + 4, I32, 99)
        assert machine.call(module.get_function("f"), [buf]) == 99

    def test_negative_literals_and_unary(self):
        assert run_c("int f(void) { return -(-5); }", "f")[0] == 5
        assert run_c("int f(void) { return ~0; }", "f")[0] == -1
        assert run_c("int f(int x) { return !x; }", "f", [0])[0] == 1
        assert run_c("int f(int x) { return !x; }", "f", [3])[0] == 0

    def test_hex_literals(self):
        assert run_c("int f(void) { return 0xFF + 0x10; }", "f")[0] == 271

    def test_char_arithmetic(self):
        assert run_c("int f(void) { return 'A' + 1; }", "f")[0] == 66

    def test_nested_ternary(self):
        src = "int f(int x) { return x > 10 ? 2 : x > 5 ? 1 : 0; }"
        assert run_c(src, "f", [11])[0] == 2
        assert run_c(src, "f", [7])[0] == 1
        assert run_c(src, "f", [2])[0] == 0

    def test_logical_or_short_circuit(self):
        src = """
int g;
int touch(void) { g = 1; return 1; }
int f(int x) { return x != 0 || touch() != 0; }
"""
        module = compile_c(src)
        import struct

        result, machine = run_function(module, "f", [5])
        assert result == 1
        assert struct.unpack("<i", machine.global_contents()["g"])[0] == 0


class TestTypesAndConversions:
    def test_long_arithmetic(self):
        src = "long f(long a, long b) { return a * b; }"
        assert run_c(src, "f", [3_000_000_000, 2])[0] == 6_000_000_000

    def test_int_truncation_on_assign(self):
        src = "int f(long x) { int y = x; return y; }"
        assert run_c(src, "f", [0x1_0000_0005])[0] == 5

    def test_unsigned_right_shift(self):
        src = "unsigned f(unsigned x) { return x >> 1; }"
        assert run_c(src, "f", [-2])[0] == 0x7FFFFFFF

    def test_signed_right_shift(self):
        src = "int f(int x) { return x >> 1; }"
        assert run_c(src, "f", [-2])[0] == -1

    def test_unsigned_comparison(self):
        src = "int f(unsigned a, unsigned b) { return a < b; }"
        assert run_c(src, "f", [-1, 0])[0] == 0  # 0xffffffff < 0 is false

    def test_float_to_int_truncates(self):
        assert run_c("int f(float x) { return (int)x; }", "f", [3.99])[0] == 3
        assert run_c("int f(float x) { return (int)x; }", "f", [-3.99])[0] == -3

    def test_double_float_mixing(self):
        src = "double f(float a, double b) { return a + b; }"
        result, _ = run_c(src, "f", [0.5, 0.25])
        assert result == 0.75

    def test_void_pointer(self):
        src = """
int f(void *p) {
  int *q = (int*)p;
  return *q;
}
"""
        module = compile_c(src)
        machine = Machine(module)
        buf = machine.alloc(4)
        machine.write_value(buf, I32, 31)
        assert machine.call(module.get_function("f"), [buf]) == 31


class TestStructsAndArrays:
    def test_nested_struct(self):
        src = """
struct inner { int a; int b; };
struct outer { int tag; struct inner data; };

int f(struct outer *o) { return o->data.b; }
"""
        module = compile_c(src)
        machine = Machine(module)
        buf = machine.alloc(12)
        machine.write_value(buf + 8, I32, 77)
        assert machine.call(module.get_function("f"), [buf]) == 77

    def test_2d_array_layout(self):
        src = """
int grid[3][4];
void set(void) {
  for (int i = 0; i < 3; i++)
    for (int j = 0; j < 4; j++)
      grid[i][j] = i * 10 + j;
}
int get(int i, int j) { return grid[i][j]; }
"""
        module = compile_c(src)
        machine = Machine(module)
        machine.call(module.get_function("set"), [])
        assert machine.call(module.get_function("get"), [2, 3]) == 23
        # Row-major layout: grid[1][0] at byte 16.
        assert machine.read_value(
            machine.global_addresses["grid"] + 16, I32
        ) == 10

    def test_array_in_struct(self):
        src = """
struct buf { int len; int data[4]; };
int f(struct buf *b, int i) { return b->data[i]; }
"""
        module = compile_c(src)
        machine = Machine(module)
        addr = machine.alloc(20)
        machine.write_value(addr + 4 + 8, I32, 55)  # data[2]
        assert machine.call(module.get_function("f"), [addr, 2]) == 55

    def test_struct_field_multiple_declarators(self):
        src = """
struct p { int x, y; };
int f(struct p *q) { return q->x + q->y; }
"""
        module = compile_c(src)
        machine = Machine(module)
        addr = machine.alloc(8)
        machine.write_value(addr, I32, 1)
        machine.write_value(addr + 4, I32, 2)
        assert machine.call(module.get_function("f"), [addr]) == 3

    def test_global_scalar_initializer_expression(self):
        src = """
int k = 3 * 4 + 2;
int f(void) { return k; }
"""
        assert run_c(src, "f")[0] == 14

    def test_partial_initializer_list_zero_fills(self):
        src = """
int t[6] = {1, 2};
int f(int i) { return t[i]; }
"""
        assert run_c(src, "f", [1])[0] == 2
        assert run_c(src, "f", [5])[0] == 0


class TestDiagnostics:
    def test_unknown_variable(self):
        with pytest.raises(LowerError, match="unknown identifier"):
            compile_c("int f(void) { return nope; }")

    def test_break_outside_loop(self):
        with pytest.raises(LowerError, match="break"):
            compile_c("void f(void) { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(LowerError, match="continue"):
            compile_c("void f(void) { continue; }")

    def test_member_of_non_struct(self):
        with pytest.raises(LowerError):
            compile_c("int f(int x) { return x.field; }")

    def test_deref_non_pointer(self):
        with pytest.raises(LowerError):
            compile_c("int f(int x) { return *x; }")

    def test_missing_paren(self):
        with pytest.raises(CParseError):
            compile_c("int f(int x { return x; }")

    def test_unterminated_block(self):
        with pytest.raises(CParseError):
            compile_c("int f(void) { return 0;")


class TestControlFlowEdge:
    def test_empty_for_components(self):
        src = """
int f(int n) {
  int i = 0;
  int s = 0;
  for (;;) {
    if (i >= n) break;
    s += i;
    i++;
  }
  return s;
}
"""
        assert run_c(src, "f", [5])[0] == 10

    def test_loop_with_zero_iterations(self):
        src = "int f(void) { int s = 9; for (int i = 0; i < 0; i++) s = 0; return s; }"
        assert run_c(src, "f")[0] == 9

    def test_deeply_nested_ifs(self):
        src = """
int f(int x) {
  if (x > 0) { if (x > 10) { if (x > 100) return 3; return 2; } return 1; }
  return 0;
}
"""
        assert run_c(src, "f", [500])[0] == 3
        assert run_c(src, "f", [50])[0] == 2
        assert run_c(src, "f", [5])[0] == 1
        assert run_c(src, "f", [-5])[0] == 0

    def test_return_in_all_branches(self):
        src = """
int f(int x) {
  if (x > 0) { return 1; } else { return -1; }
}
"""
        assert run_c(src, "f", [9])[0] == 1
        assert run_c(src, "f", [-9])[0] == -1

    def test_implicit_zero_return(self):
        # A non-void function falling off the end returns zero.
        src = "int f(int x) { if (x > 0) return 7; }"
        assert run_c(src, "f", [-1])[0] == 0
