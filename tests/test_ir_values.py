"""Unit tests for values, use-def chains, and instructions."""

import pytest

from repro.ir import (
    Alloca,
    BasicBlock,
    BinaryOp,
    Br,
    Call,
    ConstantFloat,
    ConstantInt,
    F32,
    Function,
    FunctionType,
    GetElementPtr,
    I1,
    I32,
    I64,
    ICmp,
    IRBuilder,
    Load,
    Module,
    Phi,
    Ret,
    Store,
    UndefValue,
    VOID,
    const_int,
    neutral_element,
    ptr,
)


def make_fn(ret=VOID, params=(), name="f"):
    m = Module()
    fn = m.add_function(name, FunctionType(ret, list(params)))
    block = fn.add_block("entry")
    return m, fn, block


class TestConstants:
    def test_int_wrapping(self):
        assert ConstantInt(I32, 2**31).value == -(2**31)
        assert ConstantInt(I32, -1).value == -1
        assert ConstantInt(I32, 2**32 - 1).value == -1

    def test_i1(self):
        assert ConstantInt(I1, 1).value == 1
        assert ConstantInt(I1, 2).value == 0

    def test_equality(self):
        assert ConstantInt(I32, 7) == ConstantInt(I32, 7)
        assert ConstantInt(I32, 7) != ConstantInt(I64, 7)
        assert ConstantFloat(F32, 1.5) == ConstantFloat(F32, 1.5)
        assert hash(ConstantInt(I32, 7)) == hash(ConstantInt(I32, 7))

    def test_nan_equality(self):
        nan = float("nan")
        assert ConstantFloat(F32, nan) == ConstantFloat(F32, nan)

    def test_neutral_elements(self):
        assert neutral_element("add", I32).value == 0
        assert neutral_element("mul", I32).value == 1
        assert neutral_element("and", I32).value == -1
        assert neutral_element("or", I32).value == 0
        assert neutral_element("xor", I32).value == 0
        assert neutral_element("fadd", F32).value == 0.0
        assert neutral_element("fmul", F32).value == 1.0
        assert neutral_element("icmp", I32) is None


class TestUseDefChains:
    def test_operand_use_tracking(self):
        a = ConstantInt(I32, 1)
        b = ConstantInt(I32, 2)
        add = BinaryOp("add", a, b)
        assert len(a.uses) == 1
        assert a.uses[0].user is add
        assert a.uses[0].index == 0
        assert b.uses[0].index == 1

    def test_same_value_in_two_slots(self):
        a = ConstantInt(I32, 1)
        add = BinaryOp("add", a, a)
        assert len(a.uses) == 2
        assert {u.index for u in a.uses} == {0, 1}

    def test_set_operand_updates_uses(self):
        a = ConstantInt(I32, 1)
        b = ConstantInt(I32, 2)
        c = ConstantInt(I32, 3)
        add = BinaryOp("add", a, b)
        add.set_operand(0, c)
        assert not a.uses
        assert c.uses[0].user is add
        assert add.operands[0] is c

    def test_replace_all_uses_with(self):
        a = ConstantInt(I32, 1)
        b = ConstantInt(I32, 2)
        add1 = BinaryOp("add", a, a)
        add2 = BinaryOp("add", a, b)
        a.replace_all_uses_with(b)
        assert not a.uses
        assert add1.operands == [b, b]
        assert add2.operands == [b, b]

    def test_drop_all_references(self):
        a = ConstantInt(I32, 1)
        add = BinaryOp("add", a, a)
        add.drop_all_references()
        assert not a.uses
        assert add.operands == []

    def test_users_deduplicated(self):
        a = ConstantInt(I32, 1)
        add = BinaryOp("add", a, a)
        assert a.users == [add]


class TestInstructions:
    def test_invalid_opcode_rejected(self):
        a = ConstantInt(I32, 1)
        with pytest.raises(ValueError):
            BinaryOp("bogus", a, a)
        with pytest.raises(ValueError):
            ICmp("bogus", a, a)

    def test_commutativity_classification(self):
        a = ConstantInt(I32, 1)
        assert BinaryOp("add", a, a).is_commutative
        assert BinaryOp("mul", a, a).is_commutative
        assert not BinaryOp("sub", a, a).is_commutative
        assert BinaryOp("add", a, a).is_associative
        assert not BinaryOp("shl", a, a).is_associative

    def test_gep_result_types(self):
        from repro.ir import ArrayType, StructType

        m, fn, block = make_fn(params=[ptr(ArrayType(I32, 8))])
        arr_ptr = fn.arguments[0]
        gep = GetElementPtr(
            ArrayType(I32, 8),
            arr_ptr,
            [ConstantInt(I64, 0), ConstantInt(I64, 3)],
        )
        assert gep.type is ptr(I32)

        s = StructType([I32, F32], "tv_gep_struct")
        gep2 = GetElementPtr(
            s, UndefValue(ptr(s)), [ConstantInt(I64, 0), ConstantInt(I64, 1)]
        )
        assert gep2.type is ptr(F32)

    def test_gep_struct_index_must_be_constant(self):
        from repro.ir import StructType

        s = StructType([I32, F32], "tv_gep_struct2")
        m, fn, block = make_fn(params=[ptr(s), I64])
        with pytest.raises(ValueError):
            GetElementPtr(s, fn.arguments[0], [ConstantInt(I64, 0), fn.arguments[1]])

    def test_phi_incoming(self):
        m, fn, entry = make_fn()
        other = fn.add_block("other")
        phi = Phi(I32)
        phi.add_incoming(ConstantInt(I32, 1), entry)
        phi.add_incoming(ConstantInt(I32, 2), other)
        assert phi.incoming_for(entry).value == 1
        assert phi.incoming_for(other).value == 2
        phi.remove_incoming(entry)
        assert phi.incoming_for(entry) is None
        assert len(phi.incoming) == 1

    def test_side_effect_classification(self):
        a = ConstantInt(I32, 1)
        add = BinaryOp("add", a, a)
        assert not add.has_side_effects()
        m, fn, block = make_fn(params=[ptr(I32)])
        store = Store(a, fn.arguments[0])
        assert store.has_side_effects()
        load = Load(I32, fn.arguments[0])
        assert load.may_read_memory()
        assert not load.may_write_memory()

    def test_call_readnone_attribute(self):
        m = Module()
        callee = m.add_function("pure", FunctionType(I32, [I32]))
        callee.attributes.add("readnone")
        call = Call(callee, [ConstantInt(I32, 1)])
        assert not call.may_read_memory()
        assert not call.may_write_memory()

    def test_clone_has_same_operands_no_parent(self):
        a = ConstantInt(I32, 1)
        b = ConstantInt(I32, 2)
        add = BinaryOp("add", a, b)
        clone = add.clone()
        assert clone is not add
        assert clone.opcode == "add"
        assert clone.operands == [a, b]
        assert clone.parent is None

    def test_erase_from_parent(self):
        m, fn, block = make_fn()
        builder = IRBuilder(block)
        x = builder.add(builder.i32(1), builder.i32(2))
        assert x.parent is block
        x.erase_from_parent()
        assert x.parent is None
        assert x not in block.instructions

    def test_move_before(self):
        m, fn, block = make_fn()
        builder = IRBuilder(block)
        x = builder.add(builder.i32(1), builder.i32(2))
        y = builder.add(builder.i32(3), builder.i32(4))
        y.move_before(x)
        assert block.instructions == [y, x]


class TestBlocksAndFunctions:
    def test_successors_predecessors(self):
        m, fn, entry = make_fn()
        loop = fn.add_block("loop")
        exit_block = fn.add_block("exit")
        IRBuilder(entry).br(loop)
        b = IRBuilder(loop)
        cond = b.icmp("eq", b.i32(0), b.i32(0))
        b.cond_br(cond, loop, exit_block)
        IRBuilder(exit_block).ret()
        assert entry.successors() == [loop]
        assert set(id(p) for p in loop.predecessors()) == {id(entry), id(loop)}
        assert exit_block.predecessors() == [loop]

    def test_phis_prefix(self):
        m, fn, entry = make_fn()
        phi = Phi(I32)
        entry.insert(0, phi)
        builder = IRBuilder(entry)
        builder.add(builder.i32(1), builder.i32(2))
        assert entry.phis() == [phi]
        assert entry.first_non_phi_index() == 1

    def test_rename_locals_unique(self):
        m, fn, entry = make_fn()
        builder = IRBuilder(entry)
        x = builder.add(builder.i32(1), builder.i32(2), name="x")
        y = builder.add(builder.i32(1), builder.i32(2), name="x")
        builder.ret()
        fn.rename_locals()
        assert x.name != y.name

    def test_module_lookup(self):
        m = Module()
        fn = m.add_function("foo", FunctionType(VOID, []))
        gv = m.add_global("g", I32)
        assert m.get_function("foo") is fn
        assert m.get_function("bar") is None
        assert m.get_global("g") is gv
        assert m.unique_global_name("g") != "g"
        assert m.unique_global_name("fresh") == "fresh"
