"""Interpreter edge-case tests: rarely-hit opcodes and conversions."""

import math
import struct

import pytest

from repro.ir import Machine, TrapError, parse_module, run_function


def run_src(source, name, args=()):
    module = parse_module(source)
    return run_function(module, name, args)


class TestFloatEdge:
    def test_frem(self):
        src = """
define double @f(double %a, double %b) {
entry:
  %r = frem double %a, %b
  ret double %r
}
"""
        result, _ = run_src(src, "f", [7.5, 2.0])
        assert result == math.fmod(7.5, 2.0)
        result, _ = run_src(src, "f", [-7.5, 2.0])
        assert result == math.fmod(-7.5, 2.0)

    def test_fdiv_by_zero_is_inf(self):
        src = """
define double @f(double %a) {
entry:
  %r = fdiv double %a, 0.0
  ret double %r
}
"""
        assert run_src(src, "f", [1.0])[0] == float("inf")
        assert run_src(src, "f", [-1.0])[0] == float("-inf")
        result, _ = run_src(src, "f", [0.0])
        assert result != result  # NaN

    def test_fcmp_ord_uno(self):
        src = """
define i1 @ord(double %a, double %b) {
entry:
  %r = fcmp ord double %a, %b
  ret i1 %r
}

define i1 @uno(double %a, double %b) {
entry:
  %r = fcmp uno double %a, %b
  ret i1 %r
}
"""
        module = parse_module(src)
        nan = float("nan")
        assert run_function(module, "ord", [1.0, 2.0])[0] == 1
        assert run_function(module, "ord", [nan, 2.0])[0] == 0
        assert run_function(module, "uno", [1.0, 2.0])[0] == 0
        assert run_function(module, "uno", [1.0, nan])[0] == 1

    def test_f32_overflow_rounds_to_inf(self):
        src = """
define float @f(float %a) {
entry:
  %r = fmul float %a, %a
  ret float %r
}
"""
        result, _ = run_src(src, "f", [3.0e38])
        assert result == float("inf")

    def test_bitcast_double_i64_roundtrip(self):
        src = """
define double @f(double %x) {
entry:
  %b = bitcast double %x to i64
  %d = bitcast i64 %b to double
  ret double %d
}
"""
        for value in (0.0, -1.5, 3.141592653589793, 1e300):
            assert run_src(src, "f", [value])[0] == value

    def test_fpext_fptrunc(self):
        src = """
define float @f(float %x) {
entry:
  %d = fpext float %x to double
  %e = fadd double %d, 0.1
  %t = fptrunc double %e to float
  ret float %t
}
"""
        result, _ = run_src(src, "f", [1.0])
        expected = struct.unpack("<f", struct.pack("<f", 1.0 + 0.1))[0]
        assert result == expected


class TestIntEdge:
    def test_urem(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = urem i32 %a, %b
  ret i32 %r
}
"""
        # -1 unsigned is 2**32-1; (2**32-1) % 10 = 5.
        assert run_src(src, "f", [-1, 10])[0] == 5
        with pytest.raises(TrapError):
            run_src(src, "f", [5, 0])

    def test_sdiv_int_min_by_minus_one_wraps(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = sdiv i32 %a, %b
  ret i32 %r
}
"""
        # INT_MIN / -1 overflows; our semantics wrap to INT_MIN.
        assert run_src(src, "f", [-(2**31), -1])[0] == -(2**31)

    def test_shift_amount_masked(self):
        src = """
define i32 @f(i32 %a, i32 %s) {
entry:
  %r = shl i32 %a, %s
  ret i32 %r
}
"""
        # Shift of 33 behaves like shift of 1 (mod width).
        assert run_src(src, "f", [1, 33])[0] == 2

    def test_i1_arithmetic(self):
        src = """
define i1 @f(i1 %a, i1 %b) {
entry:
  %x = xor i1 %a, %b
  ret i1 %x
}
"""
        assert run_src(src, "f", [1, 1])[0] == 0
        assert run_src(src, "f", [1, 0])[0] == 1

    def test_ptrtoint_inttoptr_roundtrip(self):
        src = """
define i32 @f(i32* %p) {
entry:
  %i = ptrtoint i32* %p to i64
  %q = inttoptr i64 %i to i32*
  %v = load i32, i32* %q
  ret i32 %v
}
"""
        module = parse_module(src)
        machine = Machine(module)
        buf = machine.alloc(4)
        from repro.ir import I32

        machine.write_value(buf, I32, 123)
        assert machine.call(module.get_function("f"), [buf]) == 123

    def test_uitofp_vs_sitofp(self):
        src = """
define double @s(i32 %x) {
entry:
  %r = sitofp i32 %x to double
  ret double %r
}

define double @u(i32 %x) {
entry:
  %r = uitofp i32 %x to double
  ret double %r
}
"""
        module = parse_module(src)
        assert run_function(module, "s", [-1])[0] == -1.0
        assert run_function(module, "u", [-1])[0] == float(2**32 - 1)


class TestMachineEdge:
    def test_alloc_alignment(self):
        module = parse_module("define void @f() {\nentry:\n  ret void\n}")
        machine = Machine(module)
        for align in (1, 4, 16, 64):
            addr = machine.alloc(10, align)
            assert addr % align == 0

    def test_global_addresses_stable_across_calls(self):
        src = """
@G = global i32 7

define i32 @f() {
entry:
  %v = load i32, i32* @G
  ret i32 %v
}
"""
        module = parse_module(src)
        machine = Machine(module)
        first = machine.global_addresses["G"]
        machine.call(module.get_function("f"), [])
        machine.call(module.get_function("f"), [])
        assert machine.global_addresses["G"] == first

    def test_arity_mismatch_traps(self):
        module = parse_module(
            "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}"
        )
        machine = Machine(module)
        with pytest.raises(TrapError, match="expects"):
            machine.call(module.get_function("f"), [])
