"""The pipeline must never turn a trapping run into a completing one
(or vice versa) -- checked on a hand-written corpus of functions whose
trap behaviour depends on their arguments.
"""

import pytest

from repro.difftest import default_pipeline
from repro.difftest.oracle import (
    ArgumentVector,
    compare_observations,
    observe_call,
)
from repro.ir import parse_module, print_function, verify_module
from repro.transforms import eliminate_dead_code

DIV_GUARDED = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %q0 = sdiv i32 %a, %b
  %q1 = sdiv i32 %a, %b
  %q2 = sdiv i32 %a, %b
  %q3 = sdiv i32 %a, %b
  %s0 = add i32 %q0, %q1
  %s1 = add i32 %q2, %q3
  %s = add i32 %s0, %s1
  ret i32 %s
}
"""

DEAD_DIV = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %dead = sdiv i32 %a, %b
  ret i32 %a
}
"""

NEAR_NULL_STORES = """
define i32 @f(i32 %a, i32* %p) {
entry:
  %c = icmp slt i32 %a, 8
  br i1 %c, label %hazard, label %safe

hazard:
  %off = and i32 %a, 63
  %addr = inttoptr i32 %off to i32*
  store i32 1, i32* %addr
  store i32 2, i32* %addr
  store i32 3, i32* %addr
  store i32 4, i32* %addr
  br label %safe

safe:
  ret i32 %a
}
"""

UREM_RUN = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %m0 = urem i32 %a, %b
  %m1 = urem i32 %a, %b
  %m2 = urem i32 %a, %b
  %m3 = urem i32 %a, %b
  %x0 = xor i32 %m0, %m1
  %x1 = xor i32 %m2, %m3
  %x = xor i32 %x0, %x1
  ret i32 %x
}
"""

CORPUS = {
    "div_guarded": DIV_GUARDED,
    "dead_div": DEAD_DIV,
    "near_null_stores": NEAR_NULL_STORES,
    "urem_run": UREM_RUN,
}

#: Vectors chosen so every corpus entry both traps and completes.
VECTORS = [
    ArgumentVector((10, 2)),
    ArgumentVector((10, 0)),          # division traps
    ArgumentVector((-(2 ** 31), -1)),  # INT_MIN / -1 wraps, no trap
    ArgumentVector((3, 7)),            # near-null store traps (a < 8)
    ArgumentVector((100, 3)),
]


def _vector_for(fn, vector):
    # NEAR_NULL_STORES takes (i32, i32*); reuse the int pair with a
    # buffer standing in for the pointer.
    from repro.ir.types import PointerType

    values = []
    for argument, value in zip(fn.arguments, vector.values):
        if isinstance(argument.type, PointerType):
            values.append(b"\x00" * 16)
        else:
            values.append(value)
    return ArgumentVector(tuple(values))


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_pipeline_preserves_trap_behaviour(name):
    text = CORPUS[name]
    stages = default_pipeline()

    reference_module = parse_module(text)
    fn = reference_module.get_function("f")
    vectors = [_vector_for(fn, v) for v in VECTORS]
    reference = [observe_call(reference_module, "f", v) for v in vectors]

    transformed = parse_module(text)
    for _, apply_stage in stages:
        apply_stage(transformed)
    verify_module(transformed)

    statuses = {obs.status for obs in reference}
    for vector, expected in zip(vectors, reference):
        actual = observe_call(transformed, "f", vector)
        assert expected.status == actual.status, (
            f"{name} {vector.describe()}: "
            f"{expected.summary()} became {actual.summary()}"
        )
        assert compare_observations(expected, actual) is None

    if name != "near_null_stores":
        # The chosen vectors genuinely exercise both behaviours.
        assert statuses == {"ok", "trap"}, statuses


def test_dce_keeps_dead_potentially_trapping_division():
    # The division's result is unused, but deleting it would turn the
    # b == 0 run from trapping into completing.
    module = parse_module(DEAD_DIV)
    removed = eliminate_dead_code(module.get_function("f"))
    assert removed == 0
    assert "sdiv" in print_function(module.get_function("f"))


def test_dce_still_removes_provably_safe_division():
    text = """
define i32 @f(i32 %a) {
entry:
  %dead = sdiv i32 %a, 16
  ret i32 %a
}
"""
    module = parse_module(text)
    removed = eliminate_dead_code(module.get_function("f"))
    assert removed == 1
    assert "sdiv" not in print_function(module.get_function("f"))
