"""Whole-pipeline differential fuzzing with random mini-C programs.

Every configuration of the pipeline -- unoptimized, cleaned-up, rolled,
loop-aware-rolled, unroll+reroll -- must compute identical results and
leave identical global state on the same random program.
"""

import pytest

from repro.bench.randprog import generate_program
from repro.frontend import compile_c, lower, parse
from repro.ir import Machine, StepLimitExceeded, verify_module
from repro.rolag import RolagConfig, roll_loops_in_module
from repro.transforms import reroll_loops, unroll_loops


def observe(module, fn_names):
    """Run every function and snapshot results + final global state."""
    machine = Machine(module, step_limit=2_000_000)
    results = []
    for name in fn_names:
        fn = module.get_function(name)
        results.append(machine.call(fn, [5, -3]))
        results.append(machine.call(fn, [0, 117]))
    contents = {
        k: v
        for k, v in machine.global_contents().items()
        if not k.startswith("__rolag")
    }
    return results, contents


def fn_names_of(module):
    return [f.name for f in module.functions if not f.is_declaration]


SEEDS = list(range(40))


@pytest.mark.parametrize("seed", SEEDS)
def test_pipeline_configurations_agree(seed):
    source = generate_program(seed)

    raw = lower(parse(source))
    verify_module(raw)
    names = fn_names_of(raw)
    reference = observe(raw, names)

    optimized = compile_c(source)
    verify_module(optimized)
    assert observe(optimized, names) == reference, "cleanup pipeline diverged"

    rolled = compile_c(source)
    roll_loops_in_module(rolled)
    verify_module(rolled)
    assert observe(rolled, names) == reference, "RoLAG diverged"

    aware = compile_c(source)
    roll_loops_in_module(aware, config=RolagConfig(loop_aware=True))
    verify_module(aware)
    assert observe(aware, names) == reference, "loop-aware RoLAG diverged"


@pytest.mark.parametrize("seed", SEEDS[:20])
def test_unroll_reroll_roundtrip_on_random_programs(seed):
    source = generate_program(seed)
    raw = compile_c(source)
    names = fn_names_of(raw)
    reference = observe(raw, names)

    transformed = compile_c(source)
    for fn in transformed.functions:
        if not fn.is_declaration:
            unroll_loops(fn, 4)
    verify_module(transformed)
    assert observe(transformed, names) == reference, "unroll diverged"

    for fn in transformed.functions:
        if not fn.is_declaration:
            reroll_loops(fn)
    verify_module(transformed)
    assert observe(transformed, names) == reference, "reroll diverged"


@pytest.mark.parametrize("seed", SEEDS[:20])
def test_rolag_after_unroll_on_random_programs(seed):
    source = generate_program(seed)
    raw = compile_c(source)
    names = fn_names_of(raw)
    reference = observe(raw, names)

    transformed = compile_c(source)
    for fn in transformed.functions:
        if not fn.is_declaration:
            unroll_loops(fn, 4)
    roll_loops_in_module(
        transformed, config=RolagConfig(loop_aware=True)
    )
    verify_module(transformed)
    assert observe(transformed, names) == reference


def test_generator_is_deterministic():
    assert generate_program(7) == generate_program(7)
    assert generate_program(7) != generate_program(8)


def test_generated_programs_have_rollable_material():
    # The generator plants unrolled store runs; across many seeds RoLAG
    # must fire at least sometimes, otherwise the fuzzing is toothless.
    fired = 0
    for seed in SEEDS:
        module = compile_c(generate_program(seed))
        fired += roll_loops_in_module(module)
    assert fired > 10
