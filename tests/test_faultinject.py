"""Unit tests for the deterministic fault-injection layer.

Everything here is fast and sleep-free: injected hangs consume
*virtual* deadline time, and every random draw is a pure function of
the plan seed.
"""

import json

import pytest

from repro.faultinject import (
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    InjectedHang,
    active_plan,
    checkpoint,
    clear_plan,
    corrupt_bytes,
    current_deadline,
    deadline_scope,
    fire,
    fire_ir,
    get_active_plan,
    install_plan,
    resolve_plan,
)

pytestmark = pytest.mark.fault


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """A test that installs a plan must not leak it into the next one."""
    clear_plan()
    yield
    clear_plan()


class TestPlanParsing:
    def test_single_clause(self):
        plan = FaultPlan.parse("driver.worker.start:raise@3")
        (spec,) = plan.specs
        assert spec.site == "driver.worker.start"
        assert spec.action == "raise"
        assert spec.at == 3
        assert spec.times == 1

    @pytest.mark.parametrize(
        "text, at, times, prob, seconds",
        [
            ("s:raise", 1, 1, None, None),
            ("s:raise@5", 5, 1, None, None),
            ("s:raise@2x4", 2, 4, None, None),
            ("s:raise x*".replace(" ", ""), 1, None, None, None),
            ("s:corrupt%25", 1, 1, 0.25, None),
            ("s:hang@2~3.5", 2, 1, None, 3.5),
            ("s:sleep~0.01", 1, 1, None, 0.01),
        ],
    )
    def test_modifiers(self, text, at, times, prob, seconds):
        (spec,) = FaultPlan.parse(text).specs
        assert spec.at == at
        assert spec.times == times
        assert spec.prob == prob
        if seconds is not None:
            assert spec.seconds == seconds

    def test_multi_clause_and_seed(self):
        plan = FaultPlan.parse(
            "a.b:raise@2; cache.read:corrupt, pipeline.pass:hang~9; seed=42"
        )
        assert [s.site for s in plan.specs] == [
            "a.b", "cache.read", "pipeline.pass"
        ]
        assert plan.seed == 42

    def test_spec_string_round_trips(self):
        text = "a.b:raise@2x3;c.d:corrupt%50;e.f:hang@4~2;seed=7"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.spec_string()).spec_string() == (
            plan.spec_string()
        )

    def test_json_round_trips(self):
        plan = FaultPlan.parse("a.b:raise@2x*;c.d:corrupt%10~5;seed=3")
        rebuilt = FaultPlan.from_json_dict(
            json.loads(json.dumps(plan.to_json_dict()))
        )
        assert rebuilt.spec_string() == plan.spec_string()

    @pytest.mark.parametrize(
        "bad",
        ["justasite", "s:explode", "s:raise@zero", "s:raise@0", "s:hang~x"],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)


class TestPlanRuntime:
    def test_fires_on_nth_hit_only(self):
        plan = FaultPlan.parse("site:raise@3")
        with active_plan(plan):
            fire("site")
            fire("site")
            with pytest.raises(InjectedFault):
                fire("site")
            fire("site")  # times=1: exhausted

    def test_times_limits_firings(self):
        plan = FaultPlan.parse("site:raise@1x2")
        with active_plan(plan):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fire("site")
            fire("site")

    def test_unlimited_firings(self):
        plan = FaultPlan.parse("site:raise@1x*")
        with active_plan(plan):
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    fire("site")

    def test_sites_are_independent(self):
        plan = FaultPlan.parse("a:raise@2")
        with active_plan(plan):
            fire("b")
            fire("b")
            fire("a")
            with pytest.raises(InjectedFault):
                fire("a")

    def test_glob_site_matches(self):
        plan = FaultPlan.parse("driver.*:raise")
        with active_plan(plan):
            with pytest.raises(InjectedFault):
                fire("driver.worker.start")
            fire("cache.read")

    def test_probability_is_deterministic(self):
        def firing_pattern():
            plan = FaultPlan.parse("site:raise%40x*;seed=9")
            pattern = []
            with active_plan(plan):
                for _ in range(40):
                    try:
                        fire("site")
                        pattern.append(0)
                    except InjectedFault:
                        pattern.append(1)
            return pattern

        first = firing_pattern()
        assert first == firing_pattern()
        assert 0 < sum(first) < 40  # the coin actually lands both ways

    def test_no_plan_is_a_noop(self):
        fire("anything")
        assert corrupt_bytes("anything", b"data") == b"data"

    def test_fresh_resets_counters(self):
        plan = FaultPlan.parse("site:raise@1")
        with active_plan(plan):
            with pytest.raises(InjectedFault):
                fire("site")
        copy = plan.fresh()
        assert copy.hits == {} and copy.fired == {}
        with active_plan(copy):
            with pytest.raises(InjectedFault):
                fire("site")

    def test_install_and_clear(self):
        plan = FaultPlan.parse("site:raise")
        install_plan(plan)
        assert get_active_plan() is plan
        clear_plan()
        assert get_active_plan() is None

    def test_active_plan_restores_previous(self):
        outer = FaultPlan.parse("a:raise@99")
        inner = FaultPlan.parse("b:raise@99")
        install_plan(outer)
        with active_plan(inner):
            assert get_active_plan() is inner
        assert get_active_plan() is outer


class TestCorruption:
    def test_corrupt_changes_bytes_deterministically(self):
        data = json.dumps({"k": list(range(50))}).encode()

        def mangle(seed):
            plan = FaultPlan.parse(f"cache.read:corrupt;seed={seed}")
            with active_plan(plan):
                return corrupt_bytes("cache.read", data)

        assert mangle(1) != data
        assert mangle(1) == mangle(1)

    def test_corrupt_modes_always_differ_from_input(self):
        data = b"x" * 64
        for seed in range(12):  # covers truncate / flip / splice modes
            plan = FaultPlan.parse(f"s:corrupt;seed={seed}")
            with active_plan(plan):
                assert corrupt_bytes("s", data) != data

    def test_corrupt_empty_input(self):
        plan = FaultPlan.parse("s:corrupt")
        with active_plan(plan):
            assert corrupt_bytes("s", b"") == b"\xff"

    def test_corrupt_only_on_selected_hit(self):
        plan = FaultPlan.parse("s:corrupt@2")
        with active_plan(plan):
            assert corrupt_bytes("s", b"aaaa") == b"aaaa"
            assert corrupt_bytes("s", b"aaaa") != b"aaaa"
            assert corrupt_bytes("s", b"aaaa") == b"aaaa"

    def test_fire_and_corrupt_share_the_hit_counter(self):
        plan = FaultPlan.parse("s:corrupt@2")
        with active_plan(plan):
            fire("s")  # hit 1
            assert corrupt_bytes("s", b"aaaa") != b"aaaa"  # hit 2


class TestCorruptIR:
    SRC = """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = sub i32 %a, 2
  ret i32 %b
}
"""

    def _module(self):
        from repro.ir import parse_module

        return parse_module(self.SRC)

    def test_mutates_deterministically_and_verifier_clean(self):
        from repro.ir import print_module, verify_module

        def mutate():
            module = self._module()
            plan = FaultPlan.parse("site:corrupt-ir;seed=5")
            with active_plan(plan):
                fire_ir("site", module.get_function("f"))
            # The corruption models a miscompiling pass: the verifier
            # must stay happy, only the semantics may change.
            verify_module(module)
            return print_module(module)

        original = print_module(self._module())
        first = mutate()
        assert first != original
        assert first == mutate()

    def test_noop_without_ir_function(self):
        from repro.ir import print_module

        module = self._module()
        before = print_module(module)
        plan = FaultPlan.parse("site:corrupt-ir")
        with active_plan(plan):
            fire("site")  # non-IR visit: nothing to corrupt, no crash
        assert print_module(module) == before

    def test_only_on_selected_hit(self):
        from repro.ir import print_module

        module = self._module()
        fn = module.get_function("f")
        before = print_module(module)
        plan = FaultPlan.parse("site:corrupt-ir@2")
        with active_plan(plan):
            fire_ir("site", fn)
            assert print_module(module) == before
            fire_ir("site", fn)
            assert print_module(module) != before

    def test_spec_string_round_trips(self):
        plan = FaultPlan.parse("rolag.roll.exit:corrupt-ir@2x*")
        (spec,) = plan.specs
        assert spec.action == "corrupt-ir"
        assert FaultPlan.parse(plan.spec_string()).spec_string() == (
            plan.spec_string()
        )


class TestDeadline:
    def test_checkpoint_noop_without_deadline(self):
        assert current_deadline() is None
        checkpoint("anywhere")

    def test_virtual_advance_trips_checkpoint(self):
        with deadline_scope(30.0) as deadline:
            checkpoint("early")
            deadline.advance(29.0)
            checkpoint("still fine")
            deadline.advance(2.0)
            with pytest.raises(DeadlineExceeded) as info:
                checkpoint("late")
            assert info.value.budget == 30.0
            assert info.value.elapsed >= 31.0

    def test_none_budget_is_a_noop(self):
        with deadline_scope(None) as deadline:
            assert deadline is None
            assert current_deadline() is None

    def test_scopes_nest(self):
        with deadline_scope(100.0) as outer:
            with deadline_scope(1.0) as inner:
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_deadline_remaining(self):
        deadline = Deadline(50.0)
        deadline.advance(20.0)
        assert 29.0 < deadline.remaining() <= 30.0
        assert not deadline.expired()


class TestHangAction:
    def test_hang_consumes_virtual_time(self):
        plan = FaultPlan.parse("site:hang~1e9")
        with active_plan(plan):
            with deadline_scope(5.0):
                with pytest.raises(DeadlineExceeded):
                    fire("site")

    def test_short_hang_within_budget(self):
        plan = FaultPlan.parse("site:hang~1")
        with active_plan(plan):
            with deadline_scope(1e6) as deadline:
                fire("site")
                assert deadline.virtual == 1.0

    def test_hang_without_deadline_raises_not_blocks(self):
        plan = FaultPlan.parse("site:hang")
        with active_plan(plan):
            with pytest.raises(InjectedHang):
                fire("site")


class TestResolvePlan:
    def test_resolve_plan_object_passthrough(self):
        plan = FaultPlan.parse("a:raise")
        assert resolve_plan(plan) is plan

    def test_resolve_spec_string(self):
        plan = resolve_plan("a:raise@2")
        assert plan.specs[0].at == 2

    def test_resolve_blank_is_none(self):
        assert resolve_plan("  ") is None

    def test_resolve_json_file(self, tmp_path):
        source = FaultPlan.parse("a.b:raise@3x2;seed=11")
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(source.to_json_dict()))
        plan = resolve_plan(f"@{path}")
        assert plan.spec_string() == source.spec_string()

    def test_resolve_env_fallback(self, monkeypatch):
        monkeypatch.setenv("ROLAG_FAULT_PLAN", "env.site:raise@7")
        plan = resolve_plan(None)
        assert plan.specs[0].site == "env.site"
        monkeypatch.delenv("ROLAG_FAULT_PLAN")
        assert resolve_plan(None) is None
