"""Tests for the parallel, memoizing optimization driver."""

import os

import pytest

from repro.bench import angha, run_angha_experiment, run_tsvc_experiment
from repro.driver import (
    FunctionJob,
    default_worker_count,
    job_key,
    optimize_functions,
    optimize_one,
)
from repro.ir import parse_module, print_module
from repro.rolag import RolagConfig, RolagStats, roll_loops_in_module
from repro.rolag.config import PHASE_NAMES


def _corpus_jobs(count=8, seed=2022):
    return [
        FunctionJob(
            name=cs.name, c_source=cs.source, metadata=(("family", cs.family),)
        )
        for cs in angha.generate_sources(count=count, seed=seed)
    ]


class TestConfigFingerprint:
    def test_stable_across_instances(self):
        assert RolagConfig().fingerprint() == RolagConfig().fingerprint()

    def test_every_knob_matters(self):
        base = RolagConfig().fingerprint()
        assert RolagConfig(min_lanes=3).fingerprint() != base
        assert RolagConfig(fast_math=True).fingerprint() != base
        assert RolagConfig(enable_joint=False).fingerprint() != base

    def test_profile_participates(self):
        base = RolagConfig().fingerprint()
        profiled = RolagConfig(profile={("f", "entry"): 500}).fingerprint()
        assert profiled != base


class TestSerialDriver:
    def test_results_in_job_order(self):
        jobs = _corpus_jobs(count=6)
        report = optimize_functions(jobs, workers=1)
        assert [r.name for r in report.results] == [j.name for j in jobs]
        assert report.stats.jobs == 6
        assert report.stats.cache_hits == 0

    def test_ir_and_c_jobs_agree(self):
        corpus = angha.generate_corpus(count=4, seed=7)
        for cf in corpus:
            from_c = optimize_one(FunctionJob(name=cf.name, c_source=cf.source))
            from_ir = optimize_one(
                FunctionJob(name=cf.name, ir_text=print_module(cf.module))
            )
            assert from_c.size_before == from_ir.size_before
            assert from_c.rolag_size == from_ir.rolag_size
            assert from_c.rolag_rolled == from_ir.rolag_rolled

    def test_optimized_ir_parses_back(self):
        job = _corpus_jobs(count=1)[0]
        result = optimize_one(job)
        parse_module(result.optimized_ir)


class TestResultCache:
    def test_warm_run_is_byte_identical(self, tmp_path):
        jobs = _corpus_jobs(count=8)
        cold = optimize_functions(jobs, workers=1, cache_dir=str(tmp_path))
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_writes == len(jobs)
        warm = optimize_functions(jobs, workers=1, cache_dir=str(tmp_path))
        assert warm.stats.cache_hits == len(jobs)
        assert warm.stats.cache_misses == 0
        assert [r.stable_dict() for r in warm.results] == [
            r.stable_dict() for r in cold.results
        ]
        assert all(r.cache_hit for r in warm.results)

    def test_changed_config_misses(self, tmp_path):
        jobs = _corpus_jobs(count=4)
        optimize_functions(jobs, workers=1, cache_dir=str(tmp_path))
        rerun = optimize_functions(
            jobs,
            config=RolagConfig(min_lanes=3),
            workers=1,
            cache_dir=str(tmp_path),
        )
        assert rerun.stats.cache_hits == 0
        assert rerun.stats.cache_misses == len(jobs)

    def test_changed_input_misses(self, tmp_path):
        jobs = _corpus_jobs(count=4, seed=1)
        optimize_functions(jobs, workers=1, cache_dir=str(tmp_path))
        other = _corpus_jobs(count=4, seed=2)
        rerun = optimize_functions(other, workers=1, cache_dir=str(tmp_path))
        assert rerun.stats.cache_hits == 0

    def test_use_cache_false_bypasses(self, tmp_path):
        jobs = _corpus_jobs(count=2)
        optimize_functions(jobs, workers=1, cache_dir=str(tmp_path))
        bypassed = optimize_functions(
            jobs, workers=1, cache_dir=str(tmp_path), use_cache=False
        )
        assert bypassed.stats.cache_hits == 0
        assert bypassed.stats.cache_writes == 0

    def test_entries_are_sharded_json(self, tmp_path):
        jobs = _corpus_jobs(count=2)
        optimize_functions(jobs, workers=1, cache_dir=str(tmp_path))
        key = job_key(jobs[0], RolagConfig())
        path = os.path.join(str(tmp_path), key[:2], key + ".json")
        assert os.path.exists(path)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        jobs = _corpus_jobs(count=1)
        optimize_functions(jobs, workers=1, cache_dir=str(tmp_path))
        key = job_key(jobs[0], RolagConfig())
        with open(os.path.join(str(tmp_path), key[:2], key + ".json"), "w") as fh:
            fh.write("{not json")
        rerun = optimize_functions(jobs, workers=1, cache_dir=str(tmp_path))
        assert rerun.stats.cache_hits == 0
        assert rerun.results[0].rolag_size >= 0


class TestHarnessCaching:
    def test_angha_warm_matches_cold_serial(self, tmp_path):
        cold = run_angha_experiment(
            count=8, seed=2022, jobs=1, cache_dir=str(tmp_path)
        )
        warm = run_angha_experiment(
            count=8, seed=2022, jobs=1, cache_dir=str(tmp_path)
        )
        assert warm.results == cold.results
        assert warm.node_counts == cold.node_counts
        assert warm.driver_stats.cache_hits == len(cold.results)

    def test_tsvc_warm_matches_cold_serial(self, tmp_path):
        kernels = ["s000", "s112", "s276"]
        cold = run_tsvc_experiment(
            kernels=kernels, jobs=1, cache_dir=str(tmp_path)
        )
        warm = run_tsvc_experiment(
            kernels=kernels, jobs=1, cache_dir=str(tmp_path)
        )
        assert warm.results == cold.results
        assert warm.node_counts == cold.node_counts
        assert warm.driver_stats.cache_hits == len(kernels)

    def test_angha_config_change_misses(self, tmp_path):
        run_angha_experiment(count=4, jobs=1, cache_dir=str(tmp_path))
        rerun = run_angha_experiment(
            count=4,
            jobs=1,
            cache_dir=str(tmp_path),
            config=RolagConfig().all_special_disabled(),
        )
        assert rerun.driver_stats.cache_hits == 0

    def test_harness_matches_legacy_serial_protocol(self):
        # The driver's three-parse protocol must reproduce the numbers
        # the pre-driver serial harness computed for TSVC.
        from repro.bench import tsvc
        from repro.bench.objsize import function_size
        from repro.ir import verify_module
        from repro.transforms.reroll import reroll_loops

        exp = run_tsvc_experiment(kernels=["s000", "s1119"], jobs=1)
        for r in exp.results:
            base = tsvc.build_unrolled_kernel(r.name, 8)
            assert r.base_size == function_size(base.get_function(r.name))
            rolag = tsvc.build_unrolled_kernel(r.name, 8)
            rolled = roll_loops_in_module(
                rolag, config=RolagConfig(fast_math=True)
            )
            verify_module(rolag)
            assert r.rolag_rolled == rolled
            assert r.rolag_size == function_size(rolag.get_function(r.name))
            llvm = tsvc.build_unrolled_kernel(r.name, 8)
            rerolled = sum(
                reroll_loops(f) for f in llvm.functions if not f.is_declaration
            )
            assert r.llvm_rolled == rerolled
            assert r.llvm_size == function_size(llvm.get_function(r.name))


class TestPhaseTimers:
    def _rolling_module(self):
        corpus = angha.generate_corpus(count=1, seed=2022)
        return corpus[0].module

    def test_disabled_by_default(self):
        stats = RolagStats()
        roll_loops_in_module(self._rolling_module(), stats=stats)
        assert stats.phase_seconds == {}

    def test_all_phases_present_when_timed(self):
        stats = RolagStats(timed=True)
        rolled = roll_loops_in_module(self._rolling_module(), stats=stats)
        assert rolled >= 1
        assert set(stats.phase_seconds) == set(PHASE_NAMES)
        assert all(v >= 0.0 for v in stats.phase_seconds.values())
        assert sum(stats.phase_seconds.values()) > 0.0

    def test_counters_accumulate_monotonically(self):
        stats = RolagStats(timed=True)
        roll_loops_in_module(self._rolling_module(), stats=stats)
        snapshot = dict(stats.phase_seconds)
        roll_loops_in_module(self._rolling_module(), stats=stats)
        for phase in PHASE_NAMES:
            assert stats.phase_seconds[phase] >= snapshot[phase]

    def test_merge_folds_phase_times(self):
        a = RolagStats(timed=True)
        a.add_phase_time("seeds", 1.0)
        b = RolagStats(timed=True)
        b.add_phase_time("seeds", 0.5)
        b.add_phase_time("codegen", 2.0)
        a.merge(b)
        assert a.phase_seconds == {"seeds": 1.5, "codegen": 2.0}

    def test_driver_aggregates_timers(self):
        report = optimize_functions(_corpus_jobs(count=2), workers=1, timed=True)
        assert set(report.stats.phase_seconds) == set(PHASE_NAMES)


class TestWorkerDefaults:
    def test_default_worker_count(self):
        expected = max(1, min(os.cpu_count() or 1, 8))
        assert default_worker_count() == expected

    def test_workers_none_uses_default(self):
        report = optimize_functions(_corpus_jobs(count=1))
        assert report.stats.workers == default_worker_count()


@pytest.mark.parallel
class TestParallelIdentity:
    """Pool results must be bit-identical to the serial path."""

    def test_pooled_matches_serial_on_angha(self):
        jobs = _corpus_jobs(count=8)
        serial = optimize_functions(jobs, workers=1)
        pooled = optimize_functions(jobs, workers=2, chunk_size=2)
        assert [r.stable_dict() for r in pooled.results] == [
            r.stable_dict() for r in serial.results
        ]

    def test_pooled_matches_serial_on_tsvc(self):
        kernels = ["s000", "s112", "s276", "s1119"]
        serial = run_tsvc_experiment(kernels=kernels, jobs=1)
        pooled = run_tsvc_experiment(kernels=kernels, jobs=2)
        assert pooled.results == serial.results
        assert pooled.node_counts == serial.node_counts

    def test_pool_fills_cache_serial_reads_it(self, tmp_path):
        jobs = _corpus_jobs(count=6)
        pooled = optimize_functions(jobs, workers=2, cache_dir=str(tmp_path))
        assert pooled.stats.cache_writes == len(jobs)
        warm = optimize_functions(jobs, workers=1, cache_dir=str(tmp_path))
        assert warm.stats.cache_hits == len(jobs)
        assert [r.stable_dict() for r in warm.results] == [
            r.stable_dict() for r in pooled.results
        ]


def test_cold_import_of_driver_package():
    # ``repro.driver`` and ``repro.bench`` import each other; each must
    # still import cleanly into a fresh interpreter in either order
    # (this regressed silently: only bench-first ever ran in-process).
    import subprocess
    import sys

    for first in ("repro.driver", "repro.bench"):
        proc = subprocess.run(
            [sys.executable, "-c", f"import {first}; import repro.cli"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
