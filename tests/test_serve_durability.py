"""Durability tests for ``repro serve``: journal, supervisor, recovery.

Covers the crash windows one at a time rather than statistically:
torn-tail truncation at the journal layer, SIGKILL between
admission-ack and pool submit (``serve.admitted:kill``), SIGKILL
mid-result-write (``serve.result:kill``), the supervisor circuit
breaker (``serve.boot:kill``), and the reconnecting client's
at-most-once resubmission.  The statistical version of the same claim
-- a supervised daemon SIGKILLed repeatedly under load -- lives in the
kill-chaos harness (``repro chaos --serve --kill-daemon``) and the
servebench ``recovery`` scenario.
"""

import io
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.driver.quarantine import QuarantineList
from repro.faultinject import ACTIONS, FaultPlan, clear_plan
from repro.serve import (
    JobJournal,
    LoopbackClient,
    OptimizeService,
    ServeClient,
    ServeConfig,
    ServeError,
    SupervisorReport,
    decode_frame,
    encode_frame,
    read_pid_file,
    run_supervised,
    write_pid_file,
)
from repro.serve.journal import JOURNAL_FILE
from repro.serve.scheduler import AdmissionController

pytestmark = pytest.mark.serve


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


IR = """
define i32 @f(i32 %n) {
entry:
  %a = add i32 %n, 1
  %b = add i32 %a, 2
  %c = add i32 %b, 3
  ret i32 %c
}
"""

IR_RESPELLED = (
    IR.replace("@f", "@g").replace("%a", "%x").replace("%b", "%y")
)


def unthreaded_service(**overrides):
    config = ServeConfig(workers=1, use_cache=False, **overrides)
    service = OptimizeService(config)
    service.start(threaded=False)
    return service


class TestJournalFrames:
    def test_frame_roundtrip(self):
        payload = {"op": "done", "seq": 3}
        line = encode_frame(payload)
        assert line.endswith("\n")
        assert decode_frame(line) == payload

    def test_tampered_body_fails_checksum(self):
        line = encode_frame({"op": "done", "seq": 3})
        tampered = line.replace('"seq":3', '"seq":4')
        with pytest.raises(ValueError):
            decode_frame(tampered)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_frame("XX deadbeef {}")


class TestJobJournal:
    def _admit(self, journal, req_id, text=IR, key=None):
        return journal.append_admit(
            req_id=req_id,
            tenant="ci",
            name="f",
            fmt="ir",
            text=text,
            emit_ir=True,
            idempotency_key=key,
        )

    def test_admit_then_reboot_replays(self, tmp_path):
        journal = JobJournal(str(tmp_path), sync="always")
        self._admit(journal, req_id=7, key="k7")
        journal._handle.close()  # simulate death: no clean close
        journal._handle = None

        reborn = JobJournal(str(tmp_path), sync="always")
        records = reborn.replay_records()
        assert reborn.recovered == 1
        assert len(records) == 1
        assert records[0].req_id == 7
        assert records[0].idempotency_key == "k7"
        assert records[0].text == IR
        assert records[0].emit_ir is True
        reborn.close()

    def test_done_records_do_not_replay(self, tmp_path):
        journal = JobJournal(str(tmp_path), sync="always")
        seq1 = self._admit(journal, req_id=1)
        self._admit(journal, req_id=2, text=IR_RESPELLED)
        journal.record_done(seq1)
        journal._handle.close()
        journal._handle = None

        reborn = JobJournal(str(tmp_path), sync="always")
        records = reborn.replay_records()
        assert [r.req_id for r in records] == [2]
        reborn.close()

    def test_torn_tail_is_dropped_and_counted(self, tmp_path):
        journal = JobJournal(str(tmp_path), sync="always")
        self._admit(journal, req_id=1)
        journal.close()
        path = os.path.join(str(tmp_path), JOURNAL_FILE)
        with open(path, "a", encoding="utf-8") as fh:
            # A torn write: half a frame, no trailing newline.
            fh.write(encode_frame({"op": "admit", "seq": 9})[:20])

        reborn = JobJournal(str(tmp_path), sync="always")
        assert reborn.torn_tail == 1
        assert [r.req_id for r in reborn.replay_records()] == [1]
        reborn.close()

    def test_corrupt_midfile_line_is_skipped(self, tmp_path):
        journal = JobJournal(str(tmp_path), sync="always")
        self._admit(journal, req_id=1)
        journal._handle.close()
        journal._handle = None
        path = os.path.join(str(tmp_path), JOURNAL_FILE)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("garbage that is not a frame\n")
            fh.write(encode_frame({"op": "done", "seq": 999}))

        reborn = JobJournal(str(tmp_path), sync="always")
        assert reborn.corrupt_lines == 1
        assert [r.req_id for r in reborn.replay_records()] == [1]
        reborn.close()

    def test_boot_compaction_drops_settled_frames(self, tmp_path):
        journal = JobJournal(str(tmp_path), sync="always")
        for i in range(4):
            journal.record_done(self._admit(journal, req_id=i))
        journal._handle.close()
        journal._handle = None
        path = os.path.join(str(tmp_path), JOURNAL_FILE)
        assert sum(1 for _ in open(path, encoding="utf-8")) == 8

        reborn = JobJournal(str(tmp_path), sync="always")
        assert reborn.live == 0
        # Boot compaction rewrote the file down to live records only.
        assert open(path, encoding="utf-8").read() == ""
        assert reborn.compactions >= 1
        reborn.close()

    def test_unknown_sync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JobJournal(str(tmp_path), sync="sometimes")


class TestKillFaultAction:
    def test_kill_is_in_the_plan_grammar(self):
        assert "kill" in ACTIONS
        plan = FaultPlan.parse("serve.admitted:kill@2x1")
        assert plan.specs[0].action == "kill"
        assert plan.specs[0].at == 2

    def test_kill_terminates_the_process_with_sigkill(self):
        code = (
            "from repro.faultinject import FaultPlan, install_plan, fire\n"
            "install_plan(FaultPlan.parse('x:kill'))\n"
            "fire('x')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL
        assert "survived" not in proc.stdout


class TestForcedAdmission:
    def test_force_bypasses_busy_and_quota_but_not_draining(self):
        admission = AdmissionController(max_queue=1, tenant_quota=1)
        assert admission.admit("a") is None
        assert admission.admit("a") == "busy"
        # Replay must re-enter journalled jobs even over the watermark.
        assert admission.admit("a", force=True) is None
        assert admission.admit("b", force=True) is None
        admission.start_draining()
        assert admission.admit("a", force=True) == "shutting_down"


class TestIdempotency:
    def test_duplicate_keys_execute_once(self):
        service = unthreaded_service()
        client = LoopbackClient(service)
        try:
            leader = client.submit_optimize(
                IR, name="f", tenant="ci", emit_ir=True,
                idempotency_key="dup",
            )
            piggyback = client.submit_optimize(
                IR_RESPELLED, name="g", tenant="ci", emit_ir=True,
                idempotency_key="dup",
            )
            # The duplicate parks on the in-flight leader: no response
            # until the leader's single execution settles.
            assert client.poll(piggyback) is None
            service.pump_once()

            first = client.wait(leader)["result"]
            assert first["status"] == "ok"
            assert "idempotent_hit" not in first
            second = client.wait(piggyback)["result"]
            assert second["status"] == "ok"
            assert second["idempotent_hit"] is True

            # After settlement the key answers from the memo, inline.
            memo = client.submit_optimize(
                IR, name="f", idempotency_key="dup"
            )
            third = client.poll(memo)["result"]
            assert third["idempotent_hit"] is True

            stats = client.stats()
            assert stats["idempotent_hits"] == 2
            assert stats["driver"]["executed"] == 1
        finally:
            client.close()

    def test_blank_idempotency_key_rejected(self):
        service = unthreaded_service()
        client = LoopbackClient(service)
        try:
            with pytest.raises(ServeError) as excinfo:
                client.call(
                    "optimize", {"ir": IR, "idempotency_key": ""}
                )
            assert excinfo.value.kind == "params"
        finally:
            client.close()


class TestJournalReplay:
    def test_replay_answers_under_original_ids(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        # Build the journal a dead generation would leave behind --
        # directly, because a clean service shutdown records ``done``
        # and leaves nothing to replay.
        journal = JobJournal(journal_dir, sync="always")
        journal.append_admit(
            req_id=7, tenant="ci", name="f", fmt="ir", text=IR,
            emit_ir=True, idempotency_key="k7",
        )
        done = journal.append_admit(
            req_id=8, tenant="ci", name="g", fmt="ir",
            text=IR_RESPELLED, emit_ir=False,
        )
        journal.record_done(done)
        journal.close()

        service = unthreaded_service(
            journal_dir=journal_dir, journal_sync="always"
        )
        lines = []
        try:
            replayed = service.replay_journal(lines.append)
            assert replayed == 1
            service.pump_once()
            responses = [json.loads(line) for line in lines]
            assert len(responses) == 1
            response = responses[0]
            assert response["id"] == 7
            result = response["result"]
            assert result["status"] == "ok"
            assert result["replayed"] is True
            assert "@f" in result["optimized_ir"]

            snap = service.stats_snapshot()
            assert snap["journal"]["recovered"] == 1
            assert snap["journal"]["live"] == 0

            # The replayed job settled its idempotency key: the
            # client's resend coalesces instead of re-executing.
            client = LoopbackClient(service)
            resend = client.submit_optimize(
                IR, name="f", emit_ir=True, idempotency_key="k7"
            )
            again = client.poll(resend)["result"]
            assert again["idempotent_hit"] is True
            assert snap["driver"]["executed"] == 1
        finally:
            service.stop()

    def test_replay_with_no_journal_is_a_noop(self):
        service = unthreaded_service()
        try:
            assert service.replay_journal() == 0
        finally:
            service.stop()

    def test_bad_journal_dir_fails_boot(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way")
        with pytest.raises(OSError):
            OptimizeService(
                ServeConfig(workers=1, journal_dir=str(blocker))
            )


class TestSupervisorUnit:
    def test_pid_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "nested" / "serve.pid")
        write_pid_file(path, 1234, 3)
        assert read_pid_file(path) == {"pid": 1234, "generation": 3}

    def test_pid_file_damage_reads_as_none(self, tmp_path):
        path = str(tmp_path / "serve.pid")
        assert read_pid_file(path) is None
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{torn")
        assert read_pid_file(path) is None

    def test_restarts_until_clean_exit(self, tmp_path):
        counter = tmp_path / "count"
        envlog = tmp_path / "envlog"
        script = (
            "import os, pathlib, sys\n"
            "p = pathlib.Path(sys.argv[1])\n"
            "n = int(p.read_text()) if p.exists() else 0\n"
            "p.write_text(str(n + 1))\n"
            "with open(sys.argv[2], 'a') as fh:\n"
            "    fh.write(os.environ['REPRO_SERVE_GENERATION'] + ' '\n"
            "             + os.environ['REPRO_SERVE_RESTARTS'] + '\\n')\n"
            "sys.exit(0 if n >= 2 else 1)\n"
        )
        report = SupervisorReport()
        pid_file = str(tmp_path / "serve.pid")
        code = run_supervised(
            [],
            command=[sys.executable, "-c", script,
                     str(counter), str(envlog)],
            max_restarts=5,
            restart_backoff=0.0,
            pid_file=pid_file,
            log=io.StringIO(),
            report=report,
        )
        assert code == 0
        assert report.generations == 3
        assert report.restarts == 2
        assert not report.gave_up
        # Generation / restart counts rode into each child's env.
        assert envlog.read_text().splitlines() == ["1 0", "2 1", "3 2"]
        # A clean exit retires the pid file.
        assert read_pid_file(pid_file) is None

    def test_circuit_breaker_trips_on_a_crash_loop(self, tmp_path):
        report = SupervisorReport()
        code = run_supervised(
            [],
            command=[sys.executable, "-c", "import sys; sys.exit(7)"],
            max_restarts=3,
            restart_window=60.0,
            restart_backoff=0.0,
            pid_file=str(tmp_path / "serve.pid"),
            log=io.StringIO(),
            report=report,
        )
        assert code == 1
        assert report.gave_up
        assert report.generations == 3
        assert [c for c, _ in report.crashes] == [7, 7, 7]
        assert read_pid_file(str(tmp_path / "serve.pid")) is None


def _spawn_supervised(tmp_path, *extra):
    """A real supervised daemon over pipes (stderr inherited)."""
    args = [
        sys.executable, "-m", "repro", "serve",
        "--supervise",
        "--restart-backoff", "0.05",
        "--journal-dir", str(tmp_path / "journal"),
        "--journal-sync", "always",
        "--cache-dir", str(tmp_path / "cache"),
        *extra,
    ]
    return subprocess.Popen(
        args,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )


def _read_response(proc, req_id, timeout=90.0):
    """The response frame for ``req_id``, skipping noise, or None."""
    box = {}

    def reader():
        while True:
            line = proc.stdout.readline()
            if not line:
                return
            try:
                msg = json.loads(line)
            except ValueError:
                continue  # torn frame from a killed generation
            if not isinstance(msg, dict):
                continue
            if msg.get("id") == req_id and (
                "result" in msg or "error" in msg
            ):
                box["msg"] = msg
                return

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout)
    return box.get("msg")


def _optimize_frame(req_id, key):
    return json.dumps({
        "jsonrpc": "2.0",
        "id": req_id,
        "method": "optimize",
        "params": {
            "ir": IR,
            "name": "f",
            "emit_ir": True,
            "idempotency_key": key,
        },
    }) + "\n"


def _frame(req_id, method):
    return json.dumps({
        "jsonrpc": "2.0", "id": req_id, "method": method, "params": {},
    }) + "\n"


class TestCrashWindows:
    """SIGKILL at each durability-critical instant, one at a time."""

    def _run_window(self, tmp_path, site):
        proc = _spawn_supervised(
            tmp_path, "--fault-plan", f"{site}:kill@1x1"
        )
        try:
            proc.stdin.write(_optimize_frame(1, "w1"))
            proc.stdin.flush()
            response = _read_response(proc, 1)
            assert response is not None, (
                f"no response recovered after {site} SIGKILL"
            )
            result = response["result"]
            assert result["status"] == "ok"
            assert result.get("replayed") is True
            assert "@f" in result["optimized_ir"]

            # The response frame is written *before* the journal's
            # ``done`` record (crash-safe order), so poll briefly for
            # the journal to drain.
            stats = None
            for attempt in range(50):
                proc.stdin.write(_frame(100 + attempt, "stats"))
                proc.stdin.flush()
                stats = _read_response(proc, 100 + attempt)["result"]
                if stats["journal"]["live"] == 0:
                    break
            assert stats["supervisor"]["generation"] >= 2
            assert stats["journal"]["live"] == 0

            proc.stdin.write(_frame(3, "shutdown"))
            proc.stdin.flush()
            assert _read_response(proc, 3) is not None
            proc.stdin.close()
            assert proc.wait(timeout=90) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_sigkill_between_ack_and_pool_submit(self, tmp_path):
        # Dies right after the journal append / admission ack: the
        # job never reached the pool, so replay is its only hope.
        self._run_window(tmp_path, "serve.admitted")

    def test_sigkill_mid_result_write(self, tmp_path):
        # Dies after the job computed but before its response frame:
        # replay re-resolves (cache-hot) and answers the original id.
        self._run_window(tmp_path, "serve.result")

    def test_boot_crash_loop_trips_the_breaker(self, tmp_path):
        proc = _spawn_supervised(
            tmp_path,
            "--fault-plan", "serve.boot:kill",
            "--max-restarts", "2",
        )
        try:
            assert proc.wait(timeout=90) == 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


class TestClientDisconnect:
    def test_wait_raises_typed_disconnected_then_fails_fast(self):
        client = ServeClient.spawn(
            "--fault-plan", "serve.admitted:kill@1x1"
        )
        try:
            ticket = client.submit_optimize(IR, name="f")
            with pytest.raises(ServeError) as excinfo:
                client.wait(ticket)
            assert excinfo.value.kind == "disconnected"
            # The client is dead, not wedged: later calls fail fast.
            with pytest.raises(ServeError) as excinfo:
                client.ping()
            assert excinfo.value.kind == "disconnected"
        finally:
            client.close(shutdown=False)

    def test_reconnect_resends_and_executes_at_most_once(self, tmp_path):
        client = ServeClient.spawn(
            "--journal-dir", str(tmp_path / "journal"),
            "--journal-sync", "always",
            "--cache-dir", str(tmp_path / "cache"),
            "--fault-plan", "serve.admitted:kill@1x1",
            reconnect=True,
        )
        try:
            # The daemon SIGKILLs itself on this admission; the client
            # respawns it and resends under the auto idempotency key,
            # which coalesces with the journal replay of the same job.
            result = client.optimize(IR, name="f", emit_ir=True)
            assert result["status"] == "ok"
            assert "@f" in result["optimized_ir"]
            assert client._reconnects == 1

            # The response frame lands before the journal's ``done``
            # record (crash-safe order): poll briefly for the drain.
            stats = client.stats()
            for _ in range(50):
                if stats["journal"]["live"] == 0:
                    break
                time.sleep(0.05)
                stats = client.stats()
            assert stats["journal"]["live"] == 0
            assert stats["driver"]["executed"] <= 1
        finally:
            client.close()


class TestOrphanedWorkers:
    def test_pool_workers_exit_when_their_parent_dies(self):
        # Forked pool siblings hold each other's queue pipes open, so
        # without the parent-watch a SIGKILLed daemon generation
        # (kill-chaos) leaks its workers forever -- and they pin any
        # inherited stdio pipes open with them.
        script = (
            "import time\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.driver import core\n"
            "from repro.rolag.config import RolagConfig\n"
            "ex = ProcessPoolExecutor(\n"
            "    max_workers=2,\n"
            "    initializer=core._init_worker,\n"
            "    initargs=(RolagConfig(), None, False, False, 'interp'),\n"
            ")\n"
            "for f in [ex.submit(time.sleep, 0.2) for _ in range(2)]:\n"
            "    f.result()\n"
            "pids = sorted(p.pid for p in ex._processes.values())\n"
            "print(' '.join(str(p) for p in pids), flush=True)\n"
            "time.sleep(600)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
        )
        workers = []
        try:
            line = proc.stdout.readline()
            workers = [int(token) for token in line.split()]
            assert len(workers) == 2
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            remaining = set(workers)
            deadline = time.monotonic() + 20.0
            while remaining and time.monotonic() < deadline:
                for pid in list(remaining):
                    try:
                        os.kill(pid, 0)
                    except ProcessLookupError:
                        remaining.discard(pid)
                time.sleep(0.2)
            assert not remaining, (
                f"orphaned pool workers survived: {sorted(remaining)}"
            )
        finally:
            for pid in workers:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestQuarantineFsync:
    def test_fsync_save_persists_and_reloads(self, tmp_path):
        path = str(tmp_path / "quarantine.json")
        quarantine = QuarantineList(path, threshold=2, fsync=True)
        quarantine.record_failure("key1", "f", "crash", "boom")
        assert quarantine.record_failure("key1", "f", "crash", "boom")
        quarantine.save()

        reloaded = QuarantineList(path, threshold=2, fsync=True)
        assert reloaded.is_quarantined("key1")
        assert reloaded.failures("key1") == 2
