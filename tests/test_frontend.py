"""Mini-C frontend tests: lexer, parser, lowering, execution."""

import struct

import pytest

from repro.frontend import CParseError, LexError, compile_c, parse, tokenize
from repro.frontend.ctypes import CInt, CPtr, usual_arithmetic_conversion, INT, LONG, UINT, FLOAT, DOUBLE
from repro.ir import I32, Machine, run_function, verify_module
from repro.analysis import find_loops, match_counted_loop


def run_c(source, fn, args=(), externs=None):
    module = compile_c(source)
    return run_function(module, fn, args, externs)


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("int x = 42; // comment\nx += 1;")
        kinds = [(t.kind, t.text) for t in tokens]
        assert ("keyword", "int") in kinds
        assert ("int", "42") in kinds
        assert ("op", "+=") in kinds
        assert not any(t.kind == "comment" for t in tokens)

    def test_float_literals(self):
        tokens = tokenize("1.5 2.0f .25 1e3 3f")
        assert [t.kind for t in tokens[:-1]] == ["float"] * 5

    def test_block_comments(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_char_literals(self):
        tokens = tokenize("'a' '\\n'")
        assert [t.kind for t in tokens[:-1]] == ["char", "char"]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int x = `;")

    def test_operators_longest_match(self):
        tokens = tokenize("a <<= b >> c <= d")
        texts = [t.text for t in tokens[:-1]]
        assert "<<=" in texts
        assert ">>" in texts
        assert "<=" in texts


class TestParserStructure:
    def test_function_and_globals(self):
        unit = parse("int g = 5;\nint f(int x) { return x + g; }")
        assert len(unit.items) == 2

    def test_struct_definition(self):
        unit = parse("struct p { int x; int y; };\nint f(struct p *q) { return q->x; }")
        assert unit.items[0].name == "p"

    def test_missing_semicolon(self):
        with pytest.raises(CParseError):
            parse("int f() { return 1 }")

    def test_operator_precedence(self):
        # 2 + 3 * 4 == 14, (2 + 3) * 4 == 20
        assert run_c("int f() { return 2 + 3 * 4; }", "f")[0] == 14
        assert run_c("int f() { return (2 + 3) * 4; }", "f")[0] == 20
        assert run_c("int f() { return 1 << 2 + 1; }", "f")[0] == 8
        assert run_c("int f() { return 10 - 4 - 3; }", "f")[0] == 3


class TestArithmeticConversions:
    def test_usual_conversions(self):
        assert usual_arithmetic_conversion(INT, LONG) == LONG
        assert usual_arithmetic_conversion(INT, DOUBLE) == DOUBLE
        assert usual_arithmetic_conversion(FLOAT, INT) == FLOAT
        assert usual_arithmetic_conversion(CInt(8, True), CInt(16, True)) == INT

    def test_signed_division(self):
        assert run_c("int f(int a, int b) { return a / b; }", "f", [-7, 2])[0] == -3
        assert run_c("int f(int a, int b) { return a % b; }", "f", [-7, 2])[0] == -1

    def test_unsigned_division(self):
        src = "unsigned f(unsigned a, unsigned b) { return a / b; }"
        assert run_c(src, "f", [8, 2])[0] == 4

    def test_float_arithmetic(self):
        src = "double f(double x) { return x * 2.5 + 1.0; }"
        assert run_c(src, "f", [2.0])[0] == 6.0

    def test_int_float_mixing(self):
        src = "double f(int x) { return x / 2.0; }"
        assert run_c(src, "f", [5])[0] == 2.5

    def test_char_promotion(self):
        src = "int f(char c) { return c + 1; }"
        assert run_c(src, "f", [-5])[0] == -4


class TestControlFlow:
    def test_if_else(self):
        src = "int f(int x) { if (x > 0) return 1; else return -1; }"
        assert run_c(src, "f", [5])[0] == 1
        assert run_c(src, "f", [-5])[0] == -1

    def test_while_loop(self):
        src = """
int f(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) { acc += i; i++; }
  return acc;
}
"""
        assert run_c(src, "f", [10])[0] == 45

    def test_for_loop(self):
        src = "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }"
        assert run_c(src, "f", [100])[0] == 5050

    def test_do_while(self):
        src = "int f(int n) { int i = 0; do { i++; } while (i < n); return i; }"
        assert run_c(src, "f", [5])[0] == 5
        assert run_c(src, "f", [0])[0] == 1  # executes at least once

    def test_break_continue(self):
        src = """
int f(void) {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    if (i == 3) continue;
    if (i == 7) break;
    s += i;
  }
  return s;
}
"""
        assert run_c(src, "f")[0] == 0 + 1 + 2 + 4 + 5 + 6

    def test_short_circuit(self):
        src = """
int g;
int touch(int v) { g = v; return v; }
int f(int x) { return x != 0 && touch(9) != 0; }
"""
        module = compile_c(src)
        result, mach = run_function(module, "f", [0])
        assert result == 0
        assert struct.unpack("<i", mach.global_contents()["g"])[0] == 0
        result, mach = run_function(module, "f", [1])
        assert result == 1
        assert struct.unpack("<i", mach.global_contents()["g"])[0] == 9

    def test_ternary(self):
        src = "int f(int x) { return x > 0 ? x : -x; }"
        assert run_c(src, "f", [-9])[0] == 9
        assert run_c(src, "f", [4])[0] == 4

    def test_nested_loops(self):
        src = """
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      acc += i * j;
  return acc;
}
"""
        assert run_c(src, "f", [4])[0] == sum(i * j for i in range(4) for j in range(4))

    def test_rotated_loop_is_single_block(self):
        # The whole point of loop rotation: simple counted loops must
        # arrive as single-block loops matched by the counted matcher.
        src = """
int a[32];
void f(void) { for (int i = 0; i < 32; i++) a[i] = i; }
"""
        module = compile_c(src)
        fn = module.get_function("f")
        loops = find_loops(fn)
        assert len(loops) == 1
        counted = match_counted_loop(loops[0])
        assert counted is not None
        assert counted.trip_count() == 32


class TestPointersArraysStructs:
    def test_array_indexing(self):
        src = """
int a[8];
int f(void) {
  for (int i = 0; i < 8; i++) a[i] = i * i;
  return a[5];
}
"""
        assert run_c(src, "f")[0] == 25

    def test_pointer_parameters(self):
        src = "int f(int *p) { return p[0] + p[1]; }"
        module = compile_c(src)
        mach = Machine(module)
        buf = mach.alloc(8)
        mach.write_value(buf, I32, 30)
        mach.write_value(buf + 4, I32, 12)
        assert mach.call(module.get_function("f"), [buf]) == 42

    def test_pointer_arithmetic(self):
        src = "int f(int *p) { int *q = p + 2; return *q; }"
        module = compile_c(src)
        mach = Machine(module)
        buf = mach.alloc(12)
        mach.write_value(buf + 8, I32, 77)
        assert mach.call(module.get_function("f"), [buf]) == 77

    def test_address_of(self):
        src = """
int f(int x) {
  int y = x;
  int *p = &y;
  *p = *p + 1;
  return y;
}
"""
        assert run_c(src, "f", [10])[0] == 11

    def test_struct_members(self):
        src = """
struct point { int x; int y; };
int f(struct point *p) { return p->x * p->y; }
"""
        module = compile_c(src)
        mach = Machine(module)
        buf = mach.alloc(8)
        mach.write_value(buf, I32, 6)
        mach.write_value(buf + 4, I32, 7)
        assert mach.call(module.get_function("f"), [buf]) == 42

    def test_local_struct(self):
        src = """
struct point { int x; int y; };
int f(int a, int b) {
  struct point p;
  p.x = a;
  p.y = b;
  return p.x + p.y;
}
"""
        assert run_c(src, "f", [20, 22])[0] == 42

    def test_global_initializer_list(self):
        src = """
int table[5] = {10, 20, 30, 40, 50};
int f(int i) { return table[i]; }
"""
        assert run_c(src, "f", [3])[0] == 40

    def test_local_array_initializer(self):
        src = """
int f(void) {
  int t[4] = {1, 2, 3, 4};
  return t[0] + t[3];
}
"""
        assert run_c(src, "f")[0] == 5

    def test_array_parameter_decay(self):
        src = "int f(int a[], int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }"
        module = compile_c(src)
        mach = Machine(module)
        buf = mach.alloc(16)
        for i in range(4):
            mach.write_value(buf + 4 * i, I32, i + 1)
        assert mach.call(module.get_function("f"), [buf, 4]) == 10


class TestFunctions:
    def test_recursion(self):
        src = "int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }"
        assert run_c(src, "fact", [6])[0] == 720

    def test_mutual_recursion(self):
        src = """
int odd(int n);
int even(int n) { return n == 0 ? 1 : odd(n - 1); }
int odd(int n) { return n == 0 ? 0 : even(n - 1); }
"""
        assert run_c(src, "even", [10])[0] == 1
        assert run_c(src, "odd", [10])[0] == 0

    def test_extern_call(self):
        src = """
extern int getval(int k);
int f(void) { return getval(1) + getval(2); }
"""
        result, mach = run_c(
            src, "f", externs={"getval": lambda m, a: a[0] * 100}
        )
        assert result == 300

    def test_void_function(self):
        src = """
int g;
void set(int v) { g = v; }
int f(void) { set(7); return g; }
"""
        assert run_c(src, "f")[0] == 7

    def test_implicit_declaration(self):
        src = "int f(int x) { return mystery(x); }"
        result, _ = run_c(src, "f", [5], externs={"mystery": lambda m, a: a[0] * 2})
        assert result == 10


class TestCasts:
    def test_explicit_casts(self):
        assert run_c("int f(double d) { return (int)d; }", "f", [3.9])[0] == 3
        assert run_c("double f(int i) { return (double)i / 2; }", "f", [7])[0] == 3.5
        assert run_c("int f(int x) { return (char)x; }", "f", [0x181])[0] == -127

    def test_pointer_cast(self):
        src = """
int f(int *p) {
  char *c = (char*)p;
  return c[0];
}
"""
        module = compile_c(src)
        mach = Machine(module)
        buf = mach.alloc(4)
        mach.write_value(buf, I32, 0x12345678)
        assert mach.call(module.get_function("f"), [buf]) == 0x78


class TestCleanupQuality:
    def test_mem2reg_ran(self):
        src = "int f(int x) { int y = x + 1; int z = y * 2; return z; }"
        module = compile_c(src)
        fn = module.get_function("f")
        from repro.ir import Alloca

        assert not any(isinstance(i, Alloca) for i in fn.instructions())

    def test_constant_folding_ran(self):
        src = "int f(void) { return 2 + 3 * 4; }"
        module = compile_c(src)
        fn = module.get_function("f")
        assert len(fn.entry.instructions) == 1

    def test_verifies(self):
        src = """
int a[16]; int b[16];
int mixed(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    if (a[i] > b[i]) s += a[i]; else s -= b[i];
  }
  return s;
}
"""
        module = compile_c(src)
        verify_module(module)
