"""Tests for the special alignment-node kinds (paper Section IV-C)."""

import pytest

from tests.helpers import (
    assert_transform_preserves,
    execute,
    floats_to_bytes,
    ints_to_bytes,
)

from repro.ir import I32, Machine, parse_module, verify_module
from repro.rolag import (
    RolagConfig,
    RolagStats,
    roll_loops_in_function,
)


def roll(module, name="f", config=None, stats=None):
    return roll_loops_in_function(
        module.get_function(name), config=config, stats=stats
    )


FIG3_AEGIS = """
declare void @vst1q_u8(i8*, i8*)

define void @aegis(i8* %st, i8* %state) {
entry:
  call void @vst1q_u8(i8* %state, i8* %st)
  %p1 = getelementptr i8, i8* %state, i64 16
  %v1 = getelementptr i8, i8* %st, i64 16
  call void @vst1q_u8(i8* %p1, i8* %v1)
  %p2 = getelementptr i8, i8* %state, i64 32
  %v2 = getelementptr i8, i8* %st, i64 32
  call void @vst1q_u8(i8* %p2, i8* %v2)
  %p3 = getelementptr i8, i8* %state, i64 48
  %v3 = getelementptr i8, i8* %st, i64 48
  call void @vst1q_u8(i8* %p3, i8* %v3)
  %p4 = getelementptr i8, i8* %state, i64 64
  %v4 = getelementptr i8, i8* %st, i64 64
  call void @vst1q_u8(i8* %p4, i8* %v4)
  ret void
}
"""

FIG4_HDMI = """
%struct.fmt = type { i32, i32, i32, i32, i32, i32 }

declare i32 @FLD_MOD(i32, i32, i32, i32) readnone

define i32 @hdmi(i32 %r0, %struct.fmt* %fmt) {
entry:
  %g5 = getelementptr %struct.fmt, %struct.fmt* %fmt, i64 0, i64 5
  %f5 = load i32, i32* %g5
  %r1 = call i32 @FLD_MOD(i32 %r0, i32 %f5, i32 5, i32 5)
  %g4 = getelementptr %struct.fmt, %struct.fmt* %fmt, i64 0, i64 4
  %f4 = load i32, i32* %g4
  %r2 = call i32 @FLD_MOD(i32 %r1, i32 %f4, i32 4, i32 4)
  %g3 = getelementptr %struct.fmt, %struct.fmt* %fmt, i64 0, i64 3
  %f3 = load i32, i32* %g3
  %r3 = call i32 @FLD_MOD(i32 %r2, i32 %f3, i32 3, i32 3)
  %g2 = getelementptr %struct.fmt, %struct.fmt* %fmt, i64 0, i64 2
  %f2 = load i32, i32* %g2
  %r4 = call i32 @FLD_MOD(i32 %r3, i32 %f2, i32 2, i32 2)
  %g1 = getelementptr %struct.fmt, %struct.fmt* %fmt, i64 0, i64 1
  %f1 = load i32, i32* %g1
  %r5 = call i32 @FLD_MOD(i32 %r4, i32 %f1, i32 1, i32 1)
  %g0 = getelementptr %struct.fmt, %struct.fmt* %fmt, i64 0, i64 0
  %f0 = load i32, i32* %g0
  %r6 = call i32 @FLD_MOD(i32 %r5, i32 %f0, i32 0, i32 0)
  ret i32 %r6
}
"""


def fld_mod(machine, args):
    r, v, e, s = args
    mask = ((1 << (e - s + 1)) - 1) << s
    return (r & ~mask) | ((v << s) & mask)


class TestNeutralPointerOps:
    """Paper Fig. 3 / Fig. 9: the aegis128 call sequence."""

    def test_rolls_with_ptr_seq_nodes(self):
        stats = RolagStats()

        def transform(m):
            return roll(m, "aegis", stats=stats)

        rolled, module = assert_transform_preserves(
            FIG3_AEGIS,
            transform,
            "aegis",
            buffer_specs=[b"\0" * 96, b"\0" * 96],
        )
        assert rolled == 1
        assert stats.node_counts["ptr_seq"] == 2  # both operand chains
        assert stats.node_counts["match"] == 1  # the call

    def test_disabled_gep_neutral_only_partial_roll(self):
        m = parse_module(FIG3_AEGIS)
        config = RolagConfig(enable_gep_neutral=False)
        stats = RolagStats()
        rolled = roll(m, "aegis", config=config, stats=stats)
        verify_module(m)
        # Without the pointer rule the bare-%state lane cannot align, so
        # at best a contiguous subgroup (the GEP-addressed calls) rolls.
        assert stats.node_counts.get("ptr_seq", 0) == 0
        from repro.ir import Call

        entry = m.get_function("aegis").entry
        straight_line_calls = [
            i for i in entry.instructions if isinstance(i, Call)
        ]
        assert len(straight_line_calls) >= 2  # lane 0 (and 1) left behind

    def test_size_reduction_about_matches_paper(self):
        # Paper reports ~20% object-size reduction for this function.
        from repro.analysis import CodeSizeCostModel

        m = parse_module(FIG3_AEGIS)
        cm = CodeSizeCostModel()
        before = cm.function_cost(m.get_function("aegis"))
        roll(m, "aegis")
        after = cm.function_cost(m.get_function("aegis"))
        reduction = (before - after) / before
        assert reduction > 0.15


class TestChainedDependences:
    """Paper Fig. 4 / Fig. 10: the hdmi FLD_MOD chain."""

    def test_rolls_with_recurrence(self):
        stats = RolagStats()

        def transform(m):
            return roll(m, "hdmi", stats=stats)

        fields = ints_to_bytes([4, 9, 16, 25, 36, 49])
        rolled, module = assert_transform_preserves(
            FIG4_HDMI,
            transform,
            "hdmi",
            [12345],
            buffer_specs=[fields],
            externs={"FLD_MOD": fld_mod},
        )
        assert rolled == 1
        assert stats.node_counts["recurrence"] == 1
        assert stats.node_counts["sequence"] >= 1  # the 5..0 bit indices
        assert stats.node_counts["ptr_seq"] == 1  # struct-as-array access

    def test_struct_accessed_in_reverse(self):
        # The generated pointer walks the struct fields downwards.
        m = parse_module(FIG4_HDMI)
        roll(m, "hdmi")
        text = __import__("repro.ir", fromlist=["print_module"]).print_module(m)
        assert "phi i32" in text  # the recurrence phi
        verify_module(m)

    def test_disabled_recurrence_blocks_rolling(self):
        m = parse_module(FIG4_HDMI)
        config = RolagConfig(enable_recurrence=False)
        rolled = roll(m, "hdmi", config=config)
        assert rolled == 0


class TestReductionTrees:
    DOT = """
define i32 @f(i32* %a, i32* %b) {
entry:
  %a0 = load i32, i32* %a
  %b0 = load i32, i32* %b
  %m0 = mul i32 %a0, %b0
  %pa1 = getelementptr i32, i32* %a, i64 1
  %a1 = load i32, i32* %pa1
  %pb1 = getelementptr i32, i32* %b, i64 1
  %b1 = load i32, i32* %pb1
  %m1 = mul i32 %a1, %b1
  %pa2 = getelementptr i32, i32* %a, i64 2
  %a2 = load i32, i32* %pa2
  %pb2 = getelementptr i32, i32* %b, i64 2
  %b2 = load i32, i32* %pb2
  %m2 = mul i32 %a2, %b2
  %pa3 = getelementptr i32, i32* %a, i64 3
  %a3 = load i32, i32* %pa3
  %pb3 = getelementptr i32, i32* %b, i64 3
  %b3 = load i32, i32* %pb3
  %m3 = mul i32 %a3, %b3
  %s1 = add i32 %m0, %m1
  %s2 = add i32 %s1, %m2
  %s3 = add i32 %s2, %m3
  ret i32 %s3
}
"""

    def test_left_chain_reduction(self):
        stats = RolagStats()

        def transform(m):
            return roll(m, stats=stats)

        rolled, _ = assert_transform_preserves(
            self.DOT,
            transform,
            "f",
            buffer_specs=[
                ints_to_bytes([1, 2, 3, 4]),
                ints_to_bytes([10, 20, 30, 40]),
            ],
        )
        assert rolled == 1
        assert stats.node_counts["reduction"] == 1

    def test_balanced_tree_reduction(self):
        src = """
define i32 @f(i32* %a) {
entry:
  %p0 = getelementptr i32, i32* %a, i64 0
  %v0 = load i32, i32* %p0
  %p1 = getelementptr i32, i32* %a, i64 1
  %v1 = load i32, i32* %p1
  %p2 = getelementptr i32, i32* %a, i64 2
  %v2 = load i32, i32* %p2
  %p3 = getelementptr i32, i32* %a, i64 3
  %v3 = load i32, i32* %p3
  %s01 = add i32 %v0, %v1
  %s23 = add i32 %v2, %v3
  %s = add i32 %s01, %s23
  ret i32 %s
}
"""
        def transform(m):
            return roll(m)

        rolled, _ = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([5, 6, 7, 8])]
        )
        assert rolled == 1

    def test_float_reduction_needs_fast_math(self):
        src = """
define float @f(float* %a) {
entry:
  %p0 = getelementptr float, float* %a, i64 0
  %v0 = load float, float* %p0
  %p1 = getelementptr float, float* %a, i64 1
  %v1 = load float, float* %p1
  %p2 = getelementptr float, float* %a, i64 2
  %v2 = load float, float* %p2
  %p3 = getelementptr float, float* %a, i64 3
  %v3 = load float, float* %p3
  %s1 = fadd float %v0, %v1
  %s2 = fadd float %s1, %v2
  %s3 = fadd float %s2, %v3
  ret float %s3
}
"""
        m = parse_module(src)
        assert roll(m) == 0  # strict FP by default

        m2 = parse_module(src)
        config = RolagConfig(fast_math=True)
        rolled = roll(m2, config=config)
        verify_module(m2)
        assert rolled == 1

    def test_xor_reduction(self):
        src = """
define i32 @f(i32 %a, i32 %b, i32 %c, i32 %d) {
entry:
  %x1 = xor i32 %a, %b
  %x2 = xor i32 %x1, %c
  %x3 = xor i32 %x2, %d
  ret i32 %x3
}
"""
        m = parse_module(src)
        stats = RolagStats()
        rolled = roll(m, stats=stats)
        verify_module(m)
        # Leaves are 4 unrelated arguments: a mismatch array would be
        # required, typically unprofitable -- but never incorrect.
        before = execute(parse_module(src), "f", [1, 2, 3, 4])
        after = execute(m, "f", [1, 2, 3, 4])
        assert before.same_behaviour(after)

    def test_disabled_reduction(self):
        m = parse_module(self.DOT)
        config = RolagConfig(enable_reduction=False)
        assert roll(m, config=config) == 0


class TestBinOpNeutral:
    @staticmethod
    def _padded_add_source(lanes, skip_lane):
        lines = ["define void @f(i32* %a, i32* %b) {", "entry:"]
        for i in range(lanes):
            lines += [
                f"  %pa{i} = getelementptr i32, i32* %a, i64 {i}",
                f"  %v{i} = load i32, i32* %pa{i}",
            ]
            value = f"%v{i}"
            if i != skip_lane:
                lines.append(f"  %s{i} = add i32 %v{i}, 5")
                value = f"%s{i}"
            lines += [
                f"  %pb{i} = getelementptr i32, i32* %b, i64 {i}",
                f"  store i32 {value}, i32* %pb{i}",
            ]
        lines += ["  ret void", "}"]
        return "\n".join(lines)

    def test_missing_add_padded_with_zero(self):
        # One lane stores the loaded value directly (x + 0 == x).
        src = self._padded_add_source(lanes=8, skip_lane=2)
        stats = RolagStats()

        def transform(m):
            return roll(m, stats=stats)

        values = [1, 2, 3, 4, -5, 100, 7, 8]
        rolled, _ = assert_transform_preserves(
            src,
            transform,
            "f",
            buffer_specs=[ints_to_bytes(values), ints_to_bytes([0] * 8)],
        )
        assert rolled == 1
        assert stats.node_counts["binop_neutral"] == 1

    def test_small_padded_group_judged_unprofitable(self):
        # With only 4 lanes the constant pad array outweighs the win;
        # the profitability analysis must reject the roll.
        src = self._padded_add_source(lanes=4, skip_lane=2)
        m = parse_module(src)
        stats = RolagStats()
        rolled = roll(m, stats=stats)
        assert rolled == 0
        assert stats.unprofitable >= 1

    def test_commutative_reordering(self):
        # Lane operands swapped: mul is commutative, alignment should
        # reorder instead of falling back to mismatch arrays.
        src = """
define void @f(i32 %k, i32* %a, i32* %b) {
entry:
  %pa0 = getelementptr i32, i32* %a, i64 0
  %v0 = load i32, i32* %pa0
  %m0 = mul i32 %v0, %k
  %pb0 = getelementptr i32, i32* %b, i64 0
  store i32 %m0, i32* %pb0
  %pa1 = getelementptr i32, i32* %a, i64 1
  %v1 = load i32, i32* %pa1
  %m1 = mul i32 %k, %v1
  %pb1 = getelementptr i32, i32* %b, i64 1
  store i32 %m1, i32* %pb1
  %pa2 = getelementptr i32, i32* %a, i64 2
  %v2 = load i32, i32* %pa2
  %m2 = mul i32 %v2, %k
  %pb2 = getelementptr i32, i32* %b, i64 2
  store i32 %m2, i32* %pb2
  %pa3 = getelementptr i32, i32* %a, i64 3
  %v3 = load i32, i32* %pa3
  %m3 = mul i32 %k, %v3
  %pb3 = getelementptr i32, i32* %b, i64 3
  store i32 %m3, i32* %pb3
  ret void
}
"""
        stats = RolagStats()

        def transform(m):
            return roll(m, stats=stats)

        rolled, _ = assert_transform_preserves(
            src,
            transform,
            "f",
            [3],
            buffer_specs=[ints_to_bytes([1, 2, 3, 4]), ints_to_bytes([0] * 4)],
        )
        assert rolled == 1
        # All four muls align into one match node; no mismatch needed.
        assert stats.node_counts.get("mismatch", 0) == 0


class TestJointGroups:
    def test_alternating_store_and_call(self):
        src = """
declare void @tick(i32)

define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 0, i32* %p0
  call void @tick(i32 0)
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  call void @tick(i32 1)
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 2, i32* %p2
  call void @tick(i32 2)
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 3, i32* %p3
  call void @tick(i32 3)
  ret void
}
"""
        stats = RolagStats()

        def transform(m):
            return roll(m, stats=stats)

        rolled, _ = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([9] * 4)]
        )
        assert rolled == 1
        assert stats.node_counts["joint"] == 1

    def test_alternation_is_preserved_in_trace(self):
        # The extern-call trace proves store/call interleaving survives
        # (store effects are visible through a readonly callee).
        src = """
declare void @tick(i32)

define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 10, i32* %p0
  call void @tick(i32 0)
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 11, i32* %p1
  call void @tick(i32 1)
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 12, i32* %p2
  call void @tick(i32 2)
  ret void
}
"""
        m = parse_module(src)
        seen = []

        def tick(machine, args):
            # Record how much of the buffer is initialised at call time.
            seen.append(args[0])
            return None

        before = execute(
            m, "f", buffer_specs=[ints_to_bytes([0] * 3)],
            externs={"tick": tick},
        )
        trace_before = list(seen)
        seen.clear()
        roll(m)
        verify_module(m)
        after = execute(
            m, "f", buffer_specs=[ints_to_bytes([0] * 3)],
            externs={"tick": tick},
        )
        assert before.same_behaviour(after)
        assert seen == trace_before

    def test_disabled_joint(self):
        src = """
declare void @tick(i32)

define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 0, i32* %p0
  call void @tick(i32 0)
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  call void @tick(i32 1)
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 2, i32* %p2
  call void @tick(i32 2)
  ret void
}
"""
        m = parse_module(src)
        config = RolagConfig(enable_joint=False)
        stats = RolagStats()
        rolled = roll(m, config=config, stats=stats)
        # Stores alone cannot move past the opaque calls: scheduling
        # must reject them, so nothing rolls.
        assert rolled == 0
        assert stats.schedule_rejected >= 1


class TestSequencesDisabled:
    def test_sequence_ablation(self):
        src = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 10, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 20, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 30, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 40, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 50, i32* %p4
  %p5 = getelementptr i32, i32* %p, i64 5
  store i32 60, i32* %p5
  %p6 = getelementptr i32, i32* %p, i64 6
  store i32 70, i32* %p6
  %p7 = getelementptr i32, i32* %p, i64 7
  store i32 80, i32* %p7
  ret void
}
"""
        stats_on = RolagStats()
        m1 = parse_module(src)
        roll(m1, stats=stats_on)
        assert stats_on.node_counts.get("sequence", 0) >= 1

        # Disabled: values become a constant mismatch array, strictly
        # bigger; rolling may still happen but with mismatch nodes.
        m2 = parse_module(src)
        stats_off = RolagStats()
        config = RolagConfig(enable_sequences=False)
        roll(m2, config=config, stats=stats_off)
        assert stats_off.node_counts.get("sequence", 0) == 0
        verify_module(m2)
