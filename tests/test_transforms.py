"""Tests for mem2reg, constfold, cse, dce, simplifycfg (differential)."""

import pytest

from tests.helpers import assert_transform_preserves, execute, ints_to_bytes

from repro.ir import (
    Alloca,
    Load,
    Phi,
    Store,
    parse_module,
    verify_module,
)
from repro.transforms import (
    default_cleanup_pipeline,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    promote_memory_to_registers,
    simplify_cfg,
)


class TestMem2Reg:
    COUNT_UP = """
define i32 @f(i32 %n) {
entry:
  %i = alloca i32
  %acc = alloca i32
  store i32 0, i32* %i
  store i32 0, i32* %acc
  br label %loop

loop:
  %iv = load i32, i32* %i
  %av = load i32, i32* %acc
  %an = add i32 %av, %iv
  store i32 %an, i32* %acc
  %in = add i32 %iv, 1
  store i32 %in, i32* %i
  %c = icmp slt i32 %in, %n
  br i1 %c, label %loop, label %out

out:
  %r = load i32, i32* %acc
  ret i32 %r
}
"""

    def test_promotes_and_preserves(self):
        def transform(m):
            return promote_memory_to_registers(m.get_function("f"))

        count, module = assert_transform_preserves(
            self.COUNT_UP, transform, "f", [10]
        )
        assert count == 2
        fn = module.get_function("f")
        assert not any(isinstance(i, Alloca) for i in fn.instructions())
        assert not any(isinstance(i, Load) for i in fn.instructions())
        # Loop gained phis.
        blocks = {b.name: b for b in fn.blocks}
        assert len(blocks["loop"].phis()) == 2

    def test_diamond_phi_placement(self):
        src = """
define i32 @f(i1 %c) {
entry:
  %x = alloca i32
  store i32 0, i32* %x
  br i1 %c, label %a, label %b

a:
  store i32 1, i32* %x
  br label %m

b:
  store i32 2, i32* %x
  br label %m

m:
  %v = load i32, i32* %x
  ret i32 %v
}
"""
        def transform(m):
            return promote_memory_to_registers(m.get_function("f"))

        _, module = assert_transform_preserves(src, transform, "f", [1])
        assert_transform_preserves(src, transform, "f", [0])
        fn = module.get_function("f")
        blocks = {b.name: b for b in fn.blocks}
        assert len(blocks["m"].phis()) == 1

    def test_non_promotable_escaped(self):
        src = """
declare void @sink(i32*)

define i32 @f() {
entry:
  %x = alloca i32
  store i32 7, i32* %x
  call void @sink(i32* %x)
  %v = load i32, i32* %x
  ret i32 %v
}
"""
        m = parse_module(src)
        assert promote_memory_to_registers(m.get_function("f")) == 0
        verify_module(m)

    def test_aggregate_alloca_not_promoted(self):
        src = """
define i32 @f() {
entry:
  %arr = alloca [4 x i32]
  %p = getelementptr [4 x i32], [4 x i32]* %arr, i64 0, i64 0
  store i32 5, i32* %p
  %v = load i32, i32* %p
  ret i32 %v
}
"""
        m = parse_module(src)
        assert promote_memory_to_registers(m.get_function("f")) == 0

    def test_uninitialized_read_becomes_undef(self):
        src = """
define i32 @f() {
entry:
  %x = alloca i32
  %v = load i32, i32* %x
  ret i32 %v
}
"""
        m = parse_module(src)
        promote_memory_to_registers(m.get_function("f"))
        verify_module(m)


class TestConstFold:
    def test_folds_arithmetic(self):
        src = """
define i32 @f() {
entry:
  %a = add i32 2, 3
  %b = mul i32 %a, 4
  %c = sub i32 %b, 5
  ret i32 %c
}
"""
        def transform(m):
            return fold_constants(m.get_function("f"))

        rewrites, module = assert_transform_preserves(src, transform, "f")
        assert rewrites == 3
        fn = module.get_function("f")
        assert len(fn.entry.instructions) == 1  # just the ret

    def test_identities(self):
        src = """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  %c = or i32 %b, 0
  %d = xor i32 %c, 0
  %z = mul i32 %d, 0
  %e = add i32 %d, %z
  ret i32 %e
}
"""
        def transform(m):
            return fold_constants(m.get_function("f"))

        _, module = assert_transform_preserves(src, transform, "f", [41])
        fn = module.get_function("f")
        assert len(fn.entry.instructions) == 1

    def test_icmp_and_select_fold(self):
        src = """
define i32 @f(i32 %x) {
entry:
  %c = icmp slt i32 1, 2
  %r = select i1 %c, i32 %x, i32 0
  ret i32 %r
}
"""
        def transform(m):
            return fold_constants(m.get_function("f"))

        _, module = assert_transform_preserves(src, transform, "f", [9])
        assert len(module.get_function("f").entry.instructions) == 1

    def test_division_by_zero_not_folded(self):
        src = """
define i32 @f(i32 %x) {
entry:
  %q = select i1 false, i32 1, i32 %x
  ret i32 %q
}
"""
        m = parse_module(src)
        fold_constants(m.get_function("f"))
        verify_module(m)
        # sdiv 1, 0 must never be materialised by the folder:
        src2 = """
define i32 @f() {
entry:
  %q = sdiv i32 1, 0
  ret i32 %q
}
"""
        m2 = parse_module(src2)
        fold_constants(m2.get_function("f"))  # must not crash
        verify_module(m2)

    def test_phi_with_single_value(self):
        src = """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b

a:
  br label %m

b:
  br label %m

m:
  %p = phi i32 [ 7, %a ], [ 7, %b ]
  ret i32 %p
}
"""
        def transform(m):
            return fold_constants(m.get_function("f"))

        rewrites, module = assert_transform_preserves(src, transform, "f", [1])
        assert rewrites == 1


class TestCSE:
    def test_repeated_expression(self):
        src = """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = add i32 %x, 1
  %c = add i32 %a, %b
  ret i32 %c
}
"""
        def transform(m):
            return eliminate_common_subexpressions(m.get_function("f"))

        eliminated, module = assert_transform_preserves(src, transform, "f", [5])
        assert eliminated == 1

    def test_commutative_matching(self):
        src = """
define i32 @f(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = add i32 %y, %x
  %c = sub i32 %a, %b
  ret i32 %c
}
"""
        def transform(m):
            return eliminate_common_subexpressions(m.get_function("f"))

        eliminated, _ = assert_transform_preserves(src, transform, "f", [3, 4])
        assert eliminated == 1

    def test_load_invalidated_by_store(self):
        src = """
define i32 @f(i32* %p) {
entry:
  %a = load i32, i32* %p
  store i32 99, i32* %p
  %b = load i32, i32* %p
  %c = add i32 %a, %b
  ret i32 %c
}
"""
        def transform(m):
            return eliminate_common_subexpressions(m.get_function("f"))

        eliminated, _ = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([7])]
        )
        assert eliminated == 0

    def test_load_reused_when_safe(self):
        src = """
define i32 @f(i32* %p) {
entry:
  %a = load i32, i32* %p
  %b = load i32, i32* %p
  %c = add i32 %a, %b
  ret i32 %c
}
"""
        def transform(m):
            return eliminate_common_subexpressions(m.get_function("f"))

        eliminated, _ = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([7])]
        )
        assert eliminated == 1


class TestDCE:
    def test_removes_dead_chain(self):
        src = """
define i32 @f(i32 %x) {
entry:
  %dead1 = add i32 %x, 1
  %dead2 = mul i32 %dead1, 2
  %live = add i32 %x, 5
  ret i32 %live
}
"""
        def transform(m):
            return eliminate_dead_code(m.get_function("f"))

        removed, module = assert_transform_preserves(src, transform, "f", [1])
        assert removed == 2
        assert len(module.get_function("f").entry.instructions) == 2

    def test_keeps_side_effects(self):
        src = """
define void @f(i32* %p) {
entry:
  store i32 1, i32* %p
  ret void
}
"""
        def transform(m):
            return eliminate_dead_code(m.get_function("f"))

        removed, _ = assert_transform_preserves(
            src, transform, "f", buffer_specs=[ints_to_bytes([0])]
        )
        assert removed == 0

    def test_removes_unreachable_blocks(self):
        src = """
define i32 @f() {
entry:
  ret i32 1

island:
  %x = add i32 1, 2
  br label %island
}
"""
        m = parse_module(src)
        removed = eliminate_dead_code(m.get_function("f"))
        verify_module(m)
        assert len(m.get_function("f").blocks) == 1

    def test_dead_readnone_call_removed(self):
        src = """
declare i32 @pure(i32) readnone

define i32 @f(i32 %x) {
entry:
  %unused = call i32 @pure(i32 %x)
  ret i32 %x
}
"""
        m = parse_module(src)
        removed = eliminate_dead_code(m.get_function("f"))
        assert removed == 1

    def test_dead_opaque_call_kept(self):
        src = """
declare i32 @opaque(i32)

define i32 @f(i32 %x) {
entry:
  %unused = call i32 @opaque(i32 %x)
  ret i32 %x
}
"""
        m = parse_module(src)
        removed = eliminate_dead_code(m.get_function("f"))
        assert removed == 0


class TestSimplifyCFG:
    def test_fold_constant_branch(self):
        src = """
define i32 @f() {
entry:
  br i1 true, label %a, label %b

a:
  ret i32 1

b:
  ret i32 2
}
"""
        def transform(m):
            return simplify_cfg(m.get_function("f"))

        _, module = assert_transform_preserves(src, transform, "f")
        fn = module.get_function("f")
        names = [b.name for b in fn.blocks]
        assert "b" not in names

    def test_merge_linear_blocks(self):
        src = """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  br label %second

second:
  %b = add i32 %a, 2
  br label %third

third:
  ret i32 %b
}
"""
        def transform(m):
            return simplify_cfg(m.get_function("f"))

        _, module = assert_transform_preserves(src, transform, "f", [1])
        assert len(module.get_function("f").blocks) == 1

    def test_phi_resolved_on_merge(self):
        src = """
define i32 @f(i32 %x) {
entry:
  br label %next

next:
  %p = phi i32 [ %x, %entry ]
  ret i32 %p
}
"""
        def transform(m):
            return simplify_cfg(m.get_function("f"))

        _, module = assert_transform_preserves(src, transform, "f", [3])
        assert len(module.get_function("f").blocks) == 1


class TestPipeline:
    def test_full_cleanup_pipeline(self):
        src = """
define i32 @f(i32 %n) {
entry:
  %i = alloca i32
  store i32 0, i32* %i
  %cst = add i32 2, 3
  br i1 true, label %work, label %never

work:
  %v = load i32, i32* %i
  %r = add i32 %v, %cst
  ret i32 %r

never:
  ret i32 -1
}
"""
        def transform(m):
            return default_cleanup_pipeline().run(m)

        changed, module = assert_transform_preserves(src, transform, "f", [0])
        assert changed > 0
        fn = module.get_function("f")
        assert len(fn.blocks) == 1
        assert len(fn.entry.instructions) == 1  # ret i32 5
