"""Structural tests of the RoLAG code generator (paper Fig. 14)."""

import pytest

from tests.helpers import execute, ints_to_bytes

from repro.ir import (
    Alloca,
    Br,
    GlobalVariable,
    ICmp,
    Load,
    Phi,
    Store,
    parse_module,
    verify_module,
)
from repro.rolag import RolagStats, roll_loops_in_function


ROLLABLE = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 7, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 7, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 7, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 7, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 7, i32* %p4
  %p5 = getelementptr i32, i32* %p, i64 5
  store i32 7, i32* %p5
  ret void
}
"""


def rolled(src, name="f"):
    module = parse_module(src)
    count = roll_loops_in_function(module.get_function(name))
    verify_module(module)
    return module, count


class TestLoopShape:
    def test_fig14_block_layout(self):
        module, count = rolled(ROLLABLE)
        assert count == 1
        fn = module.get_function("f")
        preheader, loop, exit_block = fn.blocks
        # Preheader jumps into the loop.
        assert isinstance(preheader.terminator, Br)
        assert preheader.terminator.successors() == [loop]
        # Loop: iv phi, body, bump, compare, conditional branch.
        assert isinstance(loop.instructions[0], Phi)
        term = loop.terminator
        assert term.is_conditional
        assert set(map(id, term.successors())) == {id(loop), id(exit_block)}
        # Compare drives the branch.
        assert isinstance(term.condition, ICmp)
        assert term.condition.predicate == "ult"
        # Exit holds the original return.
        assert exit_block.terminator.opcode == "ret"

    def test_trip_count_equals_lanes(self):
        module, _ = rolled(ROLLABLE)
        fn = module.get_function("f")
        loop = fn.blocks[1]
        cond = loop.terminator.condition
        bound = cond.operands[1]
        assert bound.value == 6

    def test_iv_phi_starts_at_zero(self):
        module, _ = rolled(ROLLABLE)
        loop = module.get_function("f").blocks[1]
        iv = loop.instructions[0]
        start = iv.incoming_for(module.get_function("f").blocks[0])
        assert start.value == 0

    def test_loop_body_has_single_store(self):
        module, _ = rolled(ROLLABLE)
        loop = module.get_function("f").blocks[1]
        stores = [i for i in loop.instructions if isinstance(i, Store)]
        assert len(stores) == 1

    def test_original_instructions_deleted(self):
        module, _ = rolled(ROLLABLE)
        fn = module.get_function("f")
        total = sum(len(b.instructions) for b in fn.blocks)
        # 1 br + (phi, gep, store, add, icmp, br) + ret = 8
        assert total <= 9


class TestMismatchMaterialisation:
    CONST_VALUES = [13, -7, 99, 4, 5, 250, 1, 0, 42, -1]

    def _const_mismatch_source(self):
        lines = ["define void @f(i32* %p) {", "entry:"]
        for i, v in enumerate(self.CONST_VALUES):
            lines.append(f"  %p{i} = getelementptr i32, i32* %p, i64 {i}")
            lines.append(f"  store i32 {v}, i32* %p{i}")
        lines += ["  ret void", "}"]
        return "\n".join(lines)

    def test_constant_table_in_rodata(self):
        module, count = rolled(self._const_mismatch_source())
        assert count == 1
        tables = [g for g in module.globals if g.name.startswith("__rolag")]
        assert len(tables) == 1
        assert tables[0].is_constant_global
        values = [e.value for e in tables[0].initializer.elements]
        assert values == self.CONST_VALUES

    def test_table_loaded_by_iv(self):
        module, _ = rolled(self._const_mismatch_source())
        loop = module.get_function("f").blocks[1]
        loads = [i for i in loop.instructions if isinstance(i, Load)]
        assert len(loads) == 1

    def test_runtime_values_use_stack_array(self):
        src = """
define void @f(i32 %a, i32 %b, i32 %c, i32 %d, i32 %e, i32 %g, i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 %a, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 %b, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 %c, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 %d, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 %e, i32* %p4
  %p5 = getelementptr i32, i32* %p, i64 5
  store i32 %g, i32* %p5
  ret void
}
"""
        module = parse_module(src)
        from repro.analysis import CodeSizeCostModel

        # Force profitability so the stack-array path materialises.
        cm = CodeSizeCostModel()
        cm.table["store"] = 40
        count = roll_loops_in_function(
            module.get_function("f"), cost_model=cm
        )
        verify_module(module)
        if count:
            fn = module.get_function("f")
            allocas = [
                i for i in fn.instructions() if isinstance(i, Alloca)
            ]
            assert len(allocas) == 1  # the mismatch array
            # And it must still compute the right thing.
            before = execute(
                parse_module(src), "f", [9, 8, 7, 6, 5, 4],
                buffer_specs=[ints_to_bytes([0] * 6)],
            )
            after = execute(
                module, "f", [9, 8, 7, 6, 5, 4],
                buffer_specs=[ints_to_bytes([0] * 6)],
            )
            assert before.same_behaviour(after)


class TestExitBlockWiring:
    def test_successor_phis_rewired(self):
        # The rolled block branches to a join whose phi must now name
        # the exit block as predecessor.
        src = """
define i32 @f(i1 %c, i32* %p) {
entry:
  br i1 %c, label %work, label %join

work:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 7, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 7, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 7, i32* %p2
  %p3 = getelementptr i32, i32* %p, i64 3
  store i32 7, i32* %p3
  %p4 = getelementptr i32, i32* %p, i64 4
  store i32 7, i32* %p4
  %p5 = getelementptr i32, i32* %p, i64 5
  store i32 7, i32* %p5
  br label %join

join:
  %r = phi i32 [ 1, %work ], [ 0, %entry ]
  ret i32 %r
}
"""
        module = parse_module(src)
        count = roll_loops_in_function(module.get_function("f"))
        verify_module(module)  # phi/pred agreement is part of verification
        assert count == 1
        for args in ([1], [0]):
            before = execute(
                parse_module(src), "f", args,
                buffer_specs=[ints_to_bytes([0] * 6)],
            )
            after = execute(
                module, "f", args, buffer_specs=[ints_to_bytes([0] * 6)]
            )
            assert before.same_behaviour(after)

    def test_rolling_inside_branch_arm(self):
        # Both arms contain rollable regions; each gets its own loop.
        src = """
define void @f(i1 %c, i32* %p) {
entry:
  br i1 %c, label %a, label %b

a:
  %a0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %a0
  %a1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %a1
  %a2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %a2
  %a3 = getelementptr i32, i32* %p, i64 3
  store i32 1, i32* %a3
  %a4 = getelementptr i32, i32* %p, i64 4
  store i32 1, i32* %a4
  ret void

b:
  %b0 = getelementptr i32, i32* %p, i64 0
  store i32 2, i32* %b0
  %b1 = getelementptr i32, i32* %p, i64 1
  store i32 2, i32* %b1
  %b2 = getelementptr i32, i32* %p, i64 2
  store i32 2, i32* %b2
  %b3 = getelementptr i32, i32* %p, i64 3
  store i32 2, i32* %b3
  %b4 = getelementptr i32, i32* %p, i64 4
  store i32 2, i32* %b4
  ret void
}
"""
        module = parse_module(src)
        count = roll_loops_in_function(module.get_function("f"))
        verify_module(module)
        assert count == 2
        for args in ([1], [0]):
            before = execute(
                parse_module(src), "f", args,
                buffer_specs=[ints_to_bytes([0] * 5)],
            )
            after = execute(
                module, "f", args, buffer_specs=[ints_to_bytes([0] * 5)]
            )
            assert before.same_behaviour(after)
