"""Interpreter semantics tests: the oracle must itself be right."""

import struct

import pytest

from repro.ir import (
    I16,
    I32,
    I64,
    I8,
    F32,
    F64,
    Machine,
    StepLimitExceeded,
    TrapError,
    parse_module,
    run_function,
)


def run_src(source, name, args=(), externs=None):
    module = parse_module(source)
    return run_function(module, name, args, externs)


class TestArithmetic:
    def test_wrapping_add(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = add i32 %a, %b
  ret i32 %r
}
"""
        assert run_src(src, "f", [2**31 - 1, 1])[0] == -(2**31)
        assert run_src(src, "f", [-5, 3])[0] == -2

    def test_division_semantics(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = sdiv i32 %a, %b
  ret i32 %r
}
"""
        assert run_src(src, "f", [7, 2])[0] == 3
        assert run_src(src, "f", [-7, 2])[0] == -3  # truncation toward zero
        assert run_src(src, "f", [7, -2])[0] == -3
        with pytest.raises(TrapError):
            run_src(src, "f", [1, 0])

    def test_srem_sign(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %r = srem i32 %a, %b
  ret i32 %r
}
"""
        assert run_src(src, "f", [-7, 2])[0] == -1
        assert run_src(src, "f", [7, -2])[0] == 1

    def test_unsigned_ops(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %d = udiv i32 %a, %b
  ret i32 %d
}
"""
        # -4 as unsigned is 2**32-4; (2**32-4)//2 fits in signed i32.
        assert run_src(src, "f", [-4, 2])[0] == 2**31 - 2

    def test_shifts(self):
        src = """
define i32 @f(i32 %a, i32 %s) {
entry:
  %l = shl i32 %a, %s
  %r = ashr i32 %l, %s
  ret i32 %r
}
"""
        assert run_src(src, "f", [-3, 4])[0] == -3

    def test_lshr_vs_ashr(self):
        src = """
define i32 @f(i32 %a) {
entry:
  %r = lshr i32 %a, 1
  ret i32 %r
}
"""
        assert run_src(src, "f", [-2])[0] == 0x7FFFFFFF

    def test_float_rounding_f32(self):
        src = """
define float @f(float %a, float %b) {
entry:
  %r = fadd float %a, %b
  ret float %r
}
"""
        result, _ = run_src(src, "f", [0.1, 0.2])
        f32_result = struct.unpack("<f", struct.pack("<f", 0.1 + 0.2))[0]
        # 0.1 and 0.2 are passed as doubles; machine rounds the sum to f32.
        assert result == struct.unpack(
            "<f", struct.pack("<f", 0.30000000000000004)
        )[0]

    def test_icmp_signed_vs_unsigned(self):
        src = """
define i1 @s(i32 %a, i32 %b) {
entry:
  %r = icmp slt i32 %a, %b
  ret i1 %r
}

define i1 @u(i32 %a, i32 %b) {
entry:
  %r = icmp ult i32 %a, %b
  ret i1 %r
}
"""
        m = parse_module(src)
        assert run_function(m, "s", [-1, 0])[0] == 1
        assert run_function(m, "u", [-1, 0])[0] == 0

    def test_fcmp_unordered(self):
        src = """
define i1 @f(double %a) {
entry:
  %r = fcmp olt double %a, 1.0
  ret i1 %r
}
"""
        assert run_src(src, "f", [float("nan")])[0] == 0


class TestCasts:
    def test_int_casts(self):
        src = """
define i64 @f(i8 %x) {
entry:
  %s = sext i8 %x to i64
  ret i64 %s
}

define i64 @g(i8 %x) {
entry:
  %z = zext i8 %x to i64
  ret i64 %z
}

define i8 @h(i64 %x) {
entry:
  %t = trunc i64 %x to i8
  ret i8 %t
}
"""
        m = parse_module(src)
        assert run_function(m, "f", [-1])[0] == -1
        assert run_function(m, "g", [-1])[0] == 255
        assert run_function(m, "h", [0x1FF])[0] == -1

    def test_bitcast_float_int(self):
        src = """
define i32 @f(float %x) {
entry:
  %b = bitcast float %x to i32
  ret i32 %b
}
"""
        result, _ = run_src(src, "f", [1.0])
        assert result == struct.unpack("<i", struct.pack("<f", 1.0))[0]


class TestMemory:
    def test_store_load_roundtrip_all_widths(self):
        src = """
define void @f(i8* %p8, i16* %p16, i32* %p32, i64* %p64) {
entry:
  store i8 -5, i8* %p8
  store i16 -300, i16* %p16
  store i32 123456, i32* %p32
  store i64 -9999999999, i64* %p64
  ret void
}
"""
        m = parse_module(src)
        mach = Machine(m)
        addrs = [mach.alloc(8) for _ in range(4)]
        mach.call(m.get_function("f"), addrs)
        assert mach.read_value(addrs[0], I8) == -5
        assert mach.read_value(addrs[1], I16) == -300
        assert mach.read_value(addrs[2], I32) == 123456
        assert mach.read_value(addrs[3], I64) == -9999999999

    def test_float_memory(self):
        src = """
define void @f(float* %p, double* %q) {
entry:
  store float 1.25, float* %p
  store double 2.5, double* %q
  ret void
}
"""
        m = parse_module(src)
        mach = Machine(m)
        p, q = mach.alloc(4), mach.alloc(8)
        mach.call(m.get_function("f"), [p, q])
        assert mach.read_value(p, F32) == 1.25
        assert mach.read_value(q, F64) == 2.5

    def test_global_initializers(self):
        src = """
@A = global [3 x i32] [i32 10, i32 20, i32 30]
@S = global i32 42

define i32 @f() {
entry:
  %p = getelementptr [3 x i32], [3 x i32]* @A, i64 0, i64 1
  %v = load i32, i32* %p
  %s = load i32, i32* @S
  %r = add i32 %v, %s
  ret i32 %r
}
"""
        assert run_src(src, "f")[0] == 62

    def test_struct_gep_offsets(self):
        src = """
%struct.mixed = type { i8, i32, i64 }

@M = global %struct.mixed zeroinitializer

define void @f() {
entry:
  %p0 = getelementptr %struct.mixed, %struct.mixed* @M, i64 0, i64 0
  store i8 1, i8* %p0
  %p1 = getelementptr %struct.mixed, %struct.mixed* @M, i64 0, i64 1
  store i32 2, i32* %p1
  %p2 = getelementptr %struct.mixed, %struct.mixed* @M, i64 0, i64 2
  store i64 3, i64* %p2
  ret void
}
"""
        _, mach = run_src(src, "f")
        raw = mach.global_contents()["M"]
        assert raw[0] == 1
        assert struct.unpack_from("<i", raw, 4)[0] == 2
        assert struct.unpack_from("<q", raw, 8)[0] == 3

    def test_null_deref_traps(self):
        src = """
define i32 @f(i32* %p) {
entry:
  %v = load i32, i32* %p
  ret i32 %v
}
"""
        with pytest.raises(TrapError):
            run_src(src, "f", [0])

    def test_alloca_distinct(self):
        src = """
define i32 @f() {
entry:
  %a = alloca i32
  %b = alloca i32
  store i32 1, i32* %a
  store i32 2, i32* %b
  %va = load i32, i32* %a
  %vb = load i32, i32* %b
  %r = add i32 %va, %vb
  ret i32 %r
}
"""
        assert run_src(src, "f")[0] == 3


class TestControlFlowAndCalls:
    def test_phi_loop(self):
        src = """
define i32 @tri(i32 %n) {
entry:
  br label %loop

loop:
  %i = phi i32 [ 1, %entry ], [ %in, %loop ]
  %acc = phi i32 [ 0, %entry ], [ %an, %loop ]
  %an = add i32 %acc, %i
  %in = add i32 %i, 1
  %c = icmp sle i32 %in, %n
  br i1 %c, label %loop, label %out

out:
  ret i32 %an
}
"""
        assert run_src(src, "tri", [10])[0] == 55

    def test_phi_swap_is_atomic(self):
        # Classic parallel-copy hazard: both phis must read pre-update
        # values.
        src = """
define i32 @f(i32 %n) {
entry:
  br label %loop

loop:
  %a = phi i32 [ 0, %entry ], [ %b, %loop ]
  %b = phi i32 [ 1, %entry ], [ %a, %loop ]
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %in = add i32 %i, 1
  %c = icmp slt i32 %in, %n
  br i1 %c, label %loop, label %out

out:
  ret i32 %a
}
"""
        # After k iterations a == k % 2 alternates between 0 and 1.
        assert run_src(src, "f", [1])[0] == 0
        assert run_src(src, "f", [2])[0] == 1
        assert run_src(src, "f", [3])[0] == 0

    def test_direct_recursion(self):
        src = """
define i32 @fact(i32 %n) {
entry:
  %base = icmp sle i32 %n, 1
  br i1 %base, label %ret1, label %rec

ret1:
  ret i32 1

rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fact(i32 %n1)
  %m = mul i32 %n, %r
  ret i32 %m
}
"""
        assert run_src(src, "fact", [6])[0] == 720

    def test_extern_trace_and_handler(self):
        src = """
declare i32 @ext(i32)

define i32 @f() {
entry:
  %a = call i32 @ext(i32 1)
  %b = call i32 @ext(i32 2)
  %r = add i32 %a, %b
  ret i32 %r
}
"""
        result, mach = run_src(
            src, "f", externs={"ext": lambda m, args: args[0] * 10}
        )
        assert result == 30
        assert mach.extern_trace == [("ext", (1,)), ("ext", (2,))]

    def test_extern_default_deterministic(self):
        src = """
declare i32 @mystery(i32)

define i32 @f(i32 %x) {
entry:
  %r = call i32 @mystery(i32 %x)
  ret i32 %r
}
"""
        m = parse_module(src)
        r1, _ = run_function(m, "f", [5])
        r2, _ = run_function(m, "f", [5])
        assert r1 == r2

    def test_step_limit(self):
        src = """
define void @spin() {
entry:
  br label %loop

loop:
  br label %loop
}
"""
        m = parse_module(src)
        with pytest.raises(StepLimitExceeded):
            run_function(m, "spin", step_limit=1000)

    def test_step_counting(self):
        src = """
define i32 @f() {
entry:
  %a = add i32 1, 2
  %b = add i32 %a, 3
  ret i32 %b
}
"""
        _, mach = run_src(src, "f")
        assert mach.steps == 3  # two adds + ret

    def test_nested_calls(self):
        src = """
define i32 @inner(i32 %x) {
entry:
  %r = add i32 %x, 100
  ret i32 %r
}

define i32 @outer(i32 %x) {
entry:
  %a = call i32 @inner(i32 %x)
  %b = call i32 @inner(i32 %a)
  ret i32 %b
}
"""
        assert run_src(src, "outer", [1])[0] == 201
