"""Tests for the experiment harness and the stride-split joint path."""

import pytest

from tests.helpers import execute, ints_to_bytes

from repro.bench import run_tsvc_experiment, tsvc
from repro.bench.harness import TsvcKernelResult
from repro.ir import parse_module, verify_module
from repro.rolag import RolagStats, roll_loops_in_function


class TestHarnessDataclasses:
    def test_kernel_result_reductions(self):
        r = TsvcKernelResult(
            name="k", base_size=100, llvm_size=80, rolag_size=60,
            oracle_size=50, llvm_rolled=1, rolag_rolled=1,
            steps_base=100, steps_rolag=200,
        )
        assert r.llvm_reduction == 20.0
        assert r.rolag_reduction == 40.0
        assert r.oracle_reduction == 50.0
        assert r.performance_ratio == 0.5

    def test_performance_ratio_without_dynamic(self):
        r = TsvcKernelResult("k", 10, 10, 10, 10, 0, 0)
        assert r.performance_ratio == 1.0

    def test_experiment_on_subset(self):
        exp = run_tsvc_experiment(kernels=["s000", "s276"])
        assert len(exp.results) == 2
        by_name = {r.name: r for r in exp.results}
        assert by_name["s000"].rolag_rolled == 1
        assert by_name["s276"].rolag_rolled == 0  # conditional body

    def test_suite_has_exactly_151_kernels(self):
        # Matching the paper's TSVC population.
        assert len(tsvc.kernel_names()) == 151


class TestStrideSplitJoint:
    def _two_patterns_per_iteration(self):
        """Stores to one array alternating between two shapes."""
        lines = ["define void @f(i32* %p, i32* %q) {", "entry:"]
        for i in range(4):
            # Pattern A: p[2i] = q[i] + 5
            lines.append(f"  %qa{i} = getelementptr i32, i32* %q, i64 {i}")
            lines.append(f"  %va{i} = load i32, i32* %qa{i}")
            lines.append(f"  %sa{i} = add i32 %va{i}, 5")
            lines.append(f"  %pa{i} = getelementptr i32, i32* %p, i64 {2 * i}")
            lines.append(f"  store i32 %sa{i}, i32* %pa{i}")
            # Pattern B: p[2i+1] = q[i] * 3
            lines.append(f"  %vb{i} = load i32, i32* %qa{i}")
            lines.append(f"  %sb{i} = mul i32 %vb{i}, 3")
            lines.append(
                f"  %pb{i} = getelementptr i32, i32* %p, i64 {2 * i + 1}"
            )
            lines.append(f"  store i32 %sb{i}, i32* %pb{i}")
        lines += ["  ret void", "}"]
        return "\n".join(lines)

    def test_even_odd_split_rolls(self):
        src = self._two_patterns_per_iteration()
        module = parse_module(src)
        stats = RolagStats()
        rolled = roll_loops_in_function(
            module.get_function("f"), stats=stats
        )
        verify_module(module)
        assert rolled == 1
        assert stats.node_counts.get("joint", 0) == 1

        before = execute(
            parse_module(src), "f",
            buffer_specs=[ints_to_bytes([0] * 8), ints_to_bytes([4, 5, 6, 7])],
        )
        after = execute(
            module, "f",
            buffer_specs=[ints_to_bytes([0] * 8), ints_to_bytes([4, 5, 6, 7])],
        )
        assert before.same_behaviour(after), before.explain_difference(after)

    def test_s222_improved_by_split(self):
        from repro.bench.objsize import function_size
        from repro.rolag import RolagConfig, roll_loops_in_module

        base = tsvc.build_unrolled_kernel("s222")
        base_size = function_size(base.get_function("s222"))
        module = tsvc.build_unrolled_kernel("s222")
        rolled = roll_loops_in_module(
            module, config=RolagConfig(fast_math=True)
        )
        verify_module(module)
        assert rolled >= 2  # the split a-group plus the e-group
        assert function_size(module.get_function("s222")) < base_size * 0.6
