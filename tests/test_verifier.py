"""Negative tests: the verifier must catch corrupted IR."""

import pytest

from repro.ir import (
    BinaryOp,
    Br,
    ConstantInt,
    F32,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Load,
    Module,
    Phi,
    Ret,
    Store,
    VOID,
    VerificationError,
    parse_module,
    ptr,
    verify_blocks,
    verify_function,
    verify_module,
)


def make_fn(ret=VOID, params=()):
    module = Module()
    fn = module.add_function("f", FunctionType(ret, list(params)))
    block = fn.add_block("entry")
    return module, fn, block


class TestStructural:
    def test_missing_terminator(self):
        module, fn, block = make_fn()
        builder = IRBuilder(block)
        builder.add(builder.i32(1), builder.i32(2))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(fn)

    def test_terminator_mid_block(self):
        module, fn, block = make_fn(ret=I32)
        block.append(Ret(ConstantInt(I32, 1)))
        builder = IRBuilder(block)
        block.append(BinaryOp("add", ConstantInt(I32, 1), ConstantInt(I32, 2)))
        block.append(Ret(ConstantInt(I32, 3)))
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_phi_not_at_start(self):
        module, fn, block = make_fn()
        builder = IRBuilder(block)
        x = builder.add(builder.i32(1), builder.i32(2))
        phi = Phi(I32)
        phi.add_incoming(x, block)
        block.append(phi)
        builder.ret()
        with pytest.raises(VerificationError, match="phi"):
            verify_function(fn)

    def test_wrong_parent(self):
        module, fn, block = make_fn()
        builder = IRBuilder(block)
        x = builder.add(builder.i32(1), builder.i32(2))
        builder.ret()
        x.parent = None  # corrupt
        with pytest.raises(VerificationError):
            verify_function(fn)


class TestSSADominance:
    def test_use_before_def_same_block(self):
        module, fn, block = make_fn(ret=I32)
        a = BinaryOp("add", ConstantInt(I32, 1), ConstantInt(I32, 2))
        b = BinaryOp("add", a, ConstantInt(I32, 3))
        block.append(b)  # user first!
        block.append(a)
        block.append(Ret(b))
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(fn)

    def test_use_across_non_dominating_blocks(self):
        module, fn, entry = make_fn(ret=I32, params=[I32])
        left = fn.add_block("left")
        right = fn.add_block("right")
        merge = fn.add_block("merge")
        b = IRBuilder(entry)
        cond = b.icmp("sgt", fn.arguments[0], b.i32(0))
        b.cond_br(cond, left, right)
        bl = IRBuilder(left)
        x = bl.add(fn.arguments[0], bl.i32(1))
        bl.br(merge)
        br_ = IRBuilder(right)
        br_.br(merge)
        bm = IRBuilder(merge)
        bm.ret(x)  # x does not dominate merge
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(fn)

    def test_phi_fixes_the_above(self):
        module, fn, entry = make_fn(ret=I32, params=[I32])
        left = fn.add_block("left")
        right = fn.add_block("right")
        merge = fn.add_block("merge")
        b = IRBuilder(entry)
        cond = b.icmp("sgt", fn.arguments[0], b.i32(0))
        b.cond_br(cond, left, right)
        bl = IRBuilder(left)
        x = bl.add(fn.arguments[0], bl.i32(1))
        bl.br(merge)
        br_ = IRBuilder(right)
        br_.br(merge)
        phi = Phi(I32)
        phi.add_incoming(x, left)
        phi.add_incoming(ConstantInt(I32, 0), right)
        merge.insert(0, phi)
        IRBuilder(merge).ret(phi)
        verify_function(fn)  # must not raise

    def test_phi_missing_incoming(self):
        module, fn, entry = make_fn()
        loop = fn.add_block("loop")
        IRBuilder(entry).br(loop)
        phi = Phi(I32)
        phi.add_incoming(ConstantInt(I32, 0), entry)
        loop.append(phi)
        builder = IRBuilder(loop)
        builder.br(loop)  # loop is its own pred but phi lacks that edge
        with pytest.raises(VerificationError, match="missing incoming"):
            verify_function(fn)

    def test_phi_duplicate_incoming(self):
        module, fn, entry = make_fn(ret=I32)
        exit_block = fn.add_block("exit")
        IRBuilder(entry).br(exit_block)
        phi = Phi(I32)
        phi.add_incoming(ConstantInt(I32, 1), entry)
        phi.add_incoming(ConstantInt(I32, 2), entry)  # same edge twice
        exit_block.append(phi)
        IRBuilder(exit_block).ret(phi)
        with pytest.raises(VerificationError, match="expected exactly one"):
            verify_function(fn)

    def test_detached_operand(self):
        module, fn, block = make_fn(ret=I32)
        builder = IRBuilder(block)
        a = builder.add(builder.i32(1), builder.i32(2))
        b = builder.add(a, builder.i32(3))
        builder.ret(b)
        # Detach a from the block but leave b's reference dangling.
        block.instructions.remove(a)
        a.parent = None
        with pytest.raises(VerificationError, match="detached"):
            verify_function(fn)


class TestTypeChecks:
    def test_store_type_mismatch(self):
        module, fn, block = make_fn(params=[ptr(I32)])
        store = Store(ConstantInt(I64, 1), fn.arguments[0])
        block.append(store)
        IRBuilder(block).ret()
        with pytest.raises(VerificationError, match="store type"):
            verify_function(fn)

    def test_binary_type_mismatch(self):
        module, fn, block = make_fn(ret=I32)
        bad = BinaryOp.__new__(BinaryOp)
        from repro.ir.instructions import Instruction

        Instruction.__init__(bad, I32)
        bad.opcode = "add"
        bad.add_operand(ConstantInt(I32, 1))
        bad.add_operand(ConstantInt(I64, 2))
        block.append(bad)
        block.append(Ret(bad))
        with pytest.raises(VerificationError, match="type mismatch"):
            verify_function(fn)

    def test_return_type_mismatch(self):
        module, fn, block = make_fn(ret=I32)
        block.append(Ret(ConstantInt(I64, 1)))
        with pytest.raises(VerificationError, match="ret type"):
            verify_function(fn)

    def test_void_function_returning_value(self):
        module, fn, block = make_fn(ret=VOID)
        block.append(Ret(ConstantInt(I32, 1)))
        with pytest.raises(VerificationError, match="ret with value"):
            verify_function(fn)

    def test_call_arity_mismatch(self):
        module = Module()
        callee = module.add_function("g", FunctionType(VOID, [I32, I32]))
        fn = module.add_function("f", FunctionType(VOID, []))
        block = fn.add_block("entry")
        from repro.ir import Call

        call = Call.__new__(Call)
        from repro.ir.instructions import Instruction

        Instruction.__init__(call, VOID)
        call.function_type = callee.function_type
        call.add_operand(callee)
        call.add_operand(ConstantInt(I32, 1))  # only one arg
        block.append(call)
        IRBuilder(block).ret()
        with pytest.raises(VerificationError, match="arity"):
            verify_function(fn)


class TestIncrementalVerify:
    """`verify_blocks` backs the transactional `fast` gate: it must
    see every error inside the touched set, and nothing else."""

    def _two_block_fn(self):
        module, fn, entry = make_fn(ret=I32, params=[I32])
        exit_block = fn.add_block("exit")
        IRBuilder(entry).br(exit_block)
        builder = IRBuilder(exit_block)
        x = builder.add(fn.arguments[0], builder.i32(1))
        builder.ret(x)
        return fn, entry, exit_block

    def test_catches_corruption_in_touched_block(self):
        fn, entry, exit_block = self._two_block_fn()
        insts = exit_block.instructions
        insts[0], insts[1] = insts[1], insts[0]  # use before def
        with pytest.raises(VerificationError):
            verify_blocks(fn, [exit_block])

    def test_untouched_blocks_are_not_rechecked(self):
        fn, entry, exit_block = self._two_block_fn()
        insts = exit_block.instructions
        insts[0], insts[1] = insts[1], insts[0]
        # Incremental contract: trusting the untouched set means a
        # corruption outside it goes unseen -- that is the `fast`
        # level's documented blind spot, not a bug.
        verify_blocks(fn, [entry])

    def test_foreign_blocks_are_skipped(self):
        fn, entry, exit_block = self._two_block_fn()
        module, other_fn, other_block = make_fn()
        verify_blocks(fn, [other_block])  # not ours: no-op, no crash

    def test_empty_selection_is_a_noop(self):
        fn, entry, exit_block = self._two_block_fn()
        verify_blocks(fn, [])


class TestUseListIntegrity:
    def test_broken_use_list_detected(self):
        module, fn, block = make_fn(ret=I32)
        builder = IRBuilder(block)
        a = builder.add(builder.i32(1), builder.i32(2))
        b = builder.add(a, builder.i32(3))
        builder.ret(b)
        # Corrupt: remove the use record without clearing the operand.
        a.uses = []
        with pytest.raises(VerificationError, match="use list"):
            verify_function(fn)
