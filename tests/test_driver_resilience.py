"""Resilience tests for the fault-tolerant corpus driver.

Every scenario is driven through ``repro.faultinject`` plans, so crash,
hang, and corruption behaviour is deterministic; injected hangs consume
virtual deadline seconds, so nothing here sleeps.  Pool-based scenarios
(worker death, watchdog kills) carry the ``parallel`` marker like the
rest of the pool suite.
"""

import json
import os

import pytest

from repro.bench import angha
from repro.driver import (
    FunctionJob,
    QuarantineList,
    optimize_functions,
    quarantine_key,
    run_one_guarded,
)
from repro.driver.core import _Failure
from repro.faultinject import FaultPlan, clear_plan
from repro.transforms.pass_manager import PassError, PassManager

pytestmark = pytest.mark.fault


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


def _jobs(count, seed=2022):
    return [
        FunctionJob(
            name=cs.name, c_source=cs.source, metadata=(("family", cs.family),)
        )
        for cs in angha.generate_sources(count=count, seed=seed)
    ]


class TestGuardedAttempt:
    def test_clean_job_returns_result(self):
        outcome = run_one_guarded(_jobs(1)[0])
        assert not isinstance(outcome, _Failure)
        assert outcome.optimized_ir

    def test_injected_crash_becomes_failure(self):
        job = _jobs(1)[0]
        plan = FaultPlan.parse("driver.worker.start:raise")
        from repro.faultinject import active_plan

        with active_plan(plan):
            outcome = run_one_guarded(job)
        assert isinstance(outcome, _Failure)
        assert outcome.kind == "crash"
        assert "InjectedFault" in outcome.message

    def test_injected_hang_becomes_timeout(self):
        job = _jobs(1)[0]
        plan = FaultPlan.parse("driver.worker.roll:hang")
        from repro.faultinject import active_plan

        with active_plan(plan):
            outcome = run_one_guarded(job, deadline=5.0)
        assert isinstance(outcome, _Failure)
        assert outcome.kind == "timeout"
        assert "deadline" in outcome.message


class TestSerialResilience:
    def test_crash_on_nth_degrades_only_that_job(self, tmp_path):
        jobs = _jobs(4)
        report = optimize_functions(
            jobs,
            workers=1,
            retries=0,
            retry_backoff=0.0,
            fault_plan="driver.worker.start:raise@3",
        )
        assert len(report.results) == len(jobs)
        failed = [r for r in report.results if r.failed]
        assert [r.name for r in failed] == [jobs[2].name]
        assert failed[0].error_kind == "crash"
        assert failed[0].optimized_ir == jobs[2].text
        assert report.stats.crashed == 1
        assert report.stats.failed == 1

    def test_hang_hits_deadline_virtually(self):
        jobs = _jobs(3)
        report = optimize_functions(
            jobs,
            workers=1,
            deadline=5.0,
            retries=0,
            retry_backoff=0.0,
            fault_plan="driver.worker.roll:hang@2",
        )
        failed = [r for r in report.results if r.failed]
        assert [r.name for r in failed] == [jobs[1].name]
        assert failed[0].error_kind == "timeout"
        assert report.stats.timed_out == 1
        # The 1e9-second stall was virtual: the run itself stayed fast.
        assert report.stats.wall_seconds < 30.0

    def test_retry_then_succeed(self):
        jobs = _jobs(3)
        # times=1: only the first attempt of job 2 fails.
        report = optimize_functions(
            jobs,
            workers=1,
            retries=1,
            retry_backoff=0.0,
            fault_plan="driver.worker.start:raise@2x1",
        )
        assert not any(r.failed for r in report.results)
        assert report.stats.retried == 1
        assert report.results[1].attempts == 2
        assert report.results[0].attempts == 1

    def test_retry_exhausted_quarantines(self, tmp_path):
        jobs = _jobs(3)
        qfile = tmp_path / "quarantine.json"
        report = optimize_functions(
            jobs,
            workers=1,
            retries=1,
            retry_backoff=0.0,
            quarantine_file=str(qfile),
            fault_plan="driver.worker.start:raise@2x2",
        )
        assert report.results[1].failed
        assert report.results[1].attempts == 2
        quarantine = QuarantineList(str(qfile))
        key = quarantine_key(jobs[1])
        assert quarantine.failures(key) == 2
        assert quarantine.is_quarantined(key)
        # The other jobs never failed and are not in the list.
        assert not quarantine.failures(quarantine_key(jobs[0]))

    def test_quarantine_skips_across_runs(self, tmp_path):
        jobs = _jobs(3)
        qfile = str(tmp_path / "quarantine.json")
        optimize_functions(
            jobs,
            workers=1,
            retries=1,
            retry_backoff=0.0,
            quarantine_file=qfile,
            fault_plan="driver.worker.start:raise@2x2",
        )
        # Second run: no faults at all, but job 2 is known bad.
        rerun = optimize_functions(
            jobs, workers=1, quarantine_file=qfile
        )
        assert rerun.stats.quarantined == 1
        result = rerun.results[1]
        assert result.error_kind == "quarantined"
        assert result.attempts == 0
        assert result.optimized_ir == jobs[1].text
        assert "quarantined after 2 failed attempt(s)" in result.error
        # The healthy jobs ran normally.
        assert not rerun.results[0].failed and not rerun.results[2].failed

    def test_quarantine_file_corruption_tolerated(self, tmp_path):
        qfile = tmp_path / "quarantine.json"
        qfile.write_bytes(b"{definitely not json")
        quarantine = QuarantineList(str(qfile))
        assert quarantine.corrupt_file
        assert len(quarantine) == 0
        quarantine.record_failure("k", "fn", "crash", "boom")
        quarantine.save()
        assert json.loads(qfile.read_text())["entries"]["k"]["failures"] == 1

    def test_error_results_never_cached(self, tmp_path):
        jobs = _jobs(2)
        cache_dir = str(tmp_path / "cache")
        first = optimize_functions(
            jobs,
            workers=1,
            cache_dir=cache_dir,
            retries=0,
            retry_backoff=0.0,
            fault_plan="driver.worker.start:raise@1x*",
        )
        assert all(r.failed for r in first.results)
        # Fault-free rerun with the same config string must recompute:
        # nothing was memoized for the failed jobs.
        rerun = optimize_functions(
            jobs,
            workers=1,
            cache_dir=cache_dir,
            fault_plan="unmatched.site:raise@999",
        )
        assert rerun.stats.cache_hits == 0
        assert not any(r.failed for r in rerun.results)


class TestCacheSelfHealing:
    def test_garbage_bytes_are_a_logged_miss(self, tmp_path):
        jobs = _jobs(2)
        cache_dir = str(tmp_path / "cache")
        first = optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        assert first.stats.cache_writes == 2

        # Regression: a truncated/garbage entry used to crash the read.
        from repro.driver.cache import job_key
        from repro.rolag import RolagConfig

        key = job_key(jobs[0], RolagConfig())
        path = os.path.join(cache_dir, key[:2], key + ".json")
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage{{{")

        warm = optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        assert warm.stats.cache_corrupt == 1
        assert warm.stats.cache_hits == 1
        assert warm.stats.cache_misses == 1
        assert not any(r.failed for r in warm.results)
        # The entry was rewritten: a third run is fully warm.
        third = optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        assert third.stats.cache_hits == 2
        assert third.stats.cache_corrupt == 0

    def test_truncated_entry_heals(self, tmp_path):
        jobs = _jobs(1)
        cache_dir = str(tmp_path / "cache")
        optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        from repro.driver.cache import job_key
        from repro.rolag import RolagConfig

        key = job_key(jobs[0], RolagConfig())
        path = os.path.join(cache_dir, key[:2], key + ".json")
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        warm = optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        assert warm.stats.cache_corrupt == 1
        assert not warm.results[0].failed

    def test_checksum_mismatch_is_corrupt(self, tmp_path):
        jobs = _jobs(1)
        cache_dir = str(tmp_path / "cache")
        optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        from repro.driver.cache import job_key
        from repro.rolag import RolagConfig

        key = job_key(jobs[0], RolagConfig())
        path = os.path.join(cache_dir, key[:2], key + ".json")
        envelope = json.loads(open(path).read())
        envelope["result"]["rolag_size"] = 12345  # silent bit-flip
        with open(path, "w") as fh:
            json.dump(envelope, fh)
        warm = optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        assert warm.stats.cache_corrupt == 1
        assert warm.results[0].rolag_size != 12345

    def test_injected_read_corruption_heals(self, tmp_path):
        jobs = _jobs(3)
        cache_dir = str(tmp_path / "cache")
        optimize_functions(jobs, workers=1, cache_dir=cache_dir)
        warm = optimize_functions(
            jobs,
            workers=1,
            cache_dir=cache_dir,
            fault_plan="cache.read:corrupt@2",
        )
        assert warm.stats.cache_corrupt == 1
        assert warm.stats.cache_hits == 2
        assert not any(r.failed for r in warm.results)

    def test_injected_write_failure_is_swallowed(self, tmp_path):
        jobs = _jobs(2)
        cache_dir = str(tmp_path / "cache")
        report = optimize_functions(
            jobs,
            workers=1,
            cache_dir=cache_dir,
            fault_plan="cache.write:raise@1x*",
        )
        assert not any(r.failed for r in report.results)
        assert report.stats.cache_write_errors == 2
        assert report.stats.cache_writes == 0


class TestPassErrorContext:
    def test_pass_error_names_pass_and_function(self):
        from repro.frontend import compile_c

        module = compile_c("int f(int x) { return x + 1; }")

        def bad_pass(fn):
            raise ZeroDivisionError("kaboom")

        pm = PassManager().add("badpass", bad_pass)
        with pytest.raises(PassError) as info:
            pm.run(module)
        assert info.value.pass_name == "badpass"
        assert info.value.function_name == "f"
        assert "badpass" in str(info.value) and "'f'" in str(info.value)

    def test_injected_pass_fault_wrapped_with_context(self):
        job = _jobs(1)[0]
        report = optimize_functions(
            [job],
            workers=1,
            retries=0,
            retry_backoff=0.0,
            fault_plan="pipeline.pass:raise",
        )
        result = report.results[0]
        assert result.failed and result.error_kind == "crash"
        assert "PassError" in result.error
        assert "pass" in result.error

    def test_rolag_crash_wrapped_with_function_context(self):
        job = _jobs(1)[0]
        report = optimize_functions(
            [job],
            workers=1,
            retries=0,
            retry_backoff=0.0,
            fault_plan="rolag.roll:raise",
        )
        result = report.results[0]
        assert result.failed and result.error_kind == "crash"
        assert "'rolag'" in result.error


class TestAcceptanceBatch:
    """The ISSUE acceptance scenario: a 20-function batch survives a
    plan injecting a crasher, a hang, and cache corruption."""

    def test_cold_run_with_crash_and_hang(self, tmp_path):
        jobs = _jobs(20)
        qfile = str(tmp_path / "quarantine.json")
        cache_dir = str(tmp_path / "cache")
        plan = "driver.worker.start:raise@5x2;driver.worker.roll:hang@12x1"
        report = optimize_functions(
            jobs,
            workers=1,
            cache_dir=cache_dir,
            deadline=5.0,
            retries=1,
            retry_backoff=0.0,
            quarantine_file=qfile,
            fault_plan=plan,
        )
        assert len(report.results) == 20

        # Job 5 (hits 5 and 6 of driver.worker.start) crashed twice.
        crashed = report.results[4]
        assert crashed.failed and crashed.error_kind == "crash"
        assert crashed.optimized_ir == jobs[4].text
        assert crashed.attempts == 2

        # The hang victim timed out once, then its retry succeeded.
        hung = report.results[12]
        assert not hung.failed
        assert hung.attempts == 2

        everyone_else = [
            r for i, r in enumerate(report.results) if i not in (4, 12)
        ]
        assert all(not r.failed and r.attempts == 1 for r in everyone_else)

        stats = report.stats
        assert stats.crashed == 1
        assert stats.timed_out == 0  # the timeout was retried away
        assert stats.retried == 2
        assert stats.failed == 1

        quarantine = QuarantineList(qfile)
        assert quarantine.is_quarantined(quarantine_key(jobs[4]))
        assert quarantine.failures(quarantine_key(jobs[12])) == 1

        # Warm rerun: corrupt one cached entry, and the crasher is now
        # quarantined instead of being retried.
        warm = optimize_functions(
            jobs,
            workers=1,
            cache_dir=cache_dir,
            deadline=5.0,
            retries=1,
            retry_backoff=0.0,
            quarantine_file=qfile,
            fault_plan="cache.read:corrupt@3",
        )
        assert len(warm.results) == 20
        assert warm.stats.cache_corrupt == 1
        assert warm.stats.cache_hits == 18
        assert warm.stats.quarantined == 1
        assert warm.results[4].error_kind == "quarantined"
        assert sum(1 for r in warm.results if r.failed) == 1


@pytest.mark.parallel
class TestPoolResilience:
    def test_pool_respawn_after_worker_death(self, tmp_path):
        jobs = _jobs(8)
        qfile = str(tmp_path / "quarantine.json")
        # Every worker hard-exits on its third job: the pool breaks,
        # in-flight jobs are requeued uncharged, and a respawned pool
        # finishes the batch.
        report = optimize_functions(
            jobs,
            workers=2,
            retries=1,
            retry_backoff=0.0,
            quarantine_file=qfile,
            max_pool_respawns=5,
            fault_plan="driver.worker.start:abort@3",
        )
        assert len(report.results) == 8
        assert not any(r.failed for r in report.results)
        assert report.stats.pool_respawns >= 1
        # Abrupt deaths are unattributable: nobody gets blamed.
        assert len(QuarantineList(qfile)) == 0

    def test_poison_pool_drains_to_structured_errors(self):
        jobs = _jobs(4)
        # Every worker dies on its *first* job: no pool can make
        # progress, so after the respawn budget the driver abandons the
        # leftovers as structured errors instead of deadlocking.
        report = optimize_functions(
            jobs,
            workers=2,
            retries=1,
            retry_backoff=0.0,
            max_pool_respawns=1,
            fault_plan="driver.worker.start:abort@1",
        )
        assert len(report.results) == 4
        assert all(r.failed for r in report.results)
        assert all(r.error_kind == "pool" for r in report.results)
        assert all(r.optimized_ir == job.text
                   for job, r in zip(jobs, report.results))
        assert report.stats.pool_respawns == 2
        assert report.stats.crashed == 4

    def test_noncooperative_hang_killed_by_watchdog(self):
        jobs = _jobs(4)
        # Each worker's first job stalls in a real (non-cooperative)
        # sleep far past the deadline; the parent watchdog kills the
        # pool and charges the hung jobs a timeout.
        report = optimize_functions(
            jobs,
            workers=2,
            deadline=0.3,
            retries=0,
            retry_backoff=0.0,
            max_pool_respawns=3,
            fault_plan="driver.worker.start:sleep~20",
        )
        assert len(report.results) == 4
        timeouts = [r for r in report.results if r.error_kind == "timeout"]
        assert timeouts
        assert report.stats.pool_respawns >= 1
        for r in timeouts:
            assert "deadline" in r.error

    def test_pool_crash_isolation(self):
        jobs = _jobs(6)
        # A plain raise inside a worker is contained by the guard --
        # the pool never even breaks.
        report = optimize_functions(
            jobs,
            workers=2,
            retries=0,
            retry_backoff=0.0,
            fault_plan="driver.worker.start:raise@2",
        )
        assert len(report.results) == 6
        # Each worker's second job fails (fresh per-process counters),
        # so between one and two jobs degrade; the rest are clean.
        failed = [r for r in report.results if r.failed]
        assert 1 <= len(failed) <= 2
        assert all(r.error_kind == "crash" for r in failed)
        assert report.stats.crashed == len(failed)


class TestLatencyStats:
    """The service-stats plumbing the serve daemon reports from."""

    def test_percentile_nearest_rank(self):
        from repro.driver import percentile

        samples = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert percentile(samples, 0.50) == 0.3
        assert percentile(samples, 0.99) == 0.5
        assert percentile([], 0.99) == 0.0
        assert percentile([7.0], 0.50) == 7.0

    def test_record_latency_rejects_garbage(self):
        from repro.driver import DriverStats

        stats = DriverStats()
        stats.record_latency(0.25)
        stats.record_latency(-1.0)       # negative: dropped
        stats.record_latency(float("nan"))
        stats.record_latency("bogus")
        assert stats.latency_seconds == [0.25]

    def test_serial_run_populates_latency(self):
        report = optimize_functions(_jobs(3), workers=1)
        assert len(report.stats.latency_seconds) == 3
        assert report.stats.latency_p50 > 0.0
        assert report.stats.latency_p99 >= report.stats.latency_p50


class TestDriverSessionResilience:
    """The incremental front end the serve daemon runs on."""

    def test_close_degrades_unpumped_work(self):
        from repro.driver import DriverSession

        session = DriverSession(workers=1, use_cache=False)
        jobs = _jobs(2)
        tickets = [session.submit(job) for job in jobs]
        session.close(drain=False)
        resolved = dict(session.collect(timeout=0.0))
        assert sorted(resolved) == sorted(tickets)
        for job, ticket in zip(jobs, tickets):
            result = resolved[ticket]
            assert result.failed and result.error_kind == "pool"
            assert result.optimized_ir == job.text
        with pytest.raises(RuntimeError):
            session.submit(jobs[0])

    def test_session_restores_ambient_fault_plan(self):
        from repro.driver import DriverSession
        from repro.faultinject import get_active_plan

        assert get_active_plan() is None
        session = DriverSession(
            workers=1, use_cache=False,
            fault_plan="driver.worker.start:raise@1",
        )
        assert get_active_plan() is not None
        session.close()
        assert get_active_plan() is None

    def test_injected_crash_degrades_one_ticket(self):
        from repro.driver import DriverSession

        jobs = _jobs(3)
        with DriverSession(
            workers=1, use_cache=False, retries=0,
            fault_plan="driver.worker.start:raise@2x1",
        ) as session:
            tickets = [session.submit(job) for job in jobs]
            resolved = dict(session.drain())
        failed = [t for t in tickets if resolved[t].failed]
        assert len(failed) == 1
        assert resolved[failed[0]].error_kind == "crash"


@pytest.mark.parallel
class TestPoolCollectExceptionSafety:
    def test_exception_mid_collect_degrades_not_crashes(self, monkeypatch):
        # A bug (or signal) inside the collect loop must tear the pool
        # down, requeue the in-flight work, and degrade it through the
        # serial fallback -- never leak workers or lose the batch.
        # ``wait`` is imported at call time, so the stdlib attribute
        # is the seam.
        import concurrent.futures as cf

        real_wait = cf.wait
        calls = {"n": 0}

        def exploding_wait(fs, timeout=None, return_when=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected collect failure")
            return real_wait(fs, timeout=timeout, return_when=return_when)

        monkeypatch.setattr(cf, "wait", exploding_wait)
        jobs = _jobs(4)
        report = optimize_functions(
            jobs, workers=2, retries=0, serial_fallback=True,
            use_cache=False,
        )
        assert len(report.results) == 4
        # The serial fallback recomputed everything the broken collect
        # loop abandoned: the batch still succeeds end to end.
        assert not any(r.failed for r in report.results)

    def test_exception_mid_collect_without_fallback_is_structured(
        self, monkeypatch
    ):
        import concurrent.futures as cf

        def always_exploding_wait(fs, timeout=None, return_when=None):
            raise RuntimeError("injected collect failure")

        monkeypatch.setattr(cf, "wait", always_exploding_wait)
        jobs = _jobs(3)
        report = optimize_functions(
            jobs, workers=2, retries=0, serial_fallback=False,
            use_cache=False, max_pool_respawns=1,
        )
        assert len(report.results) == 3
        assert all(r.failed for r in report.results)
        assert all(r.error_kind == "pool" for r in report.results)
        # The pool error's cause is surfaced, not swallowed.
        assert any(
            "injected collect failure" in (r.error or "")
            for r in report.results
        )


class TestTerminatePoolWorkers:
    """Regression: pool teardown must SIGTERM worker *processes*.

    A precedence bug once made the kill loop iterate the executor's
    ``_processes`` dict KEYS (pids) instead of its values, so
    ``proc.terminate()`` raised AttributeError into a bare except and
    hung workers were never terminated.
    """

    class _FakeProc:
        def __init__(self):
            self.terminated = False

        def terminate(self):
            self.terminated = True

    def test_terminates_every_live_worker(self):
        from repro.driver.core import _terminate_pool_workers

        procs = {101: self._FakeProc(), 202: self._FakeProc()}

        class FakeExecutor:
            _processes = procs

        _terminate_pool_workers(FakeExecutor())
        assert all(p.terminated for p in procs.values())

    def test_tolerates_missing_processes_attr(self):
        from repro.driver.core import _terminate_pool_workers

        _terminate_pool_workers(object())  # no _processes: no-op

    def test_tolerates_terminate_raising(self):
        from repro.driver.core import _terminate_pool_workers

        class AngryProc:
            def terminate(self):
                raise OSError("already gone")

        ok = self._FakeProc()

        class FakeExecutor:
            _processes = {1: AngryProc(), 2: ok}

        _terminate_pool_workers(FakeExecutor())
        assert ok.terminated
