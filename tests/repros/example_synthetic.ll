; difftest mismatch repro
; origin: docs example (synthetic pass)
; function: @f
; guilty pass: synthetic-miscompile
; vector: (2)
; expected: ok result=6 steps=3
; actual (after synthetic-miscompile): ok result=9 steps=3
; detail: result 6 != 9
; note: minimized: use-free instruction shaving
; note: example only: produced by a deliberately broken pass, not a real miscompile
;
; IR entering the guilty pass:

define i32 @f(i32 %a) {
entry:
  %t = add i32 %a, 1
  %u = mul i32 %t, 2
  ret i32 %u
}
