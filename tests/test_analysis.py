"""Tests for dominators, alias analysis, dependences, loops, cost model."""

import pytest

from repro.analysis import (
    AliasAnalysis,
    AliasResult,
    CodeSizeCostModel,
    DependenceGraph,
    DominatorTree,
    constant_offset,
    find_loops,
    match_counted_loop,
    reverse_postorder,
    underlying_object,
)
from repro.ir import parse_module, parse_function


DIAMOND = """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %left, label %right

left:
  br label %merge

right:
  br label %merge

merge:
  %x = phi i32 [ 1, %left ], [ 2, %right ]
  ret i32 %x
}
"""


class TestDominators:
    def test_diamond(self):
        fn = parse_function(DIAMOND)
        dom = DominatorTree(fn)
        blocks = {b.name: b for b in fn.blocks}
        assert dom.idom[blocks["merge"]] is blocks["entry"]
        assert dom.idom[blocks["left"]] is blocks["entry"]
        assert dom.dominates_block(blocks["entry"], blocks["merge"])
        assert not dom.dominates_block(blocks["left"], blocks["merge"])
        assert dom.dominates_block(blocks["merge"], blocks["merge"])

    def test_loop_idoms(self):
        fn = parse_function(
            """
define void @f(i32 %n) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %in, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit

body:
  br label %latch

latch:
  %in = add i32 %i, 1
  br label %header

exit:
  ret void
}
"""
        )
        dom = DominatorTree(fn)
        blocks = {b.name: b for b in fn.blocks}
        assert dom.idom[blocks["latch"]] is blocks["body"]
        assert dom.idom[blocks["exit"]] is blocks["header"]
        frontiers = dom.dominance_frontiers()
        assert blocks["header"] in frontiers[blocks["latch"]]
        assert blocks["header"] in frontiers[blocks["header"]]

    def test_unreachable_block(self):
        fn = parse_function(
            """
define void @f() {
entry:
  ret void

island:
  br label %island
}
"""
        )
        dom = DominatorTree(fn)
        blocks = {b.name: b for b in fn.blocks}
        assert not dom.is_reachable(blocks["island"])
        assert dom.is_reachable(blocks["entry"])

    def test_instruction_dominance_same_block(self):
        fn = parse_function(
            """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = add i32 %a, 2
  ret i32 %b
}
"""
        )
        dom = DominatorTree(fn)
        a, b, ret = fn.entry.instructions
        assert dom.dominates(a, b)
        assert not dom.dominates(b, a)

    def test_reverse_postorder_starts_at_entry(self):
        fn = parse_function(DIAMOND)
        order = reverse_postorder(fn)
        assert order[0] is fn.entry
        assert len(order) == 4


class TestAliasAnalysis:
    def test_distinct_globals_no_alias(self):
        m = parse_module(
            """
@A = global [4 x i32] zeroinitializer
@B = global [4 x i32] zeroinitializer

define void @f() {
entry:
  %pa = getelementptr [4 x i32], [4 x i32]* @A, i64 0, i64 0
  %pb = getelementptr [4 x i32], [4 x i32]* @B, i64 0, i64 0
  store i32 1, i32* %pa
  store i32 2, i32* %pb
  ret void
}
"""
        )
        fn = m.get_function("f")
        aa = AliasAnalysis(fn)
        pa, pb = fn.entry.instructions[0], fn.entry.instructions[1]
        assert aa.alias(pa, 4, pb, 4) is AliasResult.NO

    def test_same_base_disjoint_offsets(self):
        fn = parse_function(
            """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p0
  store i32 2, i32* %p1
  ret void
}
"""
        )
        aa = AliasAnalysis(fn)
        p0, p1 = fn.entry.instructions[0], fn.entry.instructions[1]
        assert aa.alias(p0, 4, p1, 4) is AliasResult.NO
        assert aa.alias(p0, 8, p1, 4) is AliasResult.MAY  # overlapping ranges
        assert aa.alias(p0, 4, p0, 4) is AliasResult.MUST

    def test_two_arguments_may_alias(self):
        fn = parse_function(
            """
define void @f(i32* %p, i32* %q) {
entry:
  store i32 1, i32* %p
  store i32 2, i32* %q
  ret void
}
"""
        )
        aa = AliasAnalysis(fn)
        p, q = fn.arguments
        assert aa.alias(p, 4, q, 4) is AliasResult.MAY

    def test_nonescaped_alloca_vs_argument(self):
        fn = parse_function(
            """
define void @f(i32* %p) {
entry:
  %a = alloca i32
  store i32 1, i32* %a
  store i32 2, i32* %p
  ret void
}
"""
        )
        aa = AliasAnalysis(fn)
        alloca = fn.entry.instructions[0]
        assert aa.alias(alloca, 4, fn.arguments[0], 4) is AliasResult.NO

    def test_escaped_alloca_may_alias_loads(self):
        m = parse_module(
            """
declare void @sink(i32*)

define void @f(i32** %pp) {
entry:
  %a = alloca i32
  call void @sink(i32* %a)
  %loaded = load i32*, i32** %pp
  store i32 1, i32* %a
  store i32 2, i32* %loaded
  ret void
}
"""
        )
        fn = m.get_function("f")
        aa = AliasAnalysis(fn)
        alloca = fn.entry.instructions[0]
        loaded = fn.entry.instructions[2]
        assert aa.alias(alloca, 4, loaded, 4) is AliasResult.MAY

    def test_underlying_object_strips_gep_chain(self):
        fn = parse_function(
            """
define void @f(i8* %p) {
entry:
  %g1 = getelementptr i8, i8* %p, i64 4
  %g2 = getelementptr i8, i8* %g1, i64 4
  store i8 0, i8* %g2
  ret void
}
"""
        )
        g2 = fn.entry.instructions[1]
        assert underlying_object(g2) is fn.arguments[0]
        assert constant_offset(g2) == 8

    def test_constant_offset_through_struct(self):
        m = parse_module(
            """
%struct.s = type { i32, i64, i32 }

define void @f(%struct.s* %p) {
entry:
  %g = getelementptr %struct.s, %struct.s* %p, i64 0, i64 2
  store i32 0, i32* %g
  ret void
}
"""
        )
        fn = m.get_function("f")
        g = fn.entry.instructions[0]
        assert constant_offset(g) == 16

    def test_variable_offset_unknown(self):
        fn = parse_function(
            """
define void @f(i32* %p, i64 %i) {
entry:
  %g = getelementptr i32, i32* %p, i64 %i
  store i32 0, i32* %g
  ret void
}
"""
        )
        g = fn.entry.instructions[0]
        assert constant_offset(g) is None
        aa = AliasAnalysis(fn)
        assert aa.alias(g, 4, fn.arguments[0], 4) is AliasResult.MAY


class TestDependenceGraph:
    def test_def_use_edges(self):
        fn = parse_function(
            """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  ret i32 %b
}
"""
        )
        dg = DependenceGraph(fn.entry, AliasAnalysis(fn))
        a, b, ret = fn.entry.instructions
        assert dg.must_precede(a, b)
        assert dg.must_precede(b, ret)

    def test_store_store_same_location_ordered(self):
        fn = parse_function(
            """
define void @f(i32* %p) {
entry:
  store i32 1, i32* %p
  store i32 2, i32* %p
  ret void
}
"""
        )
        dg = DependenceGraph(fn.entry, AliasAnalysis(fn))
        s1, s2, _ = fn.entry.instructions
        assert dg.must_precede(s1, s2)

    def test_disjoint_stores_unordered(self):
        fn = parse_function(
            """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p0
  store i32 2, i32* %p1
  ret void
}
"""
        )
        insts = fn.entry.instructions
        dg = DependenceGraph(fn.entry, AliasAnalysis(fn))
        assert not dg.must_precede(insts[2], insts[3])

    def test_call_orders_with_everything(self):
        m = parse_module(
            """
declare void @opaque()

define void @f(i32* %p) {
entry:
  store i32 1, i32* %p
  call void @opaque()
  %v = load i32, i32* %p
  ret void
}
"""
        )
        fn = m.get_function("f")
        dg = DependenceGraph(fn.entry, AliasAnalysis(fn))
        store, call, load, _ = fn.entry.instructions
        assert dg.must_precede(store, call)
        assert dg.must_precede(call, load)

    def test_readnone_call_floats(self):
        m = parse_module(
            """
declare i32 @pure(i32) readnone

define void @f(i32* %p) {
entry:
  store i32 1, i32* %p
  %v = call i32 @pure(i32 0)
  ret void
}
"""
        )
        fn = m.get_function("f")
        dg = DependenceGraph(fn.entry, AliasAnalysis(fn))
        store, call, _ = fn.entry.instructions
        assert not dg.must_precede(store, call)

    def test_respects(self):
        fn = parse_function(
            """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  ret i32 %b
}
"""
        )
        dg = DependenceGraph(fn.entry, AliasAnalysis(fn))
        a, b, ret = fn.entry.instructions
        assert dg.respects([a, b, ret])
        assert not dg.respects([b, a, ret])

    def test_transitive_predecessors(self):
        fn = parse_function(
            """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = add i32 %b, 3
  ret i32 %c
}
"""
        )
        dg = DependenceGraph(fn.entry, AliasAnalysis(fn))
        a, b, c, ret = fn.entry.instructions
        preds = dg.transitive_predecessors([c])
        assert preds == {0, 1}


class TestLoopInfo:
    SINGLE = """
define void @f(i32 %n) {
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %in = add i32 %i, 1
  %c = icmp slt i32 %in, %n
  br i1 %c, label %loop, label %exit

exit:
  ret void
}
"""

    def test_find_single_block_loop(self):
        fn = parse_function(self.SINGLE)
        loops = find_loops(fn)
        assert len(loops) == 1
        assert loops[0].is_single_block

    def test_counted_loop_matching(self):
        fn = parse_function(self.SINGLE)
        counted = match_counted_loop(find_loops(fn)[0])
        assert counted is not None
        assert counted.step == 1
        assert counted.iv.name == "i"
        assert counted.exit.name == "exit"
        assert counted.trip_count() is None  # bound is an argument

    def test_static_trip_count(self):
        src = self.SINGLE.replace("%n", "24").replace("define void @f(i32 24)",
                                                      "define void @f()")
        fn = parse_function(src)
        counted = match_counted_loop(find_loops(fn)[0])
        assert counted is not None
        assert counted.trip_count() == 24

    def test_step_and_decrement(self):
        fn = parse_function(
            """
define void @f() {
entry:
  br label %loop

loop:
  %i = phi i32 [ 20, %entry ], [ %in, %loop ]
  %in = sub i32 %i, 2
  %c = icmp sgt i32 %in, 0
  br i1 %c, label %loop, label %exit

exit:
  ret void
}
"""
        )
        counted = match_counted_loop(find_loops(fn)[0])
        assert counted is not None
        assert counted.step == -2
        assert counted.trip_count() == 10

    def test_multi_block_loop_not_counted(self):
        fn = parse_function(
            """
define void @f(i32 %n) {
entry:
  br label %header

header:
  %i = phi i32 [ 0, %entry ], [ %in, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %latch, label %exit

latch:
  %in = add i32 %i, 1
  br label %header

exit:
  ret void
}
"""
        )
        loops = find_loops(fn)
        assert len(loops) == 1
        assert not loops[0].is_single_block
        assert match_counted_loop(loops[0]) is None


class TestCostModel:
    def test_basic_costs_positive(self):
        fn = parse_function(
            """
define i32 @f(i32 %x, i32* %p) {
entry:
  %a = add i32 %x, 1
  store i32 %a, i32* %p
  %v = load i32, i32* %p
  ret i32 %v
}
"""
        )
        cm = CodeSizeCostModel()
        total = cm.function_cost(fn)
        assert total > 0
        costs = [cm.instruction_cost(i) for i in fn.entry.instructions]
        assert all(c >= 0 for c in costs)

    def test_gep_folding(self):
        fn = parse_function(
            """
define i32 @f(i32* %p) {
entry:
  %g = getelementptr i32, i32* %p, i64 1
  %v = load i32, i32* %g
  ret i32 %v
}
"""
        )
        cm = CodeSizeCostModel()
        gep = fn.entry.instructions[0]
        assert cm.instruction_cost(gep) == 0  # folds into the load

    def test_gep_with_value_use_not_folded(self):
        fn = parse_function(
            """
define i32* @f(i32* %p) {
entry:
  %g = getelementptr i32, i32* %p, i64 1
  ret i32* %g
}
"""
        )
        cm = CodeSizeCostModel()
        gep = fn.entry.instructions[0]
        assert cm.instruction_cost(gep) > 0

    def test_declaration_costs_nothing(self):
        m = parse_module("declare void @x()")
        cm = CodeSizeCostModel()
        assert cm.function_cost(m.get_function("x")) == 0
        assert cm.module_text_size(m) == 0

    def test_global_data_size(self):
        m = parse_module("@A = global [10 x i32] zeroinitializer\n")
        cm = CodeSizeCostModel()
        assert cm.module_data_size(m) == 40

    def test_table_is_perturbable(self):
        fn = parse_function(
            """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  ret i32 %a
}
"""
        )
        cm = CodeSizeCostModel()
        base = cm.function_cost(fn)
        cm.table["add"] += 10
        assert cm.function_cost(fn) == base + 10
