"""Tests for the unroller and the LLVM-style reroll baseline.

The key property (paper Fig. 1): unroll(k) followed by reroll recovers
the original loop structure, and both steps preserve semantics.
"""

import pytest

from tests.helpers import assert_transform_preserves, execute, ints_to_bytes

from repro.analysis import find_loops, match_counted_loop
from repro.ir import parse_module, verify_module
from repro.transforms import (
    RerollStats,
    reroll_loops,
    unroll_loops,
)


INIT_LOOP = """
@A = global [24 x i32] zeroinitializer

define void @f(i32 %factor) {
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %m = mul i32 %factor, %i
  %p = getelementptr [24 x i32], [24 x i32]* @A, i64 0, i32 %i
  store i32 %m, i32* %p
  %in = add i32 %i, 1
  %c = icmp slt i32 %in, 24
  br i1 %c, label %loop, label %exit

exit:
  ret void
}
"""

REDUCTION_LOOP = """
@B = global [16 x i32] [i32 3, i32 1, i32 4, i32 1, i32 5, i32 9, i32 2, i32 6, i32 5, i32 3, i32 5, i32 8, i32 9, i32 7, i32 9, i32 3]

define i32 @f() {
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %acc = phi i32 [ 0, %entry ], [ %an, %loop ]
  %p = getelementptr [16 x i32], [16 x i32]* @B, i64 0, i32 %i
  %v = load i32, i32* %p
  %an = add i32 %acc, %v
  %in = add i32 %i, 1
  %c = icmp slt i32 %in, 16
  br i1 %c, label %loop, label %exit

exit:
  ret i32 %an
}
"""


class TestUnroll:
    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    def test_unroll_preserves_semantics(self, factor):
        def transform(m):
            return unroll_loops(m.get_function("f"), factor)

        count, module = assert_transform_preserves(
            INIT_LOOP, transform, "f", [7]
        )
        assert count == 1

    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_unroll_reduction(self, factor):
        def transform(m):
            return unroll_loops(m.get_function("f"), factor)

        count, module = assert_transform_preserves(REDUCTION_LOOP, transform, "f")
        assert count == 1

    def test_unrolled_body_size(self):
        m = parse_module(INIT_LOOP)
        unroll_loops(m.get_function("f"), 4)
        loop = [b for b in m.get_function("f").blocks if b.name == "loop"][0]
        stores = [i for i in loop.instructions if i.opcode == "store"]
        assert len(stores) == 4

    def test_non_dividing_factor_refused(self):
        m = parse_module(INIT_LOOP)  # trip count 24
        assert unroll_loops(m.get_function("f"), 5) == 0
        verify_module(m)

    def test_unknown_trip_count_refused(self):
        src = INIT_LOOP.replace("icmp slt i32 %in, 24", "icmp slt i32 %in, %factor")
        m = parse_module(src)
        assert unroll_loops(m.get_function("f"), 2) == 0

    def test_latch_constant_scaled(self):
        m = parse_module(INIT_LOOP)
        unroll_loops(m.get_function("f"), 3)
        counted = match_counted_loop(find_loops(m.get_function("f"))[0])
        assert counted is not None
        assert counted.step == 3


class TestReroll:
    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    def test_roundtrip_init_loop(self, factor):
        m = parse_module(INIT_LOOP)
        fn = m.get_function("f")
        assert unroll_loops(fn, factor) == 1
        verify_module(m)

        def transform(module):
            return reroll_loops(module.get_function("f"))

        text_before = None
        count, module = assert_transform_preserves(
            __import__("repro.ir", fromlist=["print_module"]).print_module(m),
            transform,
            "f",
            [7],
        )
        assert count == 1
        counted = match_counted_loop(find_loops(module.get_function("f"))[0])
        assert counted is not None
        assert counted.step == 1

    @pytest.mark.parametrize("factor", [2, 4])
    def test_roundtrip_reduction(self, factor):
        from repro.ir import print_module

        m = parse_module(REDUCTION_LOOP)
        fn = m.get_function("f")
        assert unroll_loops(fn, factor) == 1

        def transform(module):
            return reroll_loops(module.get_function("f"))

        count, module = assert_transform_preserves(
            print_module(m), transform, "f"
        )
        assert count == 1

    def test_rolled_loop_not_touched(self):
        m = parse_module(INIT_LOOP)
        stats = RerollStats()
        assert reroll_loops(m.get_function("f"), stats) == 0
        assert stats.attempted == 1
        verify_module(m)

    def test_straight_line_code_not_handled(self):
        # The baseline's core limitation: no loop, no reroll.
        src = """
define void @f(i32* %p) {
entry:
  %p0 = getelementptr i32, i32* %p, i64 0
  store i32 1, i32* %p0
  %p1 = getelementptr i32, i32* %p, i64 1
  store i32 1, i32* %p1
  %p2 = getelementptr i32, i32* %p, i64 2
  store i32 1, i32* %p2
  ret void
}
"""
        m = parse_module(src)
        assert reroll_loops(m.get_function("f")) == 0

    def test_imperfect_unroll_rejected(self):
        # One of the "iterations" differs: exact matching must refuse.
        src = """
@A = global [8 x i32] zeroinitializer

define void @f() {
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %p0 = getelementptr [8 x i32], [8 x i32]* @A, i64 0, i32 %i
  store i32 1, i32* %p0
  %i1 = add i32 %i, 1
  %p1 = getelementptr [8 x i32], [8 x i32]* @A, i64 0, i32 %i1
  store i32 2, i32* %p1
  %in = add i32 %i, 2
  %c = icmp slt i32 %in, 8
  br i1 %c, label %loop, label %exit

exit:
  ret void
}
"""
        m = parse_module(src)
        assert reroll_loops(m.get_function("f")) == 0
        verify_module(m)

    def test_partial_coverage_rejected(self):
        # An extra instruction outside any iteration blocks rerolling.
        src = """
@A = global [8 x i32] zeroinitializer
@S = global i32 0

define void @f() {
entry:
  br label %loop

loop:
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %p0 = getelementptr [8 x i32], [8 x i32]* @A, i64 0, i32 %i
  store i32 1, i32* %p0
  %i1 = add i32 %i, 1
  %p1 = getelementptr [8 x i32], [8 x i32]* @A, i64 0, i32 %i1
  store i32 1, i32* %p1
  store i32 7, i32* @S
  %in = add i32 %i, 2
  %c = icmp slt i32 %in, 8
  br i1 %c, label %loop, label %exit

exit:
  ret void
}
"""
        m = parse_module(src)
        assert reroll_loops(m.get_function("f")) == 0

    def test_reroll_shrinks_code(self):
        from repro.analysis import CodeSizeCostModel

        m = parse_module(INIT_LOOP)
        fn = m.get_function("f")
        unroll_loops(fn, 8)
        cm = CodeSizeCostModel()
        before = cm.function_cost(fn)
        assert reroll_loops(fn) == 1
        after = cm.function_cost(fn)
        assert after < before
