"""Parser/printer round-trip and error handling tests."""

import pytest

from repro.ir import (
    ParseError,
    parse_function,
    parse_module,
    print_function,
    print_module,
    verify_module,
)


GOOD_MODULES = [
    # Simple arithmetic.
    """
define i32 @add1(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
""",
    # All binary ops.
    """
define i32 @ops(i32 %a, i32 %b) {
entry:
  %t1 = add i32 %a, %b
  %t2 = sub i32 %t1, %b
  %t3 = mul i32 %t2, %b
  %t4 = sdiv i32 %t3, %b
  %t5 = udiv i32 %t4, %b
  %t6 = srem i32 %t5, %b
  %t7 = urem i32 %t6, %b
  %t8 = and i32 %t7, %b
  %t9 = or i32 %t8, %b
  %t10 = xor i32 %t9, %b
  %t11 = shl i32 %t10, %b
  %t12 = lshr i32 %t11, %b
  %t13 = ashr i32 %t12, %b
  ret i32 %t13
}
""",
    # Floats, casts, select, comparisons.
    """
define double @fops(double %x, float %y) {
entry:
  %w = fpext float %y to double
  %s = fadd double %x, %w
  %c = fcmp olt double %s, 1.5
  %r = select i1 %c, double %s, double %x
  %i = fptosi double %r to i32
  %b = sitofp i32 %i to double
  ret double %b
}
""",
    # Memory, globals, structs, geps.
    """
%struct.pair = type { i32, i64 }

@G = global [4 x i32] [i32 1, i32 2, i32 3, i32 4]

@P = global %struct.pair zeroinitializer

define i32 @use() {
entry:
  %p = getelementptr [4 x i32], [4 x i32]* @G, i64 0, i64 2
  %v = load i32, i32* %p
  %f = getelementptr %struct.pair, %struct.pair* @P, i64 0, i64 0
  store i32 %v, i32* %f
  ret i32 %v
}
""",
    # Control flow with phis.
    """
define i32 @count(i32 %n) {
entry:
  %start = icmp slt i32 0, %n
  br i1 %start, label %loop, label %done

loop:
  %i = phi i32 [ 0, %entry ], [ %next, %loop ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %loop, label %done

done:
  %r = phi i32 [ 0, %entry ], [ %next, %loop ]
  ret i32 %r
}
""",
    # Declarations, calls, void functions, attributes.
    """
declare i32 @ext(i32, i32) readnone

declare void @sink(i8*)

define void @caller(i8* %p) {
entry:
  %r = call i32 @ext(i32 1, i32 2)
  call void @sink(i8* %p)
  ret void
}
""",
    # Allocas, i8/i16 types, undef/null.
    """
define i16 @small(i8 %x) {
entry:
  %slot = alloca i16
  %ext = sext i8 %x to i16
  store i16 %ext, i16* %slot
  %v = load i16, i16* %slot
  ret i16 %v
}
""",
]


class TestRoundTrip:
    @pytest.mark.parametrize("source", GOOD_MODULES)
    def test_parse_print_fixpoint(self, source):
        m1 = parse_module(source)
        verify_module(m1)
        text1 = print_module(m1)
        m2 = parse_module(text1)
        verify_module(m2)
        text2 = print_module(m2)
        assert text1 == text2

    def test_forward_function_reference(self):
        m = parse_module(
            """
define i32 @caller() {
entry:
  %r = call i32 @callee(i32 7)
  ret i32 %r
}

define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}
"""
        )
        verify_module(m)
        call = m.get_function("caller").entry.instructions[0]
        assert call.callee is m.get_function("callee")

    def test_forward_value_reference_in_phi(self):
        m = parse_module(
            """
define i32 @f() {
entry:
  br label %loop

loop:
  %x = phi i32 [ 0, %entry ], [ %y, %loop ]
  %y = add i32 %x, 1
  %c = icmp slt i32 %y, 5
  br i1 %c, label %loop, label %out

out:
  ret i32 %y
}
"""
        )
        verify_module(m)

    def test_comments_ignored(self):
        m = parse_module(
            """
; a comment
define void @f() { ; trailing
entry:
  ret void ; done
}
"""
        )
        verify_module(m)

    def test_external_global(self):
        m = parse_module("@x = external global i32\n")
        assert m.get_global("x").initializer is None


class TestParseErrors:
    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_module("define void @f() {\nentry:\n  frobnicate\n}")

    def test_unknown_type(self):
        with pytest.raises(ParseError):
            parse_module("define wibble @f() {\nentry:\n  ret void\n}")

    def test_unresolved_reference(self):
        with pytest.raises(ParseError):
            parse_module(
                "define i32 @f() {\nentry:\n  ret i32 %nope\n}"
            )

    def test_redefinition(self):
        with pytest.raises(ParseError):
            parse_module(
                """
define void @f() {
entry:
  %x = add i32 1, 2
  %x = add i32 3, 4
  ret void
}
"""
            )

    def test_unknown_callee(self):
        with pytest.raises(ParseError):
            parse_module(
                "define void @f() {\nentry:\n  call void @nothere()\n  ret void\n}"
            )

    def test_parse_function_requires_single_def(self):
        with pytest.raises(ValueError):
            parse_function("declare void @f()")


class TestPrinterDetails:
    def test_unnamed_values_get_names(self):
        from repro.ir import FunctionType, IRBuilder, Module, VOID, I32

        m = Module()
        fn = m.add_function("f", FunctionType(VOID, []))
        block = fn.add_block("entry")
        b = IRBuilder(block)
        x = b.add(b.i32(1), b.i32(2))
        x.name = ""
        b.ret()
        text = print_function(fn)
        assert "= add i32 1, 2" in text
        # And it stays parseable.
        parse_module(text)

    def test_duplicate_names_disambiguated(self):
        from repro.ir import FunctionType, IRBuilder, Module, VOID

        m = Module()
        fn = m.add_function("f", FunctionType(VOID, []))
        block = fn.add_block("entry")
        b = IRBuilder(block)
        x = b.add(b.i32(1), b.i32(2), name="v")
        y = b.add(b.i32(3), b.i32(4), name="v")
        b.ret()
        text = print_function(fn)
        m2 = parse_module(text)
        verify_module(m2)
