"""Scheduling analysis (paper Section IV-D, Fig. 13).

Loop rolling reorders the basic block into

    [preceding code + mismatch/invariant setup]
    [iteration 0 instructions] [iteration 1 instructions] ...
    [succeeding code]

which is legal iff every dependence edge of the original block still
points forward.  This module computes the iteration-ordered sequence of
claimed instructions from the alignment graph, partitions the remaining
instructions into *before* (transitively depended on by the loop) and
*after*, and then replays all dependence edges against the new order.
Cyclic dependences that cross the loop boundary have no valid placement
and are rejected by the same check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..analysis.alias import AliasAnalysis
from ..analysis.deps import DependenceGraph
from ..ir.instructions import Instruction, Phi
from ..ir.module import BasicBlock
from .alignment import (
    AlignmentGraph,
    AlignNode,
    BinOpNeutralNode,
    JointNode,
    MatchNode,
    MinMaxReductionNode,
    PtrSeqNode,
    RecurrenceNode,
    ReductionNode,
)


@dataclass
class Schedule:
    """A legal rearrangement of the block around the future loop."""

    block: BasicBlock
    #: Non-loop instructions that must run before the loop (block order).
    before: List[Instruction]
    #: Claimed instructions in iteration-major execution order.
    loop_order: List[Instruction]
    #: Per-lane instruction lists (lane-major view of ``loop_order``).
    lanes: List[List[Instruction]]
    #: Non-loop instructions that run after the loop (block order).
    after: List[Instruction]


def _iteration_order(ag: AlignmentGraph) -> Optional[List[List[Instruction]]]:
    """Claimed instructions per lane, operands before users.

    Mirrors the code generator's post-order emission so that the
    simulated order matches what will actually execute.
    """
    root = ag.roots[0] if ag.roots else None
    if root is None:
        return None

    lane_count = _lane_count(root)
    lanes: List[List[Instruction]] = [[] for _ in range(lane_count)]
    emitted: Set[int] = set()

    def emit(node: AlignNode, seen: Set[int]) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, RecurrenceNode):
            return  # breaks the cycle: lowered to a phi
        for child in node.children:
            emit(child, seen)
        if isinstance(node, MatchNode):
            for lane, inst in enumerate(node.lanes):
                if id(inst) not in emitted:
                    emitted.add(id(inst))
                    lanes[lane].append(inst)
        elif isinstance(node, BinOpNeutralNode):
            for lane, value in enumerate(node.lanes):
                claim = ag.claimed.get(id(value))
                if claim is not None and claim[0] is node:
                    if id(value) not in emitted:
                        emitted.add(id(value))
                        lanes[lane].append(value)
        elif isinstance(node, PtrSeqNode):
            # Claimed GEP chains, innermost first.
            by_lane: Dict[int, List[Instruction]] = {}
            for inst_id, (owner, lane) in ag.claimed.items():
                if owner is node:
                    inst = _find_inst(ag.block, inst_id)
                    if inst is not None:
                        by_lane.setdefault(lane, []).append(inst)
            index = {id(i): p for p, i in enumerate(ag.block.instructions)}
            for lane, insts in by_lane.items():
                for inst in sorted(insts, key=lambda i: index[id(i)]):
                    if id(inst) not in emitted:
                        emitted.add(id(inst))
                        lanes[lane].append(inst)
        elif isinstance(node, (ReductionNode, MinMaxReductionNode)):
            # The tree's internal ops are pure register arithmetic that
            # associativity lets us re-distribute one-per-iteration.
            # Model them conservatively in the *last* lane, in block
            # order: every leaf then precedes every accumulation and all
            # original internal-internal edges stay satisfied.
            index = {id(i): p for p, i in enumerate(ag.block.instructions)}
            ordered = sorted(node.internal, key=lambda i: index[id(i)])
            for inst in ordered:
                if id(inst) not in emitted:
                    emitted.add(id(inst))
                    lanes[lane_count - 1].append(inst)

    seen: Set[int] = set()
    emit(root, seen)
    # Within each lane, follow the original block order: the original
    # iteration already executed in a legal order, and the code
    # generator emits the loop body position-ordered to match (which is
    # what lets joint groups interleave, e.g. all loads of an iteration
    # before its stores).
    index = {id(i): p for p, i in enumerate(ag.block.instructions)}
    for lane in lanes:
        lane.sort(key=lambda i: index[id(i)])
    return lanes


def _lane_count(root: AlignNode) -> int:
    if isinstance(root, JointNode):
        return root.lane_count
    return root.lane_count


def _find_inst(block: BasicBlock, inst_id: int) -> Optional[Instruction]:
    for inst in block.instructions:
        if id(inst) == inst_id:
            return inst
    return None


def analyze_scheduling(
    ag: AlignmentGraph,
    aa: Optional[AliasAnalysis] = None,
    deps: Optional[DependenceGraph] = None,
) -> Optional[Schedule]:
    """Check whether the block can be reordered for rolling.

    Returns the schedule on success, ``None`` when any dependence would
    be violated (including cyclic dependences across the loop
    boundary).  ``deps`` may be supplied to reuse one dependence graph
    across several candidate seed groups of the same (unmodified)
    block.
    """
    block = ag.block
    fn = block.parent
    assert fn is not None
    if aa is None:
        aa = AliasAnalysis(fn)

    lanes = _iteration_order(ag)
    if lanes is None:
        return None
    loop_order: List[Instruction] = [inst for lane in lanes for inst in lane]
    loop_ids = {id(inst) for inst in loop_order}
    if len(loop_ids) != len(ag.claimed):
        return None  # some claimed instruction was not scheduled

    if deps is None:
        deps = DependenceGraph(block, aa)

    # Partition the rest: phis and transitive dependencies go before.
    depended = deps.transitive_predecessors(loop_order)
    before: List[Instruction] = []
    after: List[Instruction] = []
    for position, inst in enumerate(block.instructions):
        if id(inst) in loop_ids:
            continue
        if isinstance(inst, Phi):
            before.append(inst)
        elif inst.is_terminator:
            continue  # re-attached by the code generator
        elif position in depended:
            before.append(inst)
        else:
            after.append(inst)

    terminator = block.terminator
    new_order = before + loop_order + after
    if terminator is not None:
        new_order = new_order + [terminator]
    if not deps.respects(new_order):
        return None
    return Schedule(block, before, loop_order, lanes, after)
