"""Alignment-graph construction (the heart of RoLAG).

Starting from a group of seed instructions -- one per future loop
iteration, called *lanes* here -- the builder follows use-def chains
bottom-up and classifies each operand group into a node kind
(paper Sections IV-B and IV-C):

``MatchNode``
    isomorphic instructions, one per lane, merged into one loop
    instruction;
``IdenticalNode``
    the same loop-invariant value in every lane;
``SequenceNode``
    integer constants with a uniform stride, recomputed from the
    induction variable (IV-C1);
``PtrSeqNode``
    pointers at constant, uniformly-strided byte offsets from a common
    base -- subsumes the "neutral pointer operation" rule (IV-C2) and
    struct-as-array accesses (Fig. 4);
``BinOpNeutralNode``
    a dominant binary opcode with neutral-element filling for the
    other lanes (IV-C3);
``RecurrenceNode``
    a chained dependence turned into a loop-carried phi (IV-C4);
``ReductionNode``
    a reduction tree re-rolled through an accumulator (IV-C5);
``JointNode``
    alternating seed groups rolled into one loop (IV-C6);
``MismatchNode``
    anything else: per-lane values materialised through a memory array.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.instructions import (
    BinaryOp,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Phi,
    Store,
)
from ..ir.module import BasicBlock
from ..ir.types import DataLayout, DEFAULT_LAYOUT, IntType, PointerType, Type
from ..ir.values import Constant, ConstantFloat, ConstantInt, Value, neutral_element
from .config import RolagConfig


class AlignNode:
    """Base class of alignment-graph nodes."""

    kind: str = "<abstract>"

    def __init__(self, lanes: Sequence[Value]) -> None:
        self.lanes: List[Value] = list(lanes)
        self.children: List["AlignNode"] = []

    @property
    def lane_count(self) -> int:
        """Number of lanes, i.e. iterations of the rolled loop."""
        return len(self.lanes)

    def walk(self, seen=None):
        """All nodes reachable from this one (pre-order, deduplicated)."""
        if seen is None:
            seen = set()
        if id(self) in seen:
            return
        seen.add(id(self))
        yield self
        for child in self.children:
            yield from child.walk(seen)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} x{self.lane_count}>"


class MatchNode(AlignNode):
    """Isomorphic instructions, one per lane."""

    kind = "match"

    def __init__(self, lanes: Sequence[Instruction]) -> None:
        super().__init__(lanes)
        #: Per-lane operand order (after commutative reordering):
        #: operand_map[lane][slot] gives the operand to align in `slot`.
        self.operand_order: List[List[Value]] = [list(l.operands) for l in lanes]

    @property
    def rep(self) -> Instruction:
        """Lane 0's instruction: the template the loop body clones."""
        return self.lanes[0]


class IdenticalNode(AlignNode):
    """The same value in every lane (loop invariant)."""

    kind = "identical"

    @property
    def value(self) -> Value:
        """The shared loop-invariant value."""
        return self.lanes[0]


class SequenceNode(AlignNode):
    """Integer constants ``start, start+step, start+2*step, ...``."""

    kind = "sequence"

    def __init__(self, lanes: Sequence[ConstantInt], start: int, step: int) -> None:
        super().__init__(lanes)
        self.start = start
        self.step = step
        self.int_type: IntType = lanes[0].type


class MismatchNode(AlignNode):
    """Arbitrary per-lane values, loaded from an array at run time."""

    kind = "mismatch"

    @property
    def element_type(self) -> Type:
        """The common type of all lanes."""
        return self.lanes[0].type

    @property
    def all_constant(self) -> bool:
        """Whether the lanes can live in a constant table."""
        return all(isinstance(v, (ConstantInt, ConstantFloat)) for v in self.lanes)


class PtrSeqNode(AlignNode):
    """Pointers at strided constant byte offsets from a common base.

    Lanes are GEP instructions (claimed) or the base pointer itself
    (offset zero, the neutral pointer rule).
    """

    kind = "ptr_seq"

    def __init__(
        self,
        lanes: Sequence[Value],
        base: Value,
        start: int,
        step: int,
        result_type: PointerType,
    ) -> None:
        super().__init__(lanes)
        self.base = base
        self.start = start
        self.step = step
        self.result_type = result_type


class BinOpNeutralNode(AlignNode):
    """A dominant binary opcode; other lanes padded with the neutral."""

    kind = "binop_neutral"

    def __init__(
        self,
        lanes: Sequence[Value],
        opcode: str,
        lhs_group: Sequence[Value],
        rhs_group: Sequence[Value],
    ) -> None:
        super().__init__(lanes)
        self.opcode = opcode
        self.lhs_group = list(lhs_group)
        self.rhs_group = list(rhs_group)


class RecurrenceNode(AlignNode):
    """A chained dependence: lane k consumes lane k-1's value."""

    kind = "recurrence"

    def __init__(self, lanes: Sequence[Value], init: Value, target: "MatchNode") -> None:
        super().__init__(lanes)
        self.init = init
        self.target = target


class ReductionNode(AlignNode):
    """A reduction tree rolled via an accumulator phi.

    ``init`` is the accumulator's starting value.  It is ``None`` for a
    pure tree (the phi then starts at the opcode's neutral element) or
    a leaf that could not align with the others -- typically the
    running accumulator of an enclosing unrolled loop, or an ``a[0]``
    style seed value.
    """

    kind = "reduction"

    def __init__(
        self,
        root: BinaryOp,
        internal: Sequence[BinaryOp],
        leaves: Sequence[Value],
        init: Optional[Value] = None,
    ) -> None:
        super().__init__(leaves)
        self.root = root
        self.internal = list(internal)
        self.opcode = root.opcode
        self.init = init


class MinMaxReductionNode(AlignNode):
    """A min/max reduction over a compare+select chain (Fig. 20b).

    Each link is ``sel_k = select (cmp leaf_k, acc_{k-1}), ...`` picking
    either the new value or the running extreme.  Unlike associative
    binop reductions there is no neutral element, so the chain-start
    accumulator always becomes the phi's initial value.
    """

    kind = "minmax"

    def __init__(
        self,
        links: Sequence[Tuple[Instruction, Instruction]],
        leaves: Sequence[Value],
        init: Value,
        predicate: str,
        cmp_leaf_first: bool,
        select_leaf_first: bool,
    ) -> None:
        super().__init__(leaves)
        self.links = list(links)  # [(cmp, select), ...] chain order
        self.init = init
        self.predicate = predicate
        self.cmp_leaf_first = cmp_leaf_first
        self.select_leaf_first = select_leaf_first

    @property
    def root(self) -> Instruction:
        """The chain's final select (the reduction's value)."""
        return self.links[-1][1]

    @property
    def internal(self) -> List[Instruction]:
        """Every chain instruction (compares and selects)."""
        flat: List[Instruction] = []
        for cmp, sel in self.links:
            flat.append(cmp)
            flat.append(sel)
        return flat


class JointNode(AlignNode):
    """Alternating seed groups merged into one loop body."""

    kind = "joint"

    def __init__(self, lane_count: int) -> None:
        super().__init__([None] * lane_count)  # type: ignore[list-item]


def values_identical(a: Value, b: Value) -> bool:
    """Identity, or structural equality for simple constants."""
    if a is b:
        return True
    if isinstance(a, (ConstantInt, ConstantFloat)) and isinstance(
        b, (ConstantInt, ConstantFloat)
    ):
        return a == b
    return False


class AlignmentGraph:
    """Builds and owns the alignment graph for one seed group."""

    def __init__(
        self,
        block: BasicBlock,
        config: Optional[RolagConfig] = None,
        layout: DataLayout = DEFAULT_LAYOUT,
    ) -> None:
        self.block = block
        self.config = config or RolagConfig()
        self.layout = layout
        #: instruction id -> (node, lane) for every claimed instruction.
        self.claimed: Dict[int, Tuple[AlignNode, int]] = {}
        self.roots: List[AlignNode] = []
        self._memo: Dict[Tuple[int, ...], AlignNode] = {}
        self._stack: List[MatchNode] = []
        #: Memoized instruction fingerprints (see seeds.py); valid for
        #: this graph's lifetime -- instructions are only mutated later,
        #: by codegen, after the graph has been consumed.
        self._fp_cache: Dict[int, tuple] = {}
        self.valid = True

    # ----- public entry points ----------------------------------------------

    def build_from_seeds(self, seeds: Sequence[Instruction]) -> Optional[AlignNode]:
        """Build the graph from one group of seed instructions."""
        root = self._build(list(seeds))
        if not self.valid:
            return None
        if not isinstance(root, MatchNode):
            return None
        self.roots = [root]
        if not self._check_lane_consistency():
            return None
        return root

    def build_reduction(
        self, root: BinaryOp, internal: Sequence[BinaryOp], leaves: Sequence[Value]
    ) -> Optional[ReductionNode]:
        """Build the graph for a reduction tree (leaves become seeds).

        When the first leaf obviously cannot align with the rest (it is
        the running accumulator phi of an unrolled loop, or a seed
        value like ``a[0]``), it becomes the accumulator's initial
        value instead of a lane.
        """
        leaves = list(leaves)
        init: Optional[Value] = None
        if len(leaves) >= 3 and self._leaf_is_outlier(leaves):
            init = leaves[0]
            leaves = leaves[1:]
        if len(leaves) < 2:
            return None
        node = ReductionNode(root, internal, leaves, init)
        for inst in internal:
            if id(inst) in self.claimed:
                return None
            self.claimed[id(inst)] = (node, 0)
        child = self._build(leaves)
        if not self.valid:
            return None
        node.children = [child]
        self.roots = [node]
        if not self._check_lane_consistency():
            return None
        return node

    def build_minmax_reduction(
        self,
        links: Sequence[Tuple[Instruction, Instruction]],
        leaves: Sequence[Value],
        init: Value,
        predicate: str,
        cmp_leaf_first: bool,
        select_leaf_first: bool,
    ) -> Optional[MinMaxReductionNode]:
        """Build the graph for a compare+select min/max chain."""
        if len(leaves) < 2:
            return None
        node = MinMaxReductionNode(
            links, leaves, init, predicate, cmp_leaf_first, select_leaf_first
        )
        for inst in node.internal:
            if id(inst) in self.claimed:
                return None
            self.claimed[id(inst)] = (node, 0)
        child = self._build(list(leaves))
        if not self.valid:
            return None
        node.children = [child]
        self.roots = [node]
        if not self._check_lane_consistency():
            return None
        return node

    def _leaf_is_outlier(self, leaves: List[Value]) -> bool:
        """Whether ``leaves[0]`` clearly will not align with the rest."""
        rest = leaves[1:]
        first_rest = rest[0]
        if not isinstance(first_rest, Instruction):
            return False
        if not all(
            isinstance(v, Instruction)
            and v.parent is self.block
            and v.opcode == first_rest.opcode
            for v in rest
        ):
            return False
        head = leaves[0]
        if not isinstance(head, Instruction):
            return True
        return head.parent is not self.block or head.opcode != first_rest.opcode

    def build_joint(
        self, groups: Sequence[Sequence[Instruction]]
    ) -> Optional[JointNode]:
        """Build a joint graph over alternating seed groups."""
        lane_count = len(groups[0])
        joint = JointNode(lane_count)
        for group in groups:
            child = self._build(list(group))
            if not self.valid:
                return None
            if not isinstance(child, MatchNode):
                return None
            joint.children.append(child)
        self.roots = [joint]
        if not self._check_lane_consistency():
            return None
        return joint

    # ----- construction -------------------------------------------------------

    def _build(self, group: List[Value]) -> AlignNode:
        key = tuple(self._lane_key(v) for v in group)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        node = self._classify(group)
        self._memo[key] = node
        return node

    @staticmethod
    def _lane_key(value: Value) -> object:
        """Structural key for constants so equal groups share one node."""
        if isinstance(value, ConstantInt):
            return ("ci", value.type, value.value)
        if isinstance(value, ConstantFloat):
            return ("cf", value.type, value.value)
        return id(value)

    def _classify(self, group: List[Value]) -> AlignNode:
        first = group[0]

        # 1. Identical loop-invariant value in every lane.
        if all(values_identical(v, first) for v in group[1:]):
            # A value defined in this block *can* be identical (a shared
            # subexpression); it then stays outside the loop.
            return IdenticalNode(group)

        # 2. Monotonic integer sequences (IV-C1).
        seq = self._try_sequence(group)
        if seq is not None:
            return seq

        # 3. Chained dependences (IV-C4).
        rec = self._try_recurrence(group)
        if rec is not None:
            return rec

        # 4. Strided pointer offsets / neutral pointer ops (IV-C2).
        ptr = self._try_ptr_seq(group)
        if ptr is not None:
            return ptr

        # 5. Isomorphic instructions.
        match = self._try_match(group)
        if match is not None:
            return match

        # 6. Neutral elements of binary operators (IV-C3).
        neutral = self._try_binop_neutral(group)
        if neutral is not None:
            return neutral

        # 7. Give up: per-lane values via an array.  A mismatch array
        # needs one element type; heterogeneous groups poison the graph.
        ty = group[0].type
        if any(v.type is not ty for v in group[1:]) or ty.is_void:
            self.valid = False
        return MismatchNode(group)

    # ----- individual node matchers -------------------------------------------

    def _try_sequence(self, group: List[Value]) -> Optional[SequenceNode]:
        if not self.config.enable_sequences:
            return None
        if not all(isinstance(v, ConstantInt) for v in group):
            return None
        ty = group[0].type
        if any(v.type is not ty for v in group[1:]):
            return None
        values = [v.value for v in group]
        step = values[1] - values[0]
        if any(values[i] - values[i - 1] != step for i in range(2, len(values))):
            return None
        return SequenceNode(group, values[0], step)

    def _try_recurrence(self, group: List[Value]) -> Optional[RecurrenceNode]:
        if not self.config.enable_recurrence:
            return None
        n = len(group)
        for node in reversed(self._stack):
            if node.lane_count != n:
                continue
            if all(group[i + 1] is node.lanes[i] for i in range(n - 1)):
                init = group[0]
                # The init value must not itself be one of the node lanes.
                if any(init is lane for lane in node.lanes):
                    continue
                return RecurrenceNode(group, init, node)
        return None

    def _try_ptr_seq(self, group: List[Value]) -> Optional[PtrSeqNode]:
        if not self.config.enable_gep_neutral:
            return None
        if not group[0].type.is_pointer:
            return None
        from ..analysis.alias import constant_offset

        # Find the common base: strip constant-offset GEP chains.
        bases: List[Value] = []
        offsets: List[Optional[int]] = []
        for value in group:
            cursor = value
            offset = 0
            while isinstance(cursor, GetElementPtr) and cursor.parent is self.block:
                step = _gep_const_offset(cursor, self.layout)
                if step is None:
                    break
                offset += step
                cursor = cursor.pointer
            bases.append(cursor)
            offsets.append(offset)

        base = bases[0]
        if any(b is not base for b in bases[1:]):
            return None
        if any(off is None for off in offsets):
            return None
        # All-zero offsets means the group was identical anyway.
        concrete = [off for off in offsets]
        step = concrete[1] - concrete[0]
        if any(
            concrete[i] - concrete[i - 1] != step for i in range(2, len(concrete))
        ):
            return None
        if step == 0:
            return None
        result_type = group[0].type
        if any(v.type is not result_type for v in group[1:]):
            return None
        # Claim the GEP instructions that the node replaces.  A lane that
        # *is* the base pointer claims nothing (neutral pointer rule).
        # Intermediate GEPs in a chain are claimed too.
        to_claim: List[Tuple[Instruction, int]] = []
        group_ids = {id(v) for v in group}
        for lane, value in enumerate(group):
            cursor = value
            while cursor is not base:
                assert isinstance(cursor, GetElementPtr)
                to_claim.append((cursor, lane))
                if id(cursor) not in group_ids and len(cursor.uses) != 1:
                    # An intermediate GEP of the chain must feed only the
                    # chain; its value has no home in the rolled loop.
                    return None
                cursor = cursor.pointer
        claim_ids = set()
        for inst, _ in to_claim:
            if id(inst) in self.claimed or id(inst) in claim_ids:
                return None
            claim_ids.add(id(inst))
        node = PtrSeqNode(group, base, concrete[0], step, result_type)
        for inst, lane in to_claim:
            self.claimed[id(inst)] = (node, lane)
        return node

    def _match_shape_ok(self, group: List[Value]) -> bool:
        first = group[0]
        if not isinstance(first, Instruction):
            return False
        for value in group:
            if not isinstance(value, Instruction):
                return False
            if value.parent is not self.block:
                return False
            if id(value) in self.claimed:
                return False
        from ..ir.instructions import Alloca

        if isinstance(first, (Phi, Alloca)) or first.is_terminator:
            return False
        # One interned fingerprint per lane replaces the field-by-field
        # pairwise scan: equal fingerprints imply mergeable shapes.
        from .seeds import instruction_fingerprint

        first_fp = instruction_fingerprint(first, self._fp_cache)
        for value in group[1:]:
            if instruction_fingerprint(value, self._fp_cache) != first_fp:
                return False
        # Duplicate instructions across lanes cannot be merged.
        ids = {id(v) for v in group}
        if len(ids) != len(group):
            return False
        return True

    def _try_match(self, group: List[Value]) -> Optional[MatchNode]:
        if not self._match_shape_ok(group):
            return None
        first = group[0]

        # A GEP whose non-pointer indexing cannot be expressed with a
        # runtime index (struct field indices differ across lanes) must
        # not become a MatchNode; the PtrSeq path already tried.
        if isinstance(first, GetElementPtr):
            if not self._gep_indices_alignable(group):
                return None

        node = MatchNode(group)  # claim before recursing (cycles!)
        for lane, inst in enumerate(group):
            self.claimed[id(inst)] = (node, lane)

        if (
            isinstance(first, BinaryOp)
            and first.is_commutative
            and self.config.enable_commutative_reordering
        ):
            self._reorder_commutative(node)

        self._stack.append(node)
        try:
            for slot in range(len(first.operands)):
                operand_group = [node.operand_order[lane][slot] for lane in range(len(group))]
                child = self._build(operand_group)
                node.children.append(child)
        finally:
            self._stack.pop()
        return node

    def _gep_indices_alignable(self, group: List[Value]) -> bool:
        """Whether per-lane GEP indices may vary where they do vary."""
        first = group[0]
        num_indices = len(first.indices)
        ty: Type = first.source_type
        for slot in range(num_indices):
            lanes = [g.indices[slot] for g in group]
            varies = not all(values_identical(v, lanes[0]) for v in lanes[1:])
            if slot > 0:
                if ty.is_struct:
                    if varies:
                        return False  # struct indices must be constant
                    ty = ty.fields[lanes[0].value]
                    continue
                if ty.is_array:
                    ty = ty.element
                    continue
                return False
        return True

    def _reorder_commutative(self, node: MatchNode) -> None:
        """Per-lane operand swaps that maximise similarity to lane 0."""
        base_lhs, base_rhs = node.operand_order[0]
        for lane in range(1, node.lane_count):
            lhs, rhs = node.operand_order[lane]
            keep = _similarity(base_lhs, lhs) + _similarity(base_rhs, rhs)
            swap = _similarity(base_lhs, rhs) + _similarity(base_rhs, lhs)
            if swap > keep:
                node.operand_order[lane] = [rhs, lhs]

    def _try_binop_neutral(self, group: List[Value]) -> Optional[BinOpNeutralNode]:
        if not self.config.enable_binop_neutral:
            return None
        ty = group[0].type
        if any(v.type is not ty for v in group[1:]):
            return None
        candidates: Dict[str, int] = {}
        for value in group:
            if (
                isinstance(value, BinaryOp)
                and value.parent is self.block
                and id(value) not in self.claimed
            ):
                candidates[value.opcode] = candidates.get(value.opcode, 0) + 1
        best_opcode = None
        best_count = 0
        for opcode, count in candidates.items():
            if neutral_element(opcode, ty) is None:
                continue
            if opcode.startswith("f") and not self.config.fast_math:
                # x fop neutral is not bit-exact for all x (e.g. -0.0).
                continue
            if count > best_count:
                best_opcode, best_count = opcode, count
        if best_opcode is None or best_count < 2 or best_count == len(group):
            return None
        neutral = neutral_element(best_opcode, ty)
        assert neutral is not None

        lhs_group: List[Value] = []
        rhs_group: List[Value] = []
        matched: List[Tuple[Instruction, int]] = []
        matched_ids: set = set()
        for lane, value in enumerate(group):
            if (
                isinstance(value, BinaryOp)
                and value.opcode == best_opcode
                and value.parent is self.block
                and id(value) not in self.claimed
                and id(value) not in matched_ids
            ):
                lhs_group.append(value.operands[0])
                rhs_group.append(value.operands[1])
                matched.append((value, lane))
                matched_ids.add(id(value))
            else:
                # Mismatching lane: value  ==  value <op> neutral.
                lhs_group.append(value)
                rhs_group.append(neutral)

        node = BinOpNeutralNode(group, best_opcode, lhs_group, rhs_group)
        for inst, lane in matched:
            self.claimed[id(inst)] = (node, lane)
        self._stack.append(node)  # type: ignore[arg-type]
        try:
            node.children.append(self._build(lhs_group))
            node.children.append(self._build(rhs_group))
        finally:
            self._stack.pop()
        return node

    # ----- validation ------------------------------------------------------

    def _check_lane_consistency(self) -> bool:
        """Claimed instructions may only be used lane-consistently.

        A claimed instruction's value may be consumed (a) by another
        claimed instruction in the same lane, (b) by the lane+1 member
        of a recurrence target, or (c) outside the graph (external use,
        handled with extraction arrays).  Any other cross-lane use makes
        the rolled loop compute the wrong value.
        """
        recurrence_targets = {}
        for root in self.roots:
            for node in root.walk():
                if isinstance(node, RecurrenceNode):
                    recurrence_targets[id(node.target)] = node

        # Values consumed *outside* the loop body (mismatch arrays,
        # invariants, recurrence seeds, pointer bases) must not be
        # produced *inside* it.
        for root in self.roots:
            for node in root.walk():
                external_inputs: List[Value] = []
                if isinstance(node, (MismatchNode, IdenticalNode)):
                    external_inputs.extend(node.lanes)
                elif isinstance(node, PtrSeqNode):
                    external_inputs.append(node.base)
                elif isinstance(node, RecurrenceNode):
                    external_inputs.append(node.init)
                elif isinstance(node, ReductionNode) and node.init is not None:
                    external_inputs.append(node.init)
                elif isinstance(node, MinMaxReductionNode):
                    external_inputs.append(node.init)
                elif isinstance(node, BinOpNeutralNode):
                    pass  # its children cover the operand groups
                for value in external_inputs:
                    if id(value) in self.claimed:
                        return False

        for inst_id, (node, lane) in self.claimed.items():
            if isinstance(node, (ReductionNode, MinMaxReductionNode)):
                continue  # internal tree nodes checked separately
            inst = self._claimed_instruction(node, lane, inst_id)
            if inst is None:
                continue
            for use in inst.uses:
                user = use.user
                if not isinstance(user, Instruction):
                    return False
                claim = self.claimed.get(id(user))
                if claim is None:
                    continue  # external use
                user_node, user_lane = claim
                if user_lane == lane:
                    continue
                if (
                    user_lane == lane + 1
                    and id(user_node) in recurrence_targets
                ):
                    continue
                if isinstance(user_node, (ReductionNode, MinMaxReductionNode)):
                    continue
                return False
        return True

    def _claimed_instruction(
        self, node: AlignNode, lane: int, inst_id: int
    ) -> Optional[Instruction]:
        if isinstance(node, MatchNode):
            inst = node.lanes[lane]
            return inst if id(inst) == inst_id else self._find(inst_id)
        return self._find(inst_id)

    def _find(self, inst_id: int) -> Optional[Instruction]:
        for inst in self.block.instructions:
            if id(inst) == inst_id:
                return inst
        return None

    # ----- queries used by scheduling / codegen --------------------------------

    def claimed_instructions(self) -> List[Instruction]:
        """Claimed instructions, in block order."""
        return [
            inst for inst in self.block.instructions if id(inst) in self.claimed
        ]

    def node_histogram(self) -> Dict[str, int]:
        """Node-kind counts (for the Fig. 16 / Fig. 19 breakdowns)."""
        from collections import Counter

        counts: Counter = Counter()
        for root in self.roots:
            for node in root.walk():
                counts[node.kind] += 1
        return dict(counts)


def _gep_const_offset(gep: GetElementPtr, layout: DataLayout) -> Optional[int]:
    from ..analysis.alias import _gep_constant_offset

    return _gep_constant_offset(gep, layout)


def _similarity(a: Value, b: Value, depth: int = 2) -> int:
    """Alignment-likelihood score for a pair of candidate lane operands.

    Looks ``depth`` levels into the use-def chains, in the spirit of
    Look-Ahead SLP (which the paper's related-work section suggests
    adapting): two ``mul`` instructions whose own operands also align
    score higher than two ``mul`` of unrelated values, which lets the
    commutative reordering pick the profitable operand order even when
    both orders match at the top level.
    """
    if values_identical(a, b):
        return 8
    if isinstance(a, Instruction) and isinstance(b, Instruction):
        if a.opcode == b.opcode and a.type is b.type:
            score = 4
            if depth > 0 and len(a.operands) == len(b.operands):
                child = 0
                if (
                    isinstance(a, BinaryOp)
                    and a.is_commutative
                    and len(a.operands) == 2
                ):
                    straight = _similarity(
                        a.operands[0], b.operands[0], depth - 1
                    ) + _similarity(a.operands[1], b.operands[1], depth - 1)
                    swapped = _similarity(
                        a.operands[0], b.operands[1], depth - 1
                    ) + _similarity(a.operands[1], b.operands[0], depth - 1)
                    child = max(straight, swapped)
                else:
                    child = sum(
                        _similarity(x, y, depth - 1)
                        for x, y in zip(a.operands, b.operands)
                    )
                score += child // max(1, len(a.operands))
            return score
        return 1
    if isinstance(a, Constant) and isinstance(b, Constant):
        return 1
    return 0
