"""The RollLoop driver (paper Fig. 5).

For every basic block: collect seed groups, optionally join alternating
groups, build the alignment graph, run the scheduling analysis, decide
profitability against the code-size cost model, and generate the rolled
loop when it wins.  Newly created loop blocks are themselves skipped
(rolling a rolled loop again is never profitable and would not
terminate).

With ``config.validate`` on, every rolling decision is a transaction:
the function is snapshotted before each block visit, and the decision
only commits if the validation ladder (see ``repro.validation``)
accepts it.  A rejected decision is rolled back to best-known-good IR
and the worklist moves on -- degradation is per-decision, never
per-function.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Deque, List, Optional, Tuple

from ..analysis.alias import AliasAnalysis
from ..analysis.costmodel import CodeSizeCostModel
from ..analysis.deps import DependenceGraph
from ..faultinject import DeadlineExceeded, checkpoint, fire, fire_ir
from ..ir.module import BasicBlock, Function, Module
from .alignment import AlignmentGraph
from .codegen import RolledLoop, generate_rolled_loop
from .config import PHASE_NAMES, RolagConfig, RolagStats
from .profitability import estimate
from .scheduling import analyze_scheduling
from .seeds import SeedGroup, collect_seed_groups, find_joinable_groups


def roll_loops_in_function(
    fn: Function,
    config: Optional[RolagConfig] = None,
    cost_model: Optional[CodeSizeCostModel] = None,
    stats: Optional[RolagStats] = None,
    validator=None,
) -> int:
    """Run RoLAG over every block of ``fn``; returns rolled-loop count.

    ``validator`` (a :class:`repro.validation.Validator`) gates every
    rolling decision when given; with ``config.validate`` set and no
    validator, one is built from the config.
    """
    if fn.is_declaration:
        return 0
    config = config or RolagConfig()
    cost_model = cost_model or CodeSizeCostModel()
    stats = stats if stats is not None else RolagStats()
    if stats.timed:
        for phase in PHASE_NAMES:
            stats.phase_seconds.setdefault(phase, 0.0)
    if validator is None and config.validate != "off":
        validator = _validator_for(config)
    guard = validator if validator is not None and validator.level != "off" else None
    guard_start = len(guard.reports) if guard is not None else 0

    rolled = 0
    work: Deque[BasicBlock] = deque(fn.blocks)
    processed: set = set()
    while work:
        block = work.popleft()
        if id(block) in processed or block.parent is not fn:
            continue
        processed.add(id(block))
        # Block granularity is the pipeline's cooperative cancellation
        # point: a budgeted run bails out between blocks, never inside
        # a half-applied rewrite.
        checkpoint(f"rolag:{fn.name}:{block.name}")
        decision = f"rolag:{block.name}"
        snapshot = guard.begin(fn) if guard is not None else None
        try:
            fire("rolag.roll")
            result = _roll_block(block, config, cost_model, stats)
            fire_ir("rolag.roll.exit", fn)
        except DeadlineExceeded:
            raise
        except Exception as error:
            if snapshot is not None:
                # The decision becomes a rolled-back transaction; the
                # block stays in ``processed`` so the worklist moves on
                # from best-known-good IR.
                guard.rollback_exception(fn, snapshot, decision, error)
                continue
            from ..transforms.pass_manager import PassError

            if isinstance(error, PassError):
                raise
            raise PassError("rolag", fn.name, error) from error
        if snapshot is not None:
            report = guard.commit_or_rollback(
                fn, snapshot, decision, replay=_replay_for(config, cost_model)
            )
            if report is not None:
                continue  # rolled back: do not count or requeue anything
        if result is not None:
            rolled += 1
            # The preheader (same block object) may still hold seeds
            # ahead of the rolled region; the exit holds the tail.
            # Re-scan both, but never the new loop block.
            processed.add(id(result.loop))
            processed.discard(id(block))
            work.append(block)
            work.append(result.exit)
    if guard is not None:
        stats.guard_reports.extend(
            report.to_json_dict() for report in guard.reports[guard_start:]
        )
    return rolled


def _validator_for(config: RolagConfig):
    """Build the gate described by ``config`` (imported lazily: the
    validation package pulls in the difftest oracle, which must not
    become an import-time dependency of the rolling pipeline)."""
    from ..validation import Validator

    return Validator(
        config.validate,
        vectors=config.validate_vectors,
        step_limit=config.validate_step_limit,
        guard_dir=config.guard_dir,
        evaluator=config.validate_evaluator,
    )


def _replay_for(config: RolagConfig, cost_model: CodeSizeCostModel):
    """A deterministic function-pass replay of the rolling pipeline,
    used by the guard's repro minimizer (validation and fault firing
    disabled: the replay must reproduce the *pass's* behaviour)."""
    from dataclasses import replace

    quiet = replace(config, validate="off", fault_plan=None)

    def apply(target_fn: Function) -> int:
        return roll_loops_in_function(target_fn, quiet, cost_model)

    return apply


def _roll_block(
    block: BasicBlock,
    config: RolagConfig,
    cost_model: CodeSizeCostModel,
    stats: RolagStats,
) -> Optional[RolledLoop]:
    """Try to roll one loop out of ``block`` (first profitable group)."""
    fn = block.parent
    if fn is None:
        return None
    if config.profile is not None:
        count = config.profile.get((fn.name, block.name), 0)
        if count >= config.hot_block_threshold:
            return None  # hot block: size win not worth the slowdown
    timed = stats.timed
    start = perf_counter() if timed else 0.0
    groups = collect_seed_groups(block, config)
    if not groups:
        if timed:
            stats.add_phase_time("seeds", perf_counter() - start)
        return None

    joint_clusters: List[List[SeedGroup]] = []
    in_cluster: set = set()
    if config.enable_joint:
        joint_clusters = find_joinable_groups(block, groups)
        for cluster in joint_clusters:
            for member in cluster:
                in_cluster.add(id(member))
    if timed:
        stats.add_phase_time("seeds", perf_counter() - start)

    aa = AliasAnalysis(fn)
    deps = DependenceGraph(block, aa)

    candidates: List[Tuple[str, object]] = []
    for cluster in joint_clusters:
        candidates.append(("joint", cluster))
    for group in groups:
        if id(group) not in in_cluster:
            candidates.append((group.kind, group))

    for kind, payload in candidates:
        result = _try_candidate(
            block, kind, payload, config, cost_model, stats, aa, deps
        )
        if result is not None:
            return result

    return None


def _try_candidate(
    block: BasicBlock,
    kind: str,
    payload,
    config: RolagConfig,
    cost_model: CodeSizeCostModel,
    stats: RolagStats,
    aa: AliasAnalysis,
    deps: DependenceGraph,
) -> Optional[RolledLoop]:
    attempt = _attempt(
        block, kind, payload, config, cost_model, stats, aa, deps
    )
    if attempt is not None:
        return attempt
    if not config.try_subgroups:
        return None
    if kind in ("store", "call") and isinstance(payload, SeedGroup):
        insts = payload.instructions
        # A group holding two alternating sub-patterns (two stores to
        # the same array per source iteration, e.g. TSVC s222): split
        # into the even/odd interleaved subsequences and roll them as a
        # joint group.
        if config.enable_joint and len(insts) >= 2 * config.min_lanes:
            if len(insts) % 2 == 0:
                evens = SeedGroup(kind, list(insts[0::2]))
                odds = SeedGroup(kind, list(insts[1::2]))
                result = _attempt(
                    block, "joint", [evens, odds], config, cost_model,
                    stats, aa, deps,
                )
                if result is not None:
                    return result
        # Retry on contiguous halves.
        if len(insts) >= 2 * config.min_lanes:
            mid = len(insts) // 2
            for half in (insts[:mid], insts[mid:]):
                if len(half) < config.min_lanes:
                    continue
                sub = SeedGroup(kind, list(half))
                result = _try_candidate(
                    block, kind, sub, config, cost_model, stats, aa, deps
                )
                if result is not None:
                    return result
    return None


def _attempt(
    block: BasicBlock,
    kind: str,
    payload,
    config: RolagConfig,
    cost_model: CodeSizeCostModel,
    stats: RolagStats,
    aa: AliasAnalysis,
    deps: DependenceGraph,
) -> Optional[RolledLoop]:
    timed = stats.timed
    start = perf_counter() if timed else 0.0
    ag = AlignmentGraph(block, config)
    if kind == "joint":
        root = ag.build_joint([g.instructions for g in payload])
    elif kind == "reduction":
        group: SeedGroup = payload
        root = ag.build_reduction(
            group.reduction_root,
            group.reduction_internal,
            group.reduction_leaves,
        )
    elif kind == "minmax":
        group = payload
        root = ag.build_minmax_reduction(
            group.minmax_links,
            group.reduction_leaves,
            group.minmax_init,
            group.minmax_predicate,
            group.minmax_cmp_leaf_first,
            group.minmax_select_leaf_first,
        )
    else:
        group = payload
        root = ag.build_from_seeds(group.instructions)
    if timed:
        stats.add_phase_time("alignment", perf_counter() - start)
    if root is None:
        return None

    stats.attempted += 1
    start = perf_counter() if timed else 0.0
    schedule = analyze_scheduling(ag, aa, deps)
    if timed:
        stats.add_phase_time("scheduling", perf_counter() - start)
    if schedule is None:
        stats.schedule_rejected += 1
        return None

    report = estimate(ag, cost_model, config)

    if config.loop_aware:
        # In-place rerolling deletes lanes 1..n-1 outright, so it is
        # profitable whenever it applies; try it before the general
        # (new inner loop) code generator.
        from .loopaware import try_loop_aware_reroll

        start = perf_counter() if timed else 0.0
        removed = try_loop_aware_reroll(ag)
        if timed:
            stats.add_phase_time("codegen", perf_counter() - start)
        if removed is not None:
            stats.rolled += 1
            stats.node_counts.update(ag.node_histogram())
            fn_name = block.parent.name if block.parent else "?"
            stats.savings.append((fn_name, max(report.estimated_saving, 0)))
            return RolledLoop(
                preheader=block,
                loop=block,
                exit=block,
                lane_count=ag.roots[0].lane_count,
            )

    if not report.profitable:
        stats.unprofitable += 1
        return None

    start = perf_counter() if timed else 0.0
    result = generate_rolled_loop(ag, schedule)
    if timed:
        stats.add_phase_time("codegen", perf_counter() - start)
    stats.rolled += 1
    stats.node_counts.update(ag.node_histogram())
    fn_name = block.parent.name if block.parent else "?"
    stats.savings.append((fn_name, report.estimated_saving))
    return result


def roll_loops_in_module(
    module: Module,
    config: Optional[RolagConfig] = None,
    cost_model: Optional[CodeSizeCostModel] = None,
    stats: Optional[RolagStats] = None,
    validator=None,
) -> int:
    """Run RoLAG over every function in ``module``."""
    config = config or RolagConfig()
    if validator is None and config.validate != "off":
        validator = _validator_for(config)
    total = 0
    for fn in module.functions:
        total += roll_loops_in_function(
            fn, config, cost_model, stats, validator=validator
        )
    return total
