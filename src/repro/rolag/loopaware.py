"""Loop-aware rolling (the paper's Section V-C improvement).

When RoLAG's seed block *is itself the body of a counted loop* that was
partially unrolled, generating a fresh inner loop leaves the outer loop
control in place -- the paper notes LLVM's reroller wins those
head-to-heads because "it reuses the same loop for rerolling while
RoLAG currently creates a new inner loop [...] or simply making it loop
aware" would fix it.  This module is that fix: when the alignment graph
proves the block's lanes are exactly the unrolled iterations of the
surrounding loop, the loop is re-rolled *in place* -- lane 0 stays, the
other lanes are deleted, and the latch step shrinks -- instead of
nesting a new loop.

Applicability is deliberately narrow (mirroring what in-place rewriting
can express):

* the block is a canonical counted loop with induction phi ``iv``;
* every iv-varying node is the ``iv + (0, u, 2u, ...)`` neutral-add
  pattern with ``step == lanes * u``;
* loop-carried reductions start at a phi of this block whose latch is
  the reduction root;
* no other special nodes (sequences elsewhere, pointer strides,
  mismatch arrays, recurrences) and no external uses outside the loop
  except through reduction roots.

Everything else falls back to the general inner-loop code generator.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.loopinfo import CountedLoop, find_loops, match_counted_loop
from ..ir.instructions import Instruction, Phi
from ..ir.module import BasicBlock
from ..ir.values import ConstantInt
from .alignment import (
    AlignmentGraph,
    BinOpNeutralNode,
    IdenticalNode,
    JointNode,
    MatchNode,
    MinMaxReductionNode,
    ReductionNode,
    SequenceNode,
)


class _NotApplicable(Exception):
    """Raised internally when the in-place rewrite cannot be used."""


def _find_enclosing_counted_loop(block: BasicBlock) -> Optional[CountedLoop]:
    fn = block.parent
    if fn is None:
        return None
    for loop in find_loops(fn):
        if loop.header is block and loop.is_single_block:
            counted = match_counted_loop(loop)
            if counted is not None:
                return counted
    return None


def _classify_iv_pattern(
    node: BinOpNeutralNode, iv: Phi
) -> Optional[int]:
    """Return the unit stride ``u`` if node is ``iv + (0, u, 2u, ...)``."""
    if node.opcode != "add":
        return None
    lhs, rhs = node.children
    seq: Optional[SequenceNode] = None
    base: Optional[IdenticalNode] = None
    for a, b in ((lhs, rhs), (rhs, lhs)):
        if isinstance(a, IdenticalNode) and isinstance(b, SequenceNode):
            base, seq = a, b
            break
    if base is None or seq is None:
        return None
    if base.value is not iv:
        return None
    if seq.start != 0 or seq.step == 0:
        return None
    return seq.step


def _validate(ag: AlignmentGraph, counted: CountedLoop) -> int:
    """Check applicability; returns the unit stride ``u``."""
    iv = counted.iv
    lane_count = ag.roots[0].lane_count
    unit: Optional[int] = None

    for root in ag.roots:
        for node in root.walk():
            if isinstance(node, (MatchNode, IdenticalNode, JointNode)):
                continue
            if isinstance(node, BinOpNeutralNode):
                u = _classify_iv_pattern(node, iv)
                if u is None:
                    raise _NotApplicable("binop node is not the iv pattern")
                if unit is not None and unit != u:
                    raise _NotApplicable("conflicting iv strides")
                unit = u
                continue
            if isinstance(node, SequenceNode):
                # Only legal underneath a validated iv pattern; a bare
                # sequence cannot be recomputed from the outer iv.
                if not _sequence_is_iv_child(ag, node, iv):
                    raise _NotApplicable("free-standing sequence")
                continue
            if isinstance(node, (ReductionNode, MinMaxReductionNode)):
                if not _reduction_is_loop_carried(node, counted):
                    raise _NotApplicable("reduction is not the loop's phi")
                continue
            raise _NotApplicable(f"unsupported node kind {node.kind}")

    if unit is None:
        # Nothing varies with iv: only legal if every lane is identical
        # work, which in a counted loop would be an infinite-progress
        # bug; refuse and let the general path handle it.
        raise _NotApplicable("no iv-varying node found")
    if counted.step != unit * lane_count:
        raise _NotApplicable("latch step does not cover the lanes")

    # Every extra phi must be a recognised reduction accumulator.
    reduction_phis = {
        id(node.init)
        for root in ag.roots
        for node in root.walk()
        if isinstance(node, (ReductionNode, MinMaxReductionNode))
    }
    for phi in counted.block.phis():
        if phi is iv:
            continue
        if id(phi) not in reduction_phis:
            raise _NotApplicable("unhandled loop-carried phi")

    # No claimed value may escape the loop, except reduction roots.
    reduction_roots = {
        id(node.root)
        for root in ag.roots
        for node in root.walk()
        if isinstance(node, (ReductionNode, MinMaxReductionNode))
    }
    block = counted.block
    for inst in ag.claimed_instructions():
        if id(inst) in reduction_roots:
            continue
        for use in inst.uses:
            user = use.user
            if not isinstance(user, Instruction) or user.parent is not block:
                raise _NotApplicable("claimed value escapes the loop")

    # Full coverage: shrinking the latch step changes how often every
    # instruction in the block executes, so everything outside the
    # loop control must belong to the alignment graph (exactly the
    # restriction LLVM's reroller imposes).
    control_ids = {
        id(counted.iv_next),
        id(counted.cmp),
        id(block.terminator),
    }
    for inst in block.instructions:
        if isinstance(inst, Phi):
            continue
        if id(inst) in control_ids or id(inst) in ag.claimed:
            continue
        raise _NotApplicable("block not fully covered by the graph")
    return unit


def _sequence_is_iv_child(
    ag: AlignmentGraph, seq: SequenceNode, iv: Phi
) -> bool:
    for root in ag.roots:
        for node in root.walk():
            if isinstance(node, BinOpNeutralNode) and seq in node.children:
                if _classify_iv_pattern(node, iv) is not None:
                    return True
    return False


def _reduction_is_loop_carried(node, counted: CountedLoop) -> bool:
    init = node.init
    if not isinstance(init, Phi) or init.parent is not counted.block:
        return False
    return init.incoming_for(counted.block) is node.root


def try_loop_aware_reroll(ag: AlignmentGraph) -> Optional[int]:
    """Re-roll the enclosing loop in place.

    Returns the number of instructions removed on success, or ``None``
    when the pattern does not apply (the caller then uses the general
    inner-loop code generator).
    """
    block = ag.block
    if not ag.roots:
        return None
    counted = _find_enclosing_counted_loop(block)
    if counted is None:
        return None
    try:
        unit = _validate(ag, counted)
    except _NotApplicable:
        return None

    iv = counted.iv
    reductions = [
        node
        for root in ag.roots
        for node in root.walk()
        if isinstance(node, (ReductionNode, MinMaxReductionNode))
    ]

    # 1. Rewire reductions: the accumulator phi keeps lane 0's link.
    for node in reductions:
        if isinstance(node, MinMaxReductionNode):
            first = node.links[0][1]
            doomed_links: List[Instruction] = []
            # Delete from the chain's root backwards so every link's
            # consumers are gone before the link itself.
            for cmp, sel in reversed(node.links[1:]):
                doomed_links += [sel, cmp]
        else:
            ordered = sorted(
                node.internal,
                key=lambda i: block.instructions.index(i),
            )
            first = ordered[0]
            doomed_links = list(reversed(ordered[1:]))
        last = node.root
        for use in list(last.uses):
            user = use.user
            if user is node.init:  # the accumulator phi's latch slot
                user.set_operand(use.index, first)
            elif (
                isinstance(user, Instruction)
                and user.parent is not block
            ):
                user.set_operand(use.index, first)
        for link in doomed_links:
            if link.uses:
                # Tree/chain collection guarantees single-use interior
                # links; anything else means the graph was corrupted.
                raise RuntimeError("loop-aware reroll: shared chain link")
            link.erase_from_parent()

    # 2. Delete every claimed instruction belonging to lanes >= 1
    #    (reduction internals were already handled above).
    removed = 0
    reduction_ids = {id(i) for node in reductions for i in node.internal}
    doomed: List[Instruction] = []
    for inst in block.instructions:
        info = ag.claimed.get(id(inst))
        if info is None or id(inst) in reduction_ids:
            continue
        node, lane = info
        if lane >= 1:
            doomed.append(inst)
    for inst in reversed(doomed):
        if inst.uses:
            # Lane consistency (alignment) plus the escape check in
            # _validate guarantee deletion in reverse block order
            # leaves no dangling users.
            raise RuntimeError("loop-aware reroll inconsistency")
        inst.erase_from_parent()
        removed += 1

    # 3. Shrink the latch step to the unit stride.
    iv_next = counted.iv_next
    lhs, rhs = iv_next.operands
    if isinstance(rhs, ConstantInt):
        iv_next.set_operand(1, ConstantInt(iv.type, unit))
    else:
        iv_next.set_operand(0, ConstantInt(iv.type, unit))
    return removed + 1
