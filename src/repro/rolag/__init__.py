"""RoLAG: loop rolling for straight-line code (the paper's contribution).

Public surface::

    from repro.rolag import (
        RolagConfig, RolagStats,
        roll_loops_in_function, roll_loops_in_module,
    )
"""

from .alignment import (
    AlignmentGraph,
    AlignNode,
    BinOpNeutralNode,
    IdenticalNode,
    JointNode,
    MatchNode,
    MinMaxReductionNode,
    MismatchNode,
    PtrSeqNode,
    RecurrenceNode,
    ReductionNode,
    SequenceNode,
)
from .loopaware import try_loop_aware_reroll
from .codegen import RolledLoop, generate_rolled_loop
from .config import RolagConfig, RolagStats
from .pipeline import roll_loops_in_function, roll_loops_in_module
from .profitability import ProfitabilityReport, estimate
from .scheduling import Schedule, analyze_scheduling
from .seeds import SeedGroup, collect_seed_groups, find_joinable_groups

__all__ = [
    "AlignNode",
    "AlignmentGraph",
    "BinOpNeutralNode",
    "IdenticalNode",
    "JointNode",
    "MatchNode",
    "MinMaxReductionNode",
    "MismatchNode",
    "ProfitabilityReport",
    "PtrSeqNode",
    "RecurrenceNode",
    "ReductionNode",
    "RolagConfig",
    "RolagStats",
    "RolledLoop",
    "Schedule",
    "SeedGroup",
    "SequenceNode",
    "analyze_scheduling",
    "collect_seed_groups",
    "estimate",
    "find_joinable_groups",
    "generate_rolled_loop",
    "roll_loops_in_function",
    "try_loop_aware_reroll",
    "roll_loops_in_module",
]
