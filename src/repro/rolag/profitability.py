"""Profitability analysis (paper Section IV-F).

Estimates, with the target code-size cost model, how many bytes the
original straight-line region costs versus the rolled loop (control
overhead, loop body, mismatch-array setup, external-use extraction,
and optionally the constant data the arrays occupy).  The smaller
version wins.  Like LLVM's TTI-based estimate this is a heuristic: the
paper itself reports false positives (Section V-A), and the evaluation
harness measures the *actual* post-codegen sizes independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from ..analysis.costmodel import CodeSizeCostModel
from ..ir.instructions import Instruction
from ..ir.types import ArrayType, DEFAULT_LAYOUT
from .alignment import (
    AlignmentGraph,
    AlignNode,
    BinOpNeutralNode,
    IdenticalNode,
    JointNode,
    MatchNode,
    MinMaxReductionNode,
    MismatchNode,
    PtrSeqNode,
    RecurrenceNode,
    ReductionNode,
    SequenceNode,
)
from .config import RolagConfig


#: phi + add + icmp + conditional br + preheader br
LOOP_CONTROL_COST = 2 + 3 + 3 + 2 + 2


@dataclass
class ProfitabilityReport:
    """Byte estimates for one candidate rolling."""

    original_cost: int
    rolled_cost: int
    rodata_bytes: int

    @property
    def profitable(self) -> bool:
        """Whether the rolled form is estimated smaller."""
        return self.rolled_cost < self.original_cost

    @property
    def estimated_saving(self) -> int:
        """Estimated bytes saved (may be negative)."""
        return self.original_cost - self.rolled_cost


def estimate(
    ag: AlignmentGraph,
    cost_model: CodeSizeCostModel,
    config: RolagConfig,
) -> ProfitabilityReport:
    """Compare the straight-line region against its rolled form."""
    original = 0
    for inst in ag.claimed_instructions():
        original += cost_model.instruction_cost(inst)

    rolled = LOOP_CONTROL_COST
    rodata = 0
    external = _external_use_summary(ag)

    seen: Set[int] = set()
    for root in ag.roots:
        for node in root.walk():
            if id(node) in seen:
                continue
            seen.add(id(node))
            body, pre, data = _node_cost(node, ag, cost_model, config)
            rolled += body + pre
            rodata += data

    # External-use extraction: one store inside the loop per node, one
    # load per extracted lane, unless only the final lane is consumed.
    for node_id, (node, lanes) in external.items():
        if set(lanes) == {node.lane_count - 1}:
            continue
        rolled += cost_model.table["store"]
        rolled += cost_model.table["load"] * len(lanes)

    if config.count_const_data:
        rolled += rodata
    return ProfitabilityReport(original, rolled, rodata)


def _external_use_summary(
    ag: AlignmentGraph,
) -> Dict[int, Tuple[AlignNode, Set[int]]]:
    result: Dict[int, Tuple[AlignNode, Set[int]]] = {}
    for inst in ag.claimed_instructions():
        node, lane = ag.claimed[id(inst)]
        if isinstance(node, (ReductionNode, MinMaxReductionNode)):
            continue
        for use in inst.uses:
            user = use.user
            if isinstance(user, Instruction) and id(user) not in ag.claimed:
                result.setdefault(id(node), (node, set()))[1].add(lane)
    return result


def _node_cost(
    node: AlignNode,
    ag: AlignmentGraph,
    cm: CodeSizeCostModel,
    config: RolagConfig,
) -> Tuple[int, int, int]:
    """(loop-body bytes, preheader bytes, rodata bytes) for one node."""
    if isinstance(node, IdenticalNode):
        return 0, 0, 0
    if isinstance(node, SequenceNode):
        body = 0
        if node.step != 1:
            body += cm.table["mul"]
        if node.start != 0:
            body += cm.table["add"]
        return body, 0, 0
    if isinstance(node, MismatchNode):
        elem = node.element_type
        arr_bytes = DEFAULT_LAYOUT.size_of(ArrayType(elem, node.lane_count))
        if node.all_constant:
            # gep folds into the load; global operand needs a rip-rel ref.
            return cm.table["load"] + 3, 0, arr_bytes
        # Runtime mismatch values: one stack-slot store per lane in the
        # preheader, plus a couple of bytes per lane for the register
        # pressure / frame addressing those spills cost in practice.
        pre = node.lane_count * (cm.table["store"] + 2)
        return cm.table["load"], pre, 0
    if isinstance(node, PtrSeqNode):
        # Typed strides fold into the consumer's addressing mode; the
        # index adjustment costs one add/sub when non-trivial.
        elem_size = None
        if node.result_type is node.base.type:
            try:
                elem_size = DEFAULT_LAYOUT.size_of(node.result_type.pointee)
            except ValueError:
                elem_size = None
        if (
            elem_size
            and abs(node.step) == elem_size
            and node.start % elem_size == 0
        ):
            trivial = node.step > 0 and node.start == 0
            return (0 if trivial else cm.table["add"]), 0, 0
        body = 0
        if node.step not in (1, 2, 4, 8):
            body += cm.table["mul"]
        if node.start != 0:
            body += cm.table["add"]
        # The address itself folds into the consuming load/store/lea.
        body += 1
        return body, 0, 0
    if isinstance(node, RecurrenceNode):
        return cm.table["phi"], 0, 0
    if isinstance(node, ReductionNode):
        return cm.table["phi"] + cm.table[node.opcode], 0, 0
    if isinstance(node, MinMaxReductionNode):
        return cm.table["phi"] + cm.table["icmp"] + cm.table["select"], 0, 0
    if isinstance(node, JointNode):
        return 0, 0, 0
    if isinstance(node, BinOpNeutralNode):
        return cm.table[node.opcode], 0, 0
    if isinstance(node, MatchNode):
        return cm.instruction_cost(node.rep), 0, 0
    raise TypeError(f"no cost rule for {node!r}")
