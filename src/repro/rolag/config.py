"""Configuration and statistics for the RoLAG pipeline."""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

#: The pipeline phases the optional wall-time counters distinguish.
#: ``parse``, ``eval`` and ``hash`` are credited outside the rolling
#: pipeline proper: the driver books module parse/verify wall time
#: under ``parse``, callers that execute code on the rolled output (the
#: driver's semantics oracle, the harness' dynamic-step measurements)
#: book under ``eval``, and the driver's parent-side structural
#: fingerprinting (cache keys + in-batch dedupe) books under ``hash``
#: -- so Amdahl attribution (parse vs. roll vs. eval vs. keying) is
#: measured directly instead of inferred by subtraction.
PHASE_NAMES: Tuple[str, ...] = (
    "parse",
    "seeds",
    "alignment",
    "scheduling",
    "codegen",
    "eval",
    "hash",
)


@dataclass
class RolagConfig:
    """Tuning knobs for loop rolling.

    The ``enable_*`` flags switch the special alignment-node kinds of
    paper Section IV-C on and off, enabling the Fig. 19 ablation
    ("if we disable the special nodes, RoLAG can only profitably reroll
    19 loops, instead of 84").
    """

    #: Minimum number of lanes (loop iterations) in a seed group.
    min_lanes: int = 2
    #: Monotonic integer sequence nodes (Section IV-C1).
    enable_sequences: bool = True
    #: Neutral pointer operations / strided pointer offsets (IV-C2).
    enable_gep_neutral: bool = True
    #: Neutral elements + commutativity of binary operators (IV-C3).
    enable_binop_neutral: bool = True
    enable_commutative_reordering: bool = True
    #: Chained dependences lowered to loop-carried phis (IV-C4).
    enable_recurrence: bool = True
    #: Reduction-tree rolling (IV-C5); floats additionally need fast_math.
    enable_reduction: bool = True
    #: Min/max compare+select chain rolling (the Fig. 20b extension).
    enable_minmax: bool = True
    #: Joining alternating seed groups under one loop (IV-C6).
    enable_joint: bool = True
    #: Allow re-association of floating point reductions.
    fast_math: bool = False
    #: Re-roll in place when the block is itself a partially-unrolled
    #: counted loop (the paper's Section V-C "loop aware" improvement);
    #: falls back to the general inner-loop codegen when inapplicable.
    loop_aware: bool = False
    #: Retry failed/unprofitable groups on contiguous halves.
    try_subgroups: bool = True
    #: Count constant mismatch arrays (rodata) against profitability.
    count_const_data: bool = True
    #: Optional block-execution profile, as produced by
    #: :attr:`repro.ir.Machine.block_counts`: blocks executed at least
    #: ``hot_block_threshold`` times are skipped, implementing the
    #: paper's Section V-D suggestion of using profile information "to
    #: disable RoLAG on hot basic blocks".
    profile: Optional[Dict[Tuple[str, str], int]] = None
    hot_block_threshold: int = 100
    #: Fault-injection plan spec for the resilience layer (see
    #: ``repro.faultinject``); ``None`` falls back to the
    #: ``ROLAG_FAULT_PLAN`` environment variable.  Participates in the
    #: config fingerprint, so injected-fault runs never share cache
    #: entries with clean ones.
    fault_plan: Optional[str] = None
    #: Online translation-validation level gating every transaction
    #: (pipeline pass or RoLAG rolling decision): one of
    #: :data:`repro.validation.VALIDATION_LEVELS`.  Fingerprinted, so
    #: validated runs never share cache entries with unvalidated ones.
    validate: str = "off"
    #: Input vectors per function for the ``safe``/``strict`` oracles.
    validate_vectors: int = 2
    #: Step budget per validation observation (small by design: the
    #: gate runs inline on every transaction).
    validate_step_limit: int = 50_000
    #: Evaluator backend the semantic gate observes with.
    validate_evaluator: str = "interp"
    #: Directory for guard-failure repro bundles (``None`` = don't
    #: persist repros; reports are still collected in stats).
    guard_dir: Optional[str] = None

    def all_special_disabled(self) -> "RolagConfig":
        """A copy with every special node kind switched off."""
        from dataclasses import replace

        return replace(
            self,
            enable_sequences=False,
            enable_gep_neutral=False,
            enable_binop_neutral=False,
            enable_commutative_reordering=False,
            enable_recurrence=False,
            enable_reduction=False,
            enable_minmax=False,
            enable_joint=False,
        )

    def fingerprint(self) -> str:
        """Stable content hash of every tuning knob.

        Two configs with equal knobs produce equal fingerprints across
        processes and interpreter runs, so the driver's memo cache can
        key results on it; any field change invalidates cached entries.
        """
        parts = []
        for f in sorted(fields(self), key=lambda f: f.name):
            value = getattr(self, f.name)
            if f.name == "profile" and value is not None:
                value = sorted(value.items())
            parts.append(f"{f.name}={value!r}")
        digest = hashlib.sha256(";".join(parts).encode("utf-8"))
        return digest.hexdigest()[:16]


@dataclass
class RolagStats:
    """Aggregated behaviour of the pass, used by the evaluation harness."""

    #: Seed groups for which an alignment graph was built.
    attempted: int = 0
    #: Groups rejected by the scheduling analysis.
    schedule_rejected: int = 0
    #: Groups rejected by the profitability analysis.
    unprofitable: int = 0
    #: Successfully rolled loops.
    rolled: int = 0
    #: Node-kind histogram over *profitable* alignment graphs
    #: (reproduces the Fig. 16 / Fig. 19 breakdowns).
    node_counts: Counter = field(default_factory=Counter)
    #: (function name, estimated bytes saved) per rolled loop.
    savings: List[Tuple[str, int]] = field(default_factory=list)
    #: Collect per-phase wall times?  Off by default so the hot path
    #: pays no ``perf_counter`` calls unless a caller asks for them.
    timed: bool = False
    #: Accumulated wall seconds per pipeline phase (see PHASE_NAMES);
    #: stays empty unless ``timed`` is set.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Rolled-back transactions (``GuardReport.to_json_dict()`` dicts)
    #: recorded while validation was on.  Plain dicts so stats stay
    #: picklable across driver worker boundaries.
    guard_reports: List[Dict[str, object]] = field(default_factory=list)

    def add_phase_time(self, phase: str, seconds: float) -> None:
        """Accumulate wall time spent in one pipeline phase."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def merge(self, other: "RolagStats") -> None:
        """Fold another stats object into this one."""
        self.attempted += other.attempted
        self.schedule_rejected += other.schedule_rejected
        self.unprofitable += other.unprofitable
        self.rolled += other.rolled
        self.node_counts.update(other.node_counts)
        self.savings.extend(other.savings)
        self.guard_reports.extend(other.guard_reports)
        for phase, seconds in other.phase_seconds.items():
            self.add_phase_time(phase, seconds)
