"""Seed collection (paper Section IV-A).

Scans a basic block and groups instructions likely to head isomorphic
code: store instructions grouped by (base object, stored type),
function calls grouped by callee, and reduction-tree roots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.alias import underlying_object
from ..ir.instructions import (
    BinaryOp,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Select,
    Store,
)
from ..ir.module import BasicBlock
from ..ir.values import Value
from .config import RolagConfig


def instruction_fingerprint(
    inst: Instruction, cache: Optional[Dict[int, tuple]] = None
) -> tuple:
    """Interned shape key: two instructions can merge into one rolled
    loop instruction only if their fingerprints are equal.

    Captures everything the alignment graph's isomorphism check needs
    (class, opcode, result type, operand count, compare predicate,
    callee, GEP source/index types, first-operand type), so group
    formation and alignment can bucket/compare by one tuple instead of
    running a pairwise field-by-field scan.  Types are interned in this
    IR, so their ``id`` is a stable identity within a process.

    ``cache`` memoizes by ``id(inst)``; callers must scope it to a
    region where the instructions are not mutated (one block scan, one
    alignment-graph build) and keep the instructions alive for the
    cache's lifetime.
    """
    if cache is not None:
        fp = cache.get(id(inst))
        if fp is not None:
            return fp
    parts: List[object] = [
        id(type(inst)),
        inst.opcode,
        id(inst.type),
        len(inst.operands),
    ]
    if isinstance(inst, (ICmp, FCmp)):
        parts.append(inst.predicate)
    if isinstance(inst, GetElementPtr):
        parts.append(id(inst.source_type))
        parts.append(tuple(id(idx.type) for idx in inst.indices))
    if isinstance(inst, Call):
        parts.append(id(inst.callee))
    if isinstance(inst, Cast):
        parts.append(id(inst.operands[0].type))
    if isinstance(inst, (BinaryOp, ICmp, FCmp, Store)):
        parts.append(id(inst.operands[0].type))
    fp = tuple(parts)
    if cache is not None:
        cache[id(inst)] = fp
    return fp


def block_position_index(block: BasicBlock) -> Dict[int, int]:
    """``id(instruction) -> block index``, computed in one pass.

    Seed-group formation used to rebuild this map once per group,
    making wide blocks quadratic; build it once and share it.
    """
    return {id(inst): i for i, inst in enumerate(block.instructions)}


@dataclass
class SeedGroup:
    """One candidate group of seed instructions."""

    kind: str  # "store" | "call" | "reduction" | "minmax"
    instructions: List[Instruction]
    #: For reductions: the tree root and internal nodes.
    reduction_root: Optional[BinaryOp] = None
    reduction_internal: List[BinaryOp] = field(default_factory=list)
    reduction_leaves: List[Value] = field(default_factory=list)
    #: For min/max chains: the (cmp, select) links in chain order plus
    #: the chain-start accumulator and the recognised orientation.
    minmax_links: List[Tuple[Instruction, Instruction]] = field(
        default_factory=list
    )
    minmax_init: Optional[Value] = None
    minmax_predicate: str = ""
    minmax_cmp_leaf_first: bool = True
    minmax_select_leaf_first: bool = True

    @property
    def size(self) -> int:
        """Number of lanes this group would roll into."""
        if self.kind in ("reduction", "minmax"):
            return len(self.reduction_leaves)
        return len(self.instructions)

    def first_position(
        self, block: BasicBlock, index: Optional[Dict[int, int]] = None
    ) -> int:
        """Block index of the group's earliest seed.

        ``index`` is an optional prebuilt :func:`block_position_index`;
        passing one avoids an O(block) rebuild per group.
        """
        if index is None:
            index = block_position_index(block)
        if self.kind == "reduction":
            return index.get(id(self.reduction_root), 0)
        if self.kind == "minmax":
            return index.get(id(self.minmax_links[-1][1]), 0)
        return min(index.get(id(inst), 0) for inst in self.instructions)


def collect_seed_groups(
    block: BasicBlock, config: Optional[RolagConfig] = None
) -> List[SeedGroup]:
    """All seed groups of ``block``, ordered by first occurrence."""
    config = config or RolagConfig()
    groups: List[SeedGroup] = []

    # One bucketing pass: stores keyed by (base object, stored type),
    # calls keyed by callee.  Types are interned, so the type object
    # itself is the key -- no per-instruction string rendering, and no
    # compatibility checks ever run across unrelated buckets.
    store_groups: Dict[Tuple[int, int], List[Instruction]] = {}
    call_groups: Dict[int, List[Instruction]] = {}
    store_order: List[Tuple[int, int]] = []
    call_order: List[int] = []

    for inst in block.instructions:
        if isinstance(inst, Store):
            key = (id(underlying_object(inst.pointer)), id(inst.value.type))
            if key not in store_groups:
                store_groups[key] = []
                store_order.append(key)
            store_groups[key].append(inst)
        elif isinstance(inst, Call):
            key = id(inst.callee)
            if key not in call_groups:
                call_groups[key] = []
                call_order.append(key)
            call_groups[key].append(inst)

    for key in store_order:
        insts = store_groups[key]
        if len(insts) >= config.min_lanes:
            groups.append(SeedGroup("store", insts))
    for key in call_order:
        insts = call_groups[key]
        if len(insts) >= config.min_lanes:
            groups.append(SeedGroup("call", insts))

    if config.enable_reduction:
        groups.extend(collect_reduction_seeds(block, config))
    if config.enable_minmax:
        groups.extend(collect_minmax_seeds(block, config))

    index = block_position_index(block)
    groups.sort(key=lambda g: g.first_position(block, index))
    return groups


def _match_minmax_link(
    sel: Instruction, block: BasicBlock
) -> Optional[Tuple[Instruction, Value, Value]]:
    """Match ``select (cmp x, y), x, y``; returns (cmp, arm0, arm1)."""
    if not isinstance(sel, Select):
        return None
    cond = sel.operands[0]
    if not isinstance(cond, (ICmp, FCmp)) or cond.parent is not block:
        return None
    if len(cond.uses) != 1:
        return None
    arm0, arm1 = sel.operands[1], sel.operands[2]
    if {id(cond.operands[0]), id(cond.operands[1])} != {id(arm0), id(arm1)}:
        return None
    if arm0 is arm1:
        return None
    return cond, arm0, arm1


def collect_minmax_seeds(
    block: BasicBlock, config: RolagConfig
) -> List[SeedGroup]:
    """Find min/max compare+select chains (the Fig. 20b extension)."""
    groups: List[SeedGroup] = []
    in_chain: set = set()

    for inst in reversed(block.instructions):
        if id(inst) in in_chain:
            continue
        matched = _match_minmax_link(inst, block)
        if matched is None:
            continue
        # A chain root is not itself the accumulator arm of a link.
        is_root = True
        for use in inst.uses:
            user = use.user
            if (
                isinstance(user, Select)
                and user.parent is block
                and _match_minmax_link(user, block) is not None
                and inst in (user.operands[1], user.operands[2])
            ):
                is_root = False
                break
        if not is_root:
            continue

        chain = _collect_minmax_chain(inst, block)
        if chain is None:
            continue
        links, leaves, init, pred, cmp_leaf_first, select_leaf_first = chain
        if len(leaves) < max(3, config.min_lanes):
            continue
        for cmp, sel in links:
            in_chain.add(id(cmp))
            in_chain.add(id(sel))
        groups.append(
            SeedGroup(
                "minmax",
                [inst],
                reduction_leaves=leaves,
                minmax_links=links,
                minmax_init=init,
                minmax_predicate=pred,
                minmax_cmp_leaf_first=cmp_leaf_first,
                minmax_select_leaf_first=select_leaf_first,
            )
        )
    return groups


def _collect_minmax_chain(root: Select, block: BasicBlock):
    """Walk a select chain accumulator-wards from its root.

    Returns (links, leaves, init, predicate, cmp_leaf_first,
    select_leaf_first) with links/leaves in execution order, or None.
    """
    matched = _match_minmax_link(root, block)
    if matched is None:
        return None
    cond, arm0, arm1 = matched

    def is_link(value: Value, consumer_sel, consumer_cmp) -> bool:
        """Whether ``value`` is a chain link feeding only its consumer.

        A link's value is consumed twice by the next link: once by its
        compare and once as a select arm.
        """
        if not (isinstance(value, Select) and value.parent is block):
            return False
        if _match_minmax_link(value, block) is None:
            return False
        return all(
            u.user is consumer_sel or u.user is consumer_cmp
            for u in value.uses
        )

    # Orientation from the root: exactly one arm continues the chain.
    continuations = [
        arm for arm in (arm0, arm1) if is_link(arm, root, cond)
    ]
    if len(continuations) != 1:
        return None
    select_leaf_first = continuations[0] is arm1
    predicate = cond.predicate
    links_rev: List[Tuple[Instruction, Instruction]] = []
    leaves_rev: List[Value] = []
    cmp_leaf_first: Optional[bool] = None

    cursor: Value = root
    while True:
        matched = _match_minmax_link(cursor, block)
        if matched is None:
            return None
        cond, arm0, arm1 = matched
        if cond.predicate != predicate:
            return None
        leaf = arm0 if select_leaf_first else arm1
        acc = arm1 if select_leaf_first else arm0
        this_cmp_leaf_first = cond.operands[0] is leaf
        if not this_cmp_leaf_first and cond.operands[1] is not leaf:
            return None
        if cmp_leaf_first is None:
            cmp_leaf_first = this_cmp_leaf_first
        elif cmp_leaf_first != this_cmp_leaf_first:
            return None
        links_rev.append((cond, cursor))
        leaves_rev.append(leaf)
        if is_link(acc, cursor, cond):
            cursor = acc
            continue
        init = acc
        break

    links = list(reversed(links_rev))
    leaves = list(reversed(leaves_rev))
    return links, leaves, init, predicate, cmp_leaf_first, select_leaf_first


def collect_reduction_seeds(
    block: BasicBlock, config: RolagConfig
) -> List[SeedGroup]:
    """Find maximal reduction trees rooted in ``block`` (IV-C5)."""
    groups: List[SeedGroup] = []
    in_some_tree: set = set()

    for inst in reversed(block.instructions):
        if not isinstance(inst, BinaryOp) or id(inst) in in_some_tree:
            continue
        if not inst.is_associative:
            continue
        if inst.opcode.startswith("f") and not config.fast_math:
            continue
        # A root is not consumed by a same-opcode binop in this block.
        is_root = True
        for use in inst.uses:
            user = use.user
            if (
                isinstance(user, BinaryOp)
                and user.opcode == inst.opcode
                and user.parent is block
            ):
                is_root = False
                break
        if not is_root:
            continue
        internal, leaves = _collect_tree(inst, block)
        if len(leaves) < max(3, config.min_lanes):
            continue
        for node in internal:
            in_some_tree.add(id(node))
        groups.append(
            SeedGroup(
                "reduction",
                [inst],
                reduction_root=inst,
                reduction_internal=internal,
                reduction_leaves=leaves,
            )
        )
    return groups


def _collect_tree(
    root: BinaryOp, block: BasicBlock
) -> Tuple[List[BinaryOp], List[Value]]:
    """Internal nodes and leaves of the reduction tree under ``root``.

    Leaves are returned left to right, matching source order for
    left-leaning accumulation chains (``a0 + a1 + a2``).
    """
    internal: List[BinaryOp] = []
    leaves: List[Value] = []

    def visit(value: Value) -> None:
        if (
            isinstance(value, BinaryOp)
            and value.opcode == root.opcode
            and value.parent is block
            and (value is root or len(value.uses) == 1)
        ):
            internal.append(value)
            visit(value.operands[0])
            visit(value.operands[1])
        else:
            leaves.append(value)

    visit(root)
    return internal, leaves


def find_joinable_groups(
    block: BasicBlock, groups: Sequence[SeedGroup]
) -> List[List[SeedGroup]]:
    """Partition seed groups into alternating runs (paper IV-C6).

    Two groups join when they have the same lane count and their seeds
    interleave in block position: ``a0 b0 a1 b1 ... an bn``.
    """
    index = block_position_index(block)

    joinable: List[List[SeedGroup]] = []
    used: set = set()
    ordered = [g for g in groups if g.kind != "reduction"]
    # Positions computed once per group, and candidates bucketed by lane
    # count: only same-sized groups can ever join, so the pairwise
    # interleaving check never runs across unrelated buckets.
    positions: Dict[int, List[int]] = {
        id(g): [index[id(inst)] for inst in g.instructions] for g in ordered
    }
    by_size: Dict[int, List[SeedGroup]] = {}
    rank: Dict[int, int] = {}
    for i, group in enumerate(ordered):
        by_size.setdefault(group.size, []).append(group)
        rank[id(group)] = i
    for group in ordered:
        if id(group) in used:
            continue
        cluster = [group]
        cluster_positions = [positions[id(group)]]
        for other in by_size[group.size]:
            if rank[id(other)] <= rank[id(group)] or id(other) in used:
                continue
            if _interleaves(cluster_positions + [positions[id(other)]]):
                cluster.append(other)
                cluster_positions.append(positions[id(other)])
                used.add(id(other))
        if len(cluster) > 1:
            used.add(id(group))
            joinable.append(cluster)
    return joinable


def _interleaves(positions_list: List[List[int]]) -> bool:
    """All groups' k-th seeds fall between every (k)-th and (k+1)-th."""
    lanes = len(positions_list[0])
    # Sort groups by their first position to get intra-iteration order.
    ordered = sorted(positions_list, key=lambda p: p[0])
    flattened: List[int] = []
    for lane in range(lanes):
        for group_positions in ordered:
            flattened.append(group_positions[lane])
    return flattened == sorted(flattened)
