"""Loop code generation from an alignment graph (paper Section IV-E).

Given a legal :class:`~repro.rolag.scheduling.Schedule`, rewrites the
block into

    preheader:  preceding code, mismatch-array setup    -> br loop
    loop:       iv phi, recurrence/accumulator phis, body,
                external-use extraction stores, iv bump, compare
    exit:       extraction loads, succeeding code, old terminator

following the layout of the paper's Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.builder import IRBuilder
from ..ir.instructions import (
    Alloca,
    Br,
    Cast,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import ArrayType, I64, I8, IntType, PointerType, Type
from ..ir.values import (
    ConstantAggregate,
    ConstantInt,
    Value,
    neutral_element,
)
from .alignment import (
    AlignmentGraph,
    AlignNode,
    BinOpNeutralNode,
    IdenticalNode,
    JointNode,
    MatchNode,
    MinMaxReductionNode,
    MismatchNode,
    PtrSeqNode,
    RecurrenceNode,
    ReductionNode,
    SequenceNode,
)
from .scheduling import Schedule


@dataclass
class RolledLoop:
    """Artifacts of a successful rolling, for stats and tests."""

    preheader: BasicBlock
    loop: BasicBlock
    exit: BasicBlock
    lane_count: int
    #: Bytes of constant data emitted into globals (mismatch arrays).
    rodata_bytes: int = 0
    #: Stack arrays created (mismatch inputs + external-use extraction).
    stack_arrays: int = 0


class LoopCodeGenerator:
    """Materialises the rolled loop for one alignment graph."""

    def __init__(self, ag: AlignmentGraph, schedule: Schedule) -> None:
        self.ag = ag
        self.schedule = schedule
        self.block = ag.block
        self.function: Function = self.block.parent
        self.module: Module = self.function.module
        assert self.module is not None, "rolling requires a module context"
        self.lane_count = ag.roots[0].lane_count
        self.lowered: Dict[int, Value] = {}
        self._emitted: set = set()
        self.pre_extra: List[Instruction] = []
        self.entry_allocas: List[Instruction] = []
        self.exit_extra: List[Instruction] = []
        self.pending_recurrences: List[Tuple[Phi, AlignNode]] = []
        self.rodata_bytes = 0
        self.stack_arrays = 0
        self._loop_builder: Optional[IRBuilder] = None
        self._phi_slots = 0
        self.iv: Optional[Phi] = None

    # ----- main entry --------------------------------------------------------

    def run(self) -> RolledLoop:
        """Perform the whole rewrite; returns the created blocks."""
        fn = self.function
        block = self.block
        index = fn.blocks.index(block)
        loop_block = BasicBlock(fn.next_name("rolag.loop"))
        exit_block = BasicBlock(fn.next_name("rolag.exit"))
        loop_block.parent = fn
        exit_block.parent = fn
        fn.blocks.insert(index + 1, loop_block)
        fn.blocks.insert(index + 2, exit_block)
        self.loop_block = loop_block
        self.exit_block = exit_block

        builder = IRBuilder(loop_block)
        self._loop_builder = builder

        # Induction variable.
        iv = Phi(I64, fn.next_name("rolag.iv"))
        loop_block.append(iv)
        self._phi_slots = 1
        iv.add_incoming(ConstantInt(I64, 0), block)
        self.iv = iv

        # Lower the graph body in original-program order: nodes that
        # replace block instructions are emitted by ascending block
        # position of their earliest claimed instruction, with operands
        # pulled in recursively.  This keeps the per-iteration order of
        # the original code (essential for joint groups, where e.g. an
        # iteration's loads must precede its stores).
        for node in self._emission_order():
            self._lower(node)
        for root in self.ag.roots:
            self._lower(root)

        # Patch recurrence phis now that their targets exist.
        for phi, target in self.pending_recurrences:
            phi.add_incoming(self.lowered[id(target)], loop_block)

        # External-use extraction (needs the lowered values).
        self._handle_external_uses()

        # Loop control.
        iv_next = builder.add(iv, builder.i64(1), name=fn.next_name("rolag.iv.next"))
        cond = builder.icmp(
            "ult", iv_next, builder.i64(self.lane_count), name=fn.next_name("rolag.cond")
        )
        builder.cond_br(cond, loop_block, exit_block)
        iv.add_incoming(iv_next, loop_block)

        # Rebuild the original block and the exit block.
        old_terminator = block.terminator
        assert old_terminator is not None
        claimed_in_order = [
            inst for inst in block.instructions if id(inst) in self.ag.claimed
        ]

        for inst in self.schedule.after:
            inst.parent = exit_block
        old_terminator.parent = exit_block
        exit_block.instructions = (
            list(self.exit_extra) + list(self.schedule.after) + [old_terminator]
        )
        for inst in self.exit_extra:
            inst.parent = exit_block

        for inst in self.pre_extra:
            inst.parent = block
        preheader_br = Br(loop_block)
        block.instructions = list(self.schedule.before) + list(self.pre_extra) + [
            preheader_br
        ]
        preheader_br.parent = block
        for inst in self.schedule.before:
            inst.parent = block

        # Entry allocas go to the very top of the entry block.
        entry = fn.entry
        for alloca in reversed(self.entry_allocas):
            entry.insert(0, alloca)

        # Phis in the old successors now flow in from the exit block.
        for succ in old_terminator.successors():
            for phi in succ.phis():
                for slot in range(1, len(phi.operands), 2):
                    if phi.operands[slot] is block:
                        phi.set_operand(slot, exit_block)

        # Finally delete the replaced instructions.
        for inst in reversed(claimed_in_order):
            if inst.uses:
                remaining = [u.user for u in inst.uses]
                raise RuntimeError(
                    f"claimed instruction {inst!r} still used by {remaining}"
                )
            inst.parent = None
            inst.drop_all_references()

        return RolledLoop(
            preheader=block,
            loop=loop_block,
            exit=exit_block,
            lane_count=self.lane_count,
            rodata_bytes=self.rodata_bytes,
            stack_arrays=self.stack_arrays,
        )

    # ----- node lowering ------------------------------------------------------

    def _emission_order(self) -> List[AlignNode]:
        """Instruction-replacing nodes by earliest claimed position."""
        position = {
            id(inst): p for p, inst in enumerate(self.block.instructions)
        }
        node_position: Dict[int, int] = {}
        node_by_id: Dict[int, AlignNode] = {}
        for inst_id, (node, _lane) in self.ag.claimed.items():
            pos = position.get(inst_id)
            if pos is None:
                continue
            node_by_id[id(node)] = node
            prior = node_position.get(id(node))
            if prior is None or pos < prior:
                node_position[id(node)] = pos
        ordered = sorted(node_by_id.values(), key=lambda n: node_position[id(n)])
        return ordered

    def _lower(self, node: AlignNode) -> Optional[Value]:
        if id(node) in self._emitted:
            return self.lowered.get(id(node))
        self._emitted.add(id(node))
        value = self._lower_impl(node)
        if value is not None:
            self.lowered[id(node)] = value
        return value

    def _lower_impl(self, node: AlignNode) -> Optional[Value]:
        if isinstance(node, IdenticalNode):
            return node.value
        if isinstance(node, SequenceNode):
            return self._lower_sequence(node)
        if isinstance(node, MismatchNode):
            return self._lower_mismatch(node)
        if isinstance(node, PtrSeqNode):
            return self._lower_ptr_seq(node)
        if isinstance(node, RecurrenceNode):
            return self._lower_recurrence(node)
        if isinstance(node, ReductionNode):
            return self._lower_reduction(node)
        if isinstance(node, MinMaxReductionNode):
            return self._lower_minmax(node)
        if isinstance(node, JointNode):
            for child in node.children:
                self._lower(child)
            return None
        if isinstance(node, BinOpNeutralNode):
            lhs = self._lower(node.children[0])
            rhs = self._lower(node.children[1])
            return self._loop_builder.binop(node.opcode, lhs, rhs)
        if isinstance(node, MatchNode):
            return self._lower_match(node)
        raise TypeError(f"cannot lower {node!r}")

    def _iv_as(self, ty: IntType) -> Value:
        if ty is I64:
            return self.iv
        builder = self._loop_builder
        if ty.bits < 64:
            return builder.trunc(self.iv, ty)
        return builder.zext(self.iv, ty)

    def _lower_sequence(self, node: SequenceNode) -> Value:
        builder = self._loop_builder
        ty = node.int_type
        value = self._iv_as(ty)
        if node.step != 1:
            value = builder.mul(value, ConstantInt(ty, node.step))
        if node.start != 0:
            value = builder.add(value, ConstantInt(ty, node.start))
        return value

    def _lower_mismatch(self, node: MismatchNode) -> Value:
        builder = self._loop_builder
        fn = self.function
        n = node.lane_count
        elem_ty = node.element_type
        arr_ty = ArrayType(elem_ty, n)
        if node.all_constant:
            name = self.module.unique_global_name("__rolag.vals")
            gv = self.module.add_global(
                name, arr_ty, ConstantAggregate(arr_ty, list(node.lanes)), True
            )
            self.rodata_bytes += self._array_bytes(arr_ty)
            pointer = gv
        else:
            alloca = Alloca(arr_ty, fn.next_name("rolag.mm"))
            self.entry_allocas.append(alloca)
            self.stack_arrays += 1
            for lane, value in enumerate(node.lanes):
                gep = GetElementPtr(
                    arr_ty, alloca, [ConstantInt(I64, 0), ConstantInt(I64, lane)],
                    fn.next_name(),
                )
                store = Store(value, gep)
                self.pre_extra.append(gep)
                self.pre_extra.append(store)
            pointer = alloca
        gep = builder.gep(
            arr_ty, pointer, [ConstantInt(I64, 0), self.iv], fn.next_name()
        )
        return builder.load(elem_ty, gep, fn.next_name())

    def _array_bytes(self, arr_ty: ArrayType) -> int:
        from ..ir.types import DEFAULT_LAYOUT

        return DEFAULT_LAYOUT.size_of(arr_ty)

    def _lower_ptr_seq(self, node: PtrSeqNode) -> Value:
        builder = self._loop_builder
        fn = self.function
        base = node.base
        i8p = PointerType(I8)

        # Preferred form: a typed GEP indexed by the induction variable,
        # which folds into the consumer's addressing mode.
        typed = self._typed_ptr_seq(node)
        if typed is not None:
            return typed

        if base.type is not i8p:
            cast = Cast("bitcast", base, i8p, fn.next_name("rolag.base"))
            self.pre_extra.append(cast)
            base8 = cast
        else:
            base8 = base
        offset: Value = self.iv
        if node.step != 1:
            offset = builder.mul(offset, builder.i64(node.step))
        if node.start != 0:
            offset = builder.add(offset, builder.i64(node.start))
        gep = builder.gep(I8, base8, [offset], fn.next_name("rolag.ptr"))
        if node.result_type is i8p:
            return gep
        return builder.bitcast(gep, node.result_type, fn.next_name())

    def _typed_ptr_seq(self, node: PtrSeqNode) -> Optional[Value]:
        """``gep T, base, (start/|s| +- iv)`` when the stride is one T."""
        from ..ir.types import DEFAULT_LAYOUT

        base = node.base
        if base.type is not node.result_type:
            return None
        pointee = node.result_type.pointee
        try:
            elem_size = DEFAULT_LAYOUT.size_of(pointee)
        except ValueError:
            return None
        if elem_size == 0 or abs(node.step) != elem_size:
            return None
        if node.start % elem_size != 0:
            return None
        builder = self._loop_builder
        fn = self.function
        idx0 = node.start // elem_size
        if node.step > 0:
            index: Value = self.iv
            if idx0 != 0:
                index = builder.add(self.iv, builder.i64(idx0))
        else:
            index = builder.sub(builder.i64(idx0), self.iv)
        return builder.gep(pointee, base, [index], fn.next_name("rolag.ptr"))

    def _lower_recurrence(self, node: RecurrenceNode) -> Value:
        ty = node.init.type
        phi = Phi(ty, self.function.next_name("rolag.rec"))
        self.loop_block.insert(self._phi_slots, phi)
        self._phi_slots += 1
        phi.add_incoming(node.init, self.block)
        self.pending_recurrences.append((phi, node.target))
        return phi

    def _lower_reduction(self, node: ReductionNode) -> Value:
        builder = self._loop_builder
        ty = node.root.type
        start: Value
        if node.init is not None:
            start = node.init
        else:
            neutral = neutral_element(node.opcode, ty)
            assert neutral is not None, "reduction without neutral element"
            start = neutral
        acc = Phi(ty, self.function.next_name("rolag.acc"))
        self.loop_block.insert(self._phi_slots, acc)
        self._phi_slots += 1
        acc.add_incoming(start, self.block)
        leaf = self._lower(node.children[0])
        acc_next = builder.binop(node.opcode, acc, leaf)
        acc_next.name = self.function.next_name("rolag.acc.next")
        acc.add_incoming(acc_next, self.loop_block)
        # The original tree root's value is the final accumulator.
        node.root.replace_all_uses_with(acc_next)
        return acc_next

    def _lower_match(self, node: MatchNode) -> Optional[Value]:
        operands = [self._lower(child) for child in node.children]
        clone = node.rep.clone()
        for slot, value in enumerate(operands):
            clone.set_operand(slot, value)
        if not clone.type.is_void:
            clone.name = self.function.next_name(node.rep.name or "rolag.v")
        builder = self._loop_builder
        builder._insert(clone, clone.name)
        return clone if not clone.type.is_void else None

    def _lower_minmax(self, node: MinMaxReductionNode) -> Value:
        """Roll a compare+select chain into an accumulator phi."""
        builder = self._loop_builder
        ty = node.root.type
        acc = Phi(ty, self.function.next_name("rolag.mm.acc"))
        self.loop_block.insert(self._phi_slots, acc)
        self._phi_slots += 1
        acc.add_incoming(node.init, self.block)
        leaf = self._lower(node.children[0])

        rep_cmp = node.links[0][0]
        cmp = rep_cmp.clone()
        cmp.name = self.function.next_name("rolag.mm.cmp")
        if node.cmp_leaf_first:
            cmp.set_operand(0, leaf)
            cmp.set_operand(1, acc)
        else:
            cmp.set_operand(0, acc)
            cmp.set_operand(1, leaf)
        builder._insert(cmp, cmp.name)

        if node.select_leaf_first:
            sel = Select(cmp, leaf, acc)
        else:
            sel = Select(cmp, acc, leaf)
        sel.name = self.function.next_name("rolag.mm.sel")
        builder._insert(sel, sel.name)
        acc.add_incoming(sel, self.loop_block)
        node.root.replace_all_uses_with(sel)
        return sel

    # ----- external uses -------------------------------------------------------

    def _handle_external_uses(self) -> None:
        fn = self.function
        builder = self._loop_builder
        claimed = self.ag.claimed

        # Collect per-node external uses: node -> {lane: [Use, ...]}
        per_node: Dict[int, Tuple[AlignNode, Dict[int, List]]] = {}
        for inst in self.block.instructions:
            info = claimed.get(id(inst))
            if info is None:
                continue
            node, lane = info
            if isinstance(node, (ReductionNode, MinMaxReductionNode)):
                continue  # root handled during lowering; internals private
            for use in list(inst.uses):
                user = use.user
                if not isinstance(user, Instruction):
                    continue
                if id(user) in claimed:
                    continue
                entry = per_node.setdefault(id(node), (node, {}))
                entry[1].setdefault(lane, []).append(use)

        for node, lanes in per_node.values():
            node_value = self.lowered.get(id(node))
            if node_value is None:
                raise RuntimeError(f"external use of unlowered node {node!r}")
            only_last = set(lanes) == {node.lane_count - 1}
            if only_last:
                # The last iteration's value is simply the loop value,
                # which dominates the exit block.
                for use in lanes[node.lane_count - 1]:
                    use.user.set_operand(use.index, node_value)
                continue
            elem_ty = node_value.type
            arr_ty = ArrayType(elem_ty, node.lane_count)
            alloca = Alloca(arr_ty, fn.next_name("rolag.out"))
            self.entry_allocas.append(alloca)
            self.stack_arrays += 1
            slot = builder.gep(
                arr_ty, alloca, [ConstantInt(I64, 0), self.iv], fn.next_name()
            )
            builder.store(node_value, slot)
            for lane, uses in sorted(lanes.items()):
                gep = GetElementPtr(
                    arr_ty,
                    alloca,
                    [ConstantInt(I64, 0), ConstantInt(I64, lane)],
                    fn.next_name(),
                )
                load = Load(elem_ty, gep, fn.next_name("rolag.ext"))
                self.exit_extra.append(gep)
                self.exit_extra.append(load)
                for use in uses:
                    use.user.set_operand(use.index, load)


def generate_rolled_loop(ag: AlignmentGraph, schedule: Schedule) -> RolledLoop:
    """Generate the rolled loop; the block is modified in place."""
    return LoopCodeGenerator(ag, schedule).run()
