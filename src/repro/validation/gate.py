"""The online translation-validation gate (the transaction ladder).

A :class:`Validator` decides whether one transaction's IR edit commits
or rolls back, at one of four levels:

``off``
    no gating; transactions are free.
``fast``
    the incremental verifier re-checks just the blocks the pass
    touched (:func:`repro.ir.verify_blocks`) -- catches malformed IR
    at a cost proportional to the edit, not the function.
``safe``
    full verification plus an Observation-equality check: the edited
    function is executed on a small deterministic input-vector set and
    compared against reference observations captured from the
    best-known-good IR before the first transaction -- the online
    analogue of the offline difftest oracle.
``strict``
    ``safe`` plus cross-backend parity: the candidate must behave
    identically (including step counts) under the interpreter and the
    compiling evaluator.

On a gate failure the validator restores the snapshot, records a
:class:`~repro.validation.report.GuardReport` with a unified IR diff,
and (when ``guard_dir`` is set) writes a repro bundle, minimized with
the difftest minimizer whenever the failure replays deterministically.
Reference observations stay valid across commits because every
committed transaction was itself validated observation-equal.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Tuple

from ..difftest.bisect import MismatchRecord, minimize_record
from ..difftest.oracle import (
    ArgumentVector,
    Observation,
    compare_observations,
    make_argument_vectors,
    observe_call,
    program_for,
)
from ..faultinject import DeadlineExceeded, active_plan
from ..ir.module import Function, Module
from ..ir.printer import print_function, print_module
from ..ir.snapshot import FunctionSnapshot
from ..ir.verifier import VerificationError, verify_blocks, verify_function
from .report import GuardReport, unified_ir_diff, write_guard_bundle

#: The validation ladder, weakest to strongest.
VALIDATION_LEVELS = ("off", "fast", "safe", "strict")

#: Reference observations for one function: (vector, observation)
#: pairs, or ``None`` when the signature defeats the vector generator
#: (the gate then degrades to verification only for that function).
_Reference = Optional[List[Tuple[ArgumentVector, Observation]]]

#: A gate verdict: (failure kind, detail, vector, expected, actual).
#: The last three are ``None`` unless an oracle comparison failed.
_Failure = Tuple[
    str, str, Optional[ArgumentVector], Optional[Observation],
    Optional[Observation],
]


def function_stage(
    fn_name: str, fn_pass: Callable[[Function], object]
) -> Callable[[Module], object]:
    """Lift a function pass into the module-stage shape the difftest
    bisector/minimizer replays (applied to the one named function)."""

    def apply(module: Module) -> object:
        target = module.get_function(fn_name)
        if target is None or target.is_declaration:
            return 0
        return fn_pass(target)

    return apply


def evidence_check(
    original: Module,
    transformed: Module,
    *,
    seed: int,
    vectors: int = 2,
    step_limit: int = 50_000,
    evaluator: str = "interp",
) -> Tuple[bool, List[str]]:
    """Offline replay of the gate's exact evidence; ``(ok, details)``.

    The ladder's semantic levels are *evidence-based*: a commit attests
    observation-equality on a small deterministic vector set, not a
    proof of equivalence.  This helper re-derives precisely the vectors
    a :class:`Validator` with the same ``seed``/``vectors`` would have
    used (same per-function seed mixing) and checks that the final
    ``transformed`` module still satisfies them against ``original`` --
    the invariant a chaos storm can hold a validated run to.  Functions
    the gate would have degraded on (exotic signatures, evaluator
    failures on the original) are skipped here too.
    """
    details: List[str] = []
    try:
        original_program = program_for(original, evaluator)
        transformed_program = program_for(transformed, evaluator)
    except DeadlineExceeded:
        raise
    except Exception as error:
        return (
            False,
            [f"evaluator setup failed: {type(error).__name__}: {error}"],
        )
    for fn in original.functions:
        if fn.is_declaration:
            continue
        if transformed.get_function(fn.name) is None:
            details.append(f"@{fn.name}: missing from transformed module")
            continue
        fn_seed = (
            seed * 1_000_003 + zlib.crc32(fn.name.encode("utf-8"))
        ) & 0x7FFFFFFF
        try:
            fn_vectors = make_argument_vectors(fn, fn_seed, max(1, vectors))
        except ValueError:
            continue  # the gate degraded to verify-only here; so do we
        for vector in fn_vectors:
            try:
                expected = observe_call(
                    original,
                    fn.name,
                    vector,
                    step_limit=step_limit,
                    evaluator=evaluator,
                    program=original_program,
                )
            except DeadlineExceeded:
                raise
            except Exception:
                break  # no reference evidence for this function
            try:
                actual = observe_call(
                    transformed,
                    fn.name,
                    vector,
                    step_limit=step_limit,
                    evaluator=evaluator,
                    program=transformed_program,
                )
            except DeadlineExceeded:
                raise
            except Exception as error:
                details.append(
                    f"@{fn.name} ({vector.describe()}): evaluator error "
                    f"on transformed IR: {type(error).__name__}: {error}"
                )
                continue
            detail = compare_observations(expected, actual)
            if detail is not None:
                details.append(
                    f"@{fn.name} ({vector.describe()}): {detail}"
                )
    return (not details, details)


class Validator:
    """Gates transactions for one module's pipeline run.

    One validator may be shared across every function of a module (the
    per-function reference cache is keyed by name); use a fresh
    validator per independently-transformed module copy.
    """

    def __init__(
        self,
        level: str = "fast",
        *,
        vectors: int = 2,
        step_limit: int = 50_000,
        guard_dir: Optional[str] = None,
        evaluator: str = "interp",
        seed: int = 0,
    ) -> None:
        if level not in VALIDATION_LEVELS:
            raise ValueError(
                f"unknown validation level {level!r} "
                f"(expected one of {', '.join(VALIDATION_LEVELS)})"
            )
        self.level = level
        self.vectors = max(1, vectors)
        self.step_limit = step_limit
        self.guard_dir = guard_dir
        self.evaluator = evaluator
        self.seed = seed
        self.reports: List[GuardReport] = []
        self._reference: Dict[str, _Reference] = {}

    # -- transaction protocol ----------------------------------------------

    def begin(self, fn: Function) -> FunctionSnapshot:
        """Open a transaction: snapshot ``fn`` as best-known-good.

        For the semantic levels the first transaction per function also
        captures the reference observations, *before* any pass has had
        a chance to mutate the IR.
        """
        if (
            self.level in ("safe", "strict")
            and fn.name not in self._reference
        ):
            self._reference[fn.name] = self._capture_reference(fn)
        return FunctionSnapshot(fn)

    def commit_or_rollback(
        self,
        fn: Function,
        snapshot: FunctionSnapshot,
        pass_name: str,
        replay: Optional[Callable[[Function], object]] = None,
    ) -> Optional[GuardReport]:
        """Gate the edit: ``None`` commits it, a report means it was
        rolled back to the snapshot.

        ``replay`` optionally re-applies the pass (a function-pass
        callable) to the same function in a freshly parsed module,
        enabling repro minimization for deterministic failures.
        """
        if self.level == "off" or not snapshot.changed():
            return None
        failure = self._gate(fn, snapshot)
        if failure is None:
            return None
        kind, detail, vector, expected, actual = failure
        return self._rollback(
            fn, snapshot, pass_name, kind, detail, replay,
            vector=vector, expected=expected, actual=actual,
        )

    def rollback_exception(
        self,
        fn: Function,
        snapshot: FunctionSnapshot,
        pass_name: str,
        error: BaseException,
    ) -> GuardReport:
        """A pass raised mid-transaction: restore and report."""
        detail = f"{type(error).__name__}: {error}"
        return self._rollback(
            fn, snapshot, pass_name, "exception", detail, replay=None
        )

    # -- the ladder ---------------------------------------------------------

    def _gate(
        self, fn: Function, snapshot: FunctionSnapshot
    ) -> Optional[_Failure]:
        """A failure tuple, or ``None`` when the edit is accepted."""
        try:
            if self.level == "fast":
                verify_blocks(fn, snapshot.touched_blocks())
            else:
                verify_function(fn)
        except DeadlineExceeded:
            raise
        except VerificationError as error:
            return ("verifier", str(error), None, None, None)
        except Exception as error:
            # The verifier is hardened against corrupt IR, but a gate
            # must never let a diagnostic crash masquerade as a commit.
            return (
                "verifier",
                f"verifier crashed: {type(error).__name__}: {error}",
                None, None, None,
            )
        if self.level in ("safe", "strict"):
            failure = self._check_semantics(fn)
            if failure is not None:
                return failure
        if self.level == "strict":
            failure = self._check_parity(fn)
            if failure is not None:
                return failure
        return None

    def _check_semantics(self, fn: Function) -> Optional[_Failure]:
        reference = self._reference.get(fn.name)
        module = fn.module
        if not reference or module is None:
            return None
        try:
            program = program_for(module, self.evaluator)
        except DeadlineExceeded:
            raise
        except Exception as error:
            return (
                "semantics",
                "evaluator setup failed on candidate: "
                f"{type(error).__name__}: {error}",
                None, None, None,
            )
        for vector, expected in reference:
            try:
                actual = observe_call(
                    module,
                    fn.name,
                    vector,
                    step_limit=self.step_limit,
                    evaluator=self.evaluator,
                    program=program,
                )
            except DeadlineExceeded:
                raise
            except Exception as error:
                return (
                    "semantics",
                    f"evaluator error on candidate ({vector.describe()}): "
                    f"{type(error).__name__}: {error}",
                    vector, expected, None,
                )
            detail = compare_observations(expected, actual)
            if detail is not None:
                return (
                    "semantics",
                    f"{vector.describe()}: {detail}",
                    vector, expected, actual,
                )
        return None

    def _check_parity(self, fn: Function) -> Optional[_Failure]:
        reference = self._reference.get(fn.name)
        module = fn.module
        if not reference or module is None:
            return None
        try:
            compiled_program = program_for(module, "compiled")
        except DeadlineExceeded:
            raise
        except Exception as error:
            return (
                "parity",
                "compiling evaluator rejected candidate: "
                f"{type(error).__name__}: {error}",
                None, None, None,
            )
        for vector, _ in reference:
            observed: Dict[str, Observation] = {}
            for backend, program in (
                ("interp", None), ("compiled", compiled_program)
            ):
                try:
                    observed[backend] = observe_call(
                        module,
                        fn.name,
                        vector,
                        step_limit=self.step_limit,
                        evaluator=backend,
                        program=program,
                    )
                except DeadlineExceeded:
                    raise
                except Exception as error:
                    return (
                        "parity",
                        f"{backend} evaluator error ({vector.describe()}): "
                        f"{type(error).__name__}: {error}",
                        vector, None, None,
                    )
            interp_obs = observed["interp"]
            compiled_obs = observed["compiled"]
            detail = compare_observations(interp_obs, compiled_obs)
            if (
                detail is None
                and interp_obs.status == "ok"
                and compiled_obs.status == "ok"
                and interp_obs.steps != compiled_obs.steps
            ):
                detail = (
                    f"step counts diverge: interp={interp_obs.steps} "
                    f"compiled={compiled_obs.steps}"
                )
            if detail is not None:
                return (
                    "parity",
                    f"interp vs compiled on {vector.describe()}: {detail}",
                    vector, interp_obs, compiled_obs,
                )
        return None

    # -- rollback + reporting ----------------------------------------------

    def _rollback(
        self,
        fn: Function,
        snapshot: FunctionSnapshot,
        pass_name: str,
        kind: str,
        detail: str,
        replay: Optional[Callable[[Function], object]],
        vector: Optional[ArgumentVector] = None,
        expected: Optional[Observation] = None,
        actual: Optional[Observation] = None,
    ) -> GuardReport:
        module = fn.module
        # Capture the rejected IR before restore wipes it.  Printing
        # corrupt IR can itself fail; the rollback must not.
        try:
            after_fn_text = print_function(fn)
        except Exception:
            after_fn_text = "; <rejected IR unprintable>"
        try:
            after_module_text = (
                print_module(module) if module is not None else after_fn_text
            )
        except Exception:
            after_module_text = after_fn_text
        snapshot.restore()
        before_fn_text = print_function(fn)
        report = GuardReport(
            pass_name=pass_name,
            function=fn.name,
            failure_kind=kind,
            detail=detail,
            ir_diff=unified_ir_diff(
                before_fn_text, after_fn_text, f"@{fn.name}"
            ),
            level=self.level,
        )
        if self.guard_dir:
            self._write_bundle(
                report, fn, after_module_text, replay,
                vector=vector, expected=expected, actual=actual,
            )
        self.reports.append(report)
        return report

    def _write_bundle(
        self,
        report: GuardReport,
        fn: Function,
        after_module_text: str,
        replay: Optional[Callable[[Function], object]],
        vector: Optional[ArgumentVector],
        expected: Optional[Observation],
        actual: Optional[Observation],
    ) -> None:
        module = fn.module
        try:
            before_module_text = (
                print_module(module)
                if module is not None
                else print_function(fn)
            )
        except Exception:
            return  # restored IR unprintable: nothing useful to persist
        reference = self._reference.get(fn.name) or []
        if vector is None:
            vector = reference[0][0] if reference else ArgumentVector(())
        if expected is None:
            expected = reference[0][1] if reference else Observation("ok")
        if actual is None:
            trap = (
                "invalid-ir"
                if report.failure_kind == "verifier"
                else f"guard-{report.failure_kind}"
            )
            actual = Observation(status="trap", trap_kind=trap)
        record = MismatchRecord(
            fn_name=fn.name,
            stage=report.pass_name,
            vector=vector,
            detail=report.detail,
            ir_before=before_module_text,
            ir_after=after_module_text,
            expected=expected,
            actual=actual,
            origin=f"guard level={self.level}",
        )
        minimized = record
        if replay is not None:
            # Replay with fault injection suppressed: the minimizer must
            # shrink the *pass's* misbehaviour, not keep re-rolling the
            # injection dice (whose hit counters have moved on anyway).
            stages = [
                (report.pass_name, function_stage(fn.name, replay))
            ]
            try:
                with active_plan(None):
                    minimized = minimize_record(
                        record,
                        stages,
                        step_limit=self.step_limit,
                        evaluator=self.evaluator,
                    )
            except Exception:
                minimized = record
        if minimized is record:
            record.notes.append(
                "not minimized: failure did not reproduce on replay "
                "(transient or injected fault)"
                if replay is not None
                else "not minimized: no deterministic replay available"
            )
        write_guard_bundle(report, minimized.to_text(), self.guard_dir)

    # -- reference capture -------------------------------------------------

    def _capture_reference(self, fn: Function) -> _Reference:
        module = fn.module
        if module is None or fn.is_declaration:
            return None
        try:
            vectors = make_argument_vectors(
                fn, self._vector_seed(fn.name), self.vectors
            )
        except ValueError:
            return None  # exotic signature: degrade to verification only
        try:
            program = program_for(module, self.evaluator)
        except DeadlineExceeded:
            raise
        except Exception:
            return None
        reference: List[Tuple[ArgumentVector, Observation]] = []
        for vector in vectors:
            try:
                observation = observe_call(
                    module,
                    fn.name,
                    vector,
                    step_limit=self.step_limit,
                    evaluator=self.evaluator,
                    program=program,
                )
            except DeadlineExceeded:
                raise
            except Exception:
                return None
            reference.append((vector, observation))
        return reference

    def _vector_seed(self, fn_name: str) -> int:
        material = fn_name.encode("utf-8")
        return (self.seed * 1_000_003 + zlib.crc32(material)) & 0x7FFFFFFF
