"""Online translation validation for transactional passes.

Public surface::

    from repro.validation import (
        Validator, VALIDATION_LEVELS, function_stage, evidence_check,
        GuardReport, FAILURE_KINDS,
        unified_ir_diff, write_guard_bundle,
    )

The :class:`Validator` gates every transaction the transactional pass
manager (``repro.transforms.txn``) and the RoLAG worklist open; see
``docs/robustness.md`` for the ladder and the rollback contract.

Import note: this package pulls in ``repro.difftest.oracle`` and
``repro.difftest.bisect`` directly (not the ``repro.difftest`` package,
whose ``__init__`` imports the runner and with it the RoLAG pipeline).
Callers inside ``repro.rolag`` must import this package lazily.
"""

from .gate import (
    VALIDATION_LEVELS,
    Validator,
    evidence_check,
    function_stage,
)
from .report import (
    FAILURE_KINDS,
    GuardReport,
    unified_ir_diff,
    write_guard_bundle,
)

__all__ = [
    "FAILURE_KINDS",
    "GuardReport",
    "VALIDATION_LEVELS",
    "Validator",
    "evidence_check",
    "function_stage",
    "unified_ir_diff",
    "write_guard_bundle",
]
