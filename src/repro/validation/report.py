"""Structured guard-failure reports and on-disk repro bundles.

A :class:`GuardReport` is the durable record of one rolled-back
transaction: which pass, which function, what kind of gate tripped,
a human-readable detail and a unified IR diff of the rejected edit.
Reports are plain-dict serializable so they travel from worker
processes back to the driver (and into the memo cache) unchanged.

:func:`write_guard_bundle` persists the matching repro: a
self-describing ``.ll`` (the difftest :class:`MismatchRecord` format,
minimized when the failure replays deterministically) plus a ``.json``
sidecar with the report.  Bundle filenames are content-addressed, so
concurrent workers and warm-cache reruns write identical paths without
coordination.
"""

from __future__ import annotations

import difflib
import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

#: The gate outcomes a report can carry.
FAILURE_KINDS = ("verifier", "semantics", "parity", "exception")

#: Unified diffs beyond this many lines are truncated (the full before
#: IR lives in the repro bundle anyway).
_MAX_DIFF_LINES = 120


@dataclass
class GuardReport:
    """One rolled-back transaction, in portable form."""

    #: The pass (or RoLAG decision) whose output was rejected.
    pass_name: str
    #: Function the transaction ran over.
    function: str
    #: One of :data:`FAILURE_KINDS`.
    failure_kind: str
    #: Human-readable gate verdict (verifier message, oracle mismatch,
    #: exception text, ...).
    detail: str
    #: Unified diff best-known-good -> rejected IR (may be truncated).
    ir_diff: str = ""
    #: Repro bundle path, when one was written.
    repro_path: Optional[str] = None
    #: Validation level that tripped the gate.
    level: str = "fast"
    notes: list = field(default_factory=list)

    def summary(self) -> str:
        """One log line: pass, function, kind, repro location."""
        where = self.repro_path or "-"
        return (
            f"pass {self.pass_name!r} on @{self.function} "
            f"[{self.failure_kind}] rolled back (level={self.level}, "
            f"repro: {where}): {self.detail}"
        )

    def to_json_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "GuardReport":
        known = {f: data.get(f) for f in (
            "pass_name", "function", "failure_kind", "detail", "ir_diff",
            "repro_path", "level", "notes",
        )}
        known["ir_diff"] = known.get("ir_diff") or ""
        known["level"] = known.get("level") or "fast"
        known["notes"] = list(known.get("notes") or [])
        return cls(**known)


def unified_ir_diff(before: str, after: str, label: str = "") -> str:
    """A unified diff of two IR texts, truncated for report transport."""
    lines = list(
        difflib.unified_diff(
            before.splitlines(),
            after.splitlines(),
            fromfile=f"{label or 'ir'} (best known good)",
            tofile=f"{label or 'ir'} (rejected)",
            lineterm="",
        )
    )
    if len(lines) > _MAX_DIFF_LINES:
        dropped = len(lines) - _MAX_DIFF_LINES
        lines = lines[:_MAX_DIFF_LINES] + [f"... ({dropped} lines truncated)"]
    return "\n".join(lines)


def write_guard_bundle(
    report: GuardReport, repro_text: str, guard_dir: str
) -> Optional[str]:
    """Write the ``.ll`` repro + ``.json`` report pair under ``guard_dir``.

    Returns the ``.ll`` path, or ``None`` when the directory cannot be
    created or written (a lost repro must never take the run down).
    The filename embeds a content hash: deterministic for a
    deterministic failure, collision-free across workers.
    """
    try:
        os.makedirs(guard_dir, exist_ok=True)
        digest = hashlib.sha256(repro_text.encode("utf-8")).hexdigest()[:10]
        safe_pass = report.pass_name.replace(":", "_").replace("/", "_")
        stem = f"{report.function}_{safe_pass}_{digest}"
        ll_path = os.path.join(guard_dir, f"{stem}.ll")
        with open(ll_path, "w", encoding="utf-8") as handle:
            handle.write(repro_text)
        report.repro_path = ll_path
        with open(
            os.path.join(guard_dir, f"{stem}.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(report.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return ll_path
    except OSError:
        return None
