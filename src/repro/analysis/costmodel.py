"""Code-size cost model.

Plays the role of LLVM's target-transformation-interface (TTI) code-size
model (paper Section IV-F): estimates the number of bytes each IR
instruction contributes to the final x86-64 binary when compiled with
``-Os``.  The absolute values matter less than the relative weights --
the profitability analysis only compares two IR regions lowered with
the same table -- but the defaults are calibrated against typical
x86-64 encodings so the byte totals are plausible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import DataLayout, DEFAULT_LAYOUT
from ..ir.values import ConstantFloat, ConstantInt, GlobalVariable


#: Default per-opcode byte estimates (x86-64, -Os flavoured).
DEFAULT_SIZE_TABLE: Dict[str, int] = {
    "add": 3, "sub": 3, "and": 3, "or": 3, "xor": 3,
    "mul": 4,
    "sdiv": 7, "udiv": 6, "srem": 7, "urem": 6,
    "shl": 3, "lshr": 3, "ashr": 3,
    "fadd": 4, "fsub": 4, "fmul": 4, "fdiv": 4, "frem": 10,
    "icmp": 3, "fcmp": 4,
    "select": 6,
    "trunc": 0, "zext": 3, "sext": 3, "bitcast": 0,
    "ptrtoint": 0, "inttoptr": 0,
    "sitofp": 4, "uitofp": 5, "fptosi": 4, "fptoui": 5,
    "fpext": 4, "fptrunc": 4,
    "gep": 4,
    "load": 4, "store": 4,
    "call": 5,
    "phi": 2,
    "br": 2, "br.cond": 2,
    "ret": 1,
    "alloca": 0,
    "unreachable": 1,
}

#: Fixed per-function overhead (prologue/epilogue, alignment padding).
FUNCTION_OVERHEAD = 4

#: Extra bytes for materialising a reference to a global (RIP-relative lea).
GLOBAL_OPERAND_EXTRA = 3

#: Extra bytes per call argument (register shuffling / immediates).
CALL_ARG_EXTRA = 2


@dataclass
class CodeSizeCostModel:
    """Estimates IR-to-binary size, byte by byte.

    The table is a plain attribute so experiments can perturb it
    (e.g. to study profitability false positives, paper Section V-A).
    """

    table: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_SIZE_TABLE))
    layout: DataLayout = field(default_factory=lambda: DEFAULT_LAYOUT)

    def instruction_cost(self, inst: Instruction) -> int:
        """Estimated bytes this instruction adds to the binary."""
        if isinstance(inst, GetElementPtr):
            if self._gep_is_folded(inst):
                return 0
            return self.table["gep"] + self._global_extra(inst)
        if isinstance(inst, (Load, Store)):
            base = self.table[inst.opcode]
            if isinstance(inst, Store) and isinstance(
                inst.value, (ConstantInt, ConstantFloat)
            ):
                base += 3  # immediate operand
            return base + self._global_extra(inst)
        if isinstance(inst, Call):
            return (
                self.table["call"]
                + CALL_ARG_EXTRA * len(inst.args)
                + self._global_extra(inst)
            )
        if isinstance(inst, Br):
            return self.table["br.cond" if inst.is_conditional else "br"]
        if isinstance(inst, BinaryOp):
            cost = self.table[inst.opcode]
            for op in inst.operands:
                if isinstance(op, ConstantInt) and abs(op.value) > 0x7FFFFFFF:
                    cost += 5  # movabs needed
            return cost + self._global_extra(inst)
        if isinstance(inst, (ICmp, FCmp)):
            return self.table[inst.opcode] + self._global_extra(inst)
        if isinstance(inst, Cast):
            return self.table[inst.opcode]
        if isinstance(inst, Select):
            return self.table["select"]
        if isinstance(inst, Phi):
            return self.table["phi"]
        if isinstance(inst, Ret):
            return self.table["ret"]
        if isinstance(inst, Alloca):
            return self.table["alloca"]
        if isinstance(inst, Unreachable):
            return self.table["unreachable"]
        raise ValueError(f"no cost for {inst!r}")

    @staticmethod
    def _gep_is_folded(gep: GetElementPtr) -> bool:
        """GEPs whose only uses are memory addressing fold to 0 bytes."""
        if not gep.uses:
            return True
        for use in gep.uses:
            user = use.user
            if isinstance(user, Load) and user.pointer is gep:
                continue
            if isinstance(user, Store) and user.pointer is gep:
                continue
            return False
        return True

    @staticmethod
    def _global_extra(inst: Instruction) -> int:
        extra = 0
        for op in inst.operands:
            if isinstance(op, GlobalVariable):
                extra += GLOBAL_OPERAND_EXTRA
        return extra

    def block_cost(self, block: BasicBlock) -> int:
        """Summed instruction bytes of one block."""
        return sum(self.instruction_cost(inst) for inst in block.instructions)

    def instructions_cost(self, instructions) -> int:
        """Summed bytes of an arbitrary instruction collection."""
        return sum(self.instruction_cost(inst) for inst in instructions)

    def function_cost(self, fn: Function) -> int:
        """Function bytes: prologue overhead plus every block."""
        if fn.is_declaration:
            return 0
        return FUNCTION_OVERHEAD + sum(
            self.block_cost(block) for block in fn.blocks
        )

    def module_text_size(self, module: Module) -> int:
        """Text bytes over all defined functions."""
        return sum(self.function_cost(fn) for fn in module.functions)

    def module_data_size(self, module: Module) -> int:
        """Initialised global data bytes."""
        total = 0
        for gv in module.globals:
            if gv.initializer is not None:
                total += self.layout.size_of(gv.value_type)
        return total
