"""Dominator tree and dominance frontiers.

Implements the iterative algorithm of Cooper, Harvey and Kennedy
("A Simple, Fast Dominance Algorithm") over a reverse-postorder
numbering of the CFG.  Used by the verifier (SSA dominance checks) and
by :mod:`repro.transforms.mem2reg` (phi placement).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.instructions import Instruction, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import Value


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Blocks reachable from entry, in reverse postorder."""
    if not fn.blocks:
        return []
    visited: Set[int] = set()
    order: List[BasicBlock] = []

    # Iterative DFS to avoid recursion limits on deep CFGs.
    stack: List[tuple] = [(fn.entry, iter(fn.entry.successors()))]
    visited.add(id(fn.entry))
    while stack:
        block, successors = stack[-1]
        advanced = False
        for succ in successors:
            if id(succ) not in visited:
                visited.add(id(succ))
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


class DominatorTree:
    """Immediate-dominator tree for the reachable CFG of a function."""

    def __init__(self, fn: Function) -> None:
        self.function = fn
        self.order = reverse_postorder(fn)
        self._number: Dict[int, int] = {
            id(block): i for i, block in enumerate(self.order)
        }
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()
        self._depth: Dict[int, int] = {}
        self._compute_depths()

    def _compute(self) -> None:
        if not self.order:
            return
        entry = self.order[0]
        idom: Dict[int, BasicBlock] = {id(entry): entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while self._number[id(a)] > self._number[id(b)]:
                    a = idom[id(a)]
                while self._number[id(b)] > self._number[id(a)]:
                    b = idom[id(b)]
            return a

        changed = True
        while changed:
            changed = False
            for block in self.order[1:]:
                new_idom: Optional[BasicBlock] = None
                for pred in block.predecessors():
                    if id(pred) not in self._number:
                        continue  # unreachable predecessor
                    if id(pred) in idom:
                        if new_idom is None:
                            new_idom = pred
                        else:
                            new_idom = intersect(pred, new_idom)
                if new_idom is not None and idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True

        for block in self.order:
            if block is entry:
                self.idom[block] = None
            else:
                self.idom[block] = idom.get(id(block))

    def _compute_depths(self) -> None:
        for block in self.order:
            depth = 0
            cursor: Optional[BasicBlock] = self.idom.get(block)
            while cursor is not None:
                depth += 1
                cursor = self.idom.get(cursor)
            self._depth[id(block)] = depth

    def is_reachable(self, block: BasicBlock) -> bool:
        """Whether ``block`` is reachable from entry."""
        return id(block) in self._number

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Whether block ``a`` dominates block ``b`` (reflexive)."""
        if not (self.is_reachable(a) and self.is_reachable(b)):
            return False
        cursor: Optional[BasicBlock] = b
        while cursor is not None:
            if cursor is a:
                return True
            cursor = self.idom.get(cursor)
        return False

    def strictly_dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Dominance excluding ``a is b``."""
        return a is not b and self.dominates_block(a, b)

    def dominates(self, definition: Value, use_site: Instruction) -> bool:
        """Whether a value definition dominates a use site.

        Arguments, constants and globals dominate everything.  For an
        instruction definition the use site must come after it in the
        same block or in a dominated block.  Phi uses are checked at the
        end of the corresponding incoming block.
        """
        if not isinstance(definition, Instruction):
            return True
        def_block = definition.parent
        use_block = use_site.parent
        if def_block is None or use_block is None:
            return False

        if isinstance(use_site, Phi):
            # Each phi use must dominate the end of its incoming block.
            ok = True
            for value, pred in use_site.incoming:
                if value is definition:
                    if not self.dominates_block(def_block, pred):
                        ok = False
            return ok

        if def_block is use_block:
            instructions = def_block.instructions
            return instructions.index(definition) < instructions.index(use_site)
        return self.strictly_dominates_block(def_block, use_block)

    def dominance_frontiers(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Dominance frontier of every reachable block.

        Frontier members are listed in discovery order rather than a
        set, so passes that allocate names while walking frontiers
        (mem2reg) produce byte-identical IR run over run.
        """
        frontiers: Dict[BasicBlock, List[BasicBlock]] = {
            block: [] for block in self.order
        }
        members: Dict[int, Set[int]] = {id(block): set() for block in self.order}
        for block in self.order:
            preds = [p for p in block.predecessors() if self.is_reachable(p)]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom[block]:
                    if id(block) not in members[id(runner)]:
                        members[id(runner)].add(id(block))
                        frontiers[runner].append(block)
                    runner = self.idom.get(runner)
        return frontiers
