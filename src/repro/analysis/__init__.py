"""Program analyses: dominators, alias, dependences, loops, cost model."""

from .alias import AliasAnalysis, AliasResult, constant_offset, underlying_object
from .costmodel import (
    CodeSizeCostModel,
    DEFAULT_SIZE_TABLE,
    FUNCTION_OVERHEAD,
)
from .deps import DependenceGraph
from .icache import CodeLayout, ICacheSim, simulate_icache
from .domtree import DominatorTree, reverse_postorder
from .loopinfo import CountedLoop, Loop, find_loops, match_counted_loop

__all__ = [
    "AliasAnalysis",
    "AliasResult",
    "CodeSizeCostModel",
    "CountedLoop",
    "DEFAULT_SIZE_TABLE",
    "CodeLayout",
    "DependenceGraph",
    "ICacheSim",
    "DominatorTree",
    "FUNCTION_OVERHEAD",
    "Loop",
    "constant_offset",
    "find_loops",
    "match_counted_loop",
    "reverse_postorder",
    "simulate_icache",
    "underlying_object",
]
