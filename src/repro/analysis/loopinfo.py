"""Natural-loop detection and counted-loop pattern matching.

Used by the unroller (to find loops to unroll for the TSVC experiment)
and by the LLVM-style reroll baseline (which only looks at single-block
loops with a basic induction variable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..ir.instructions import BinaryOp, Br, ICmp, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import ConstantInt, Value
from .domtree import DominatorTree


@dataclass
class Loop:
    """A natural loop: header plus the blocks of its body."""

    header: BasicBlock
    blocks: List[BasicBlock]
    latches: List[BasicBlock]

    @property
    def is_single_block(self) -> bool:
        """Whether header and latch are the same block."""
        return len(self.blocks) == 1

    def __contains__(self, block: BasicBlock) -> bool:
        return block in self.blocks


def find_loops(fn: Function) -> List[Loop]:
    """All natural loops in ``fn`` (innermost loops included separately)."""
    domtree = DominatorTree(fn)
    headers = {}
    for block in domtree.order:
        for succ in block.successors():
            if domtree.dominates_block(succ, block):
                headers.setdefault(id(succ), (succ, []))[1].append(block)

    loops = []
    for _, (header, latches) in headers.items():
        body: Set[int] = {id(header)}
        blocks = [header]
        work = [l for l in latches]
        while work:
            block = work.pop()
            if id(block) in body:
                continue
            body.add(id(block))
            blocks.append(block)
            for pred in block.predecessors():
                if id(pred) not in body and domtree.is_reachable(pred):
                    work.append(pred)
        loops.append(Loop(header, blocks, latches))
    return loops


@dataclass
class CountedLoop:
    """A single-block loop of the canonical rolled shape.

    ::

        loop:
          %iv = phi [ %start, %pre ], [ %iv.next, %loop ]
          ...body...
          %iv.next = add %iv, <step>
          %cond = icmp <pred> %iv.next, <bound>
          br %cond, loop, exit   (or exit, loop)
    """

    loop: Loop
    preheader: BasicBlock
    exit: BasicBlock
    iv: Phi
    start: Value
    step: int
    iv_next: BinaryOp
    cmp: ICmp
    bound: Value
    exit_on_true: bool

    @property
    def block(self) -> BasicBlock:
        """The loop's single block."""
        return self.loop.header

    def trip_count(self) -> Optional[int]:
        """Static trip count, when start/step/bound are all constants."""
        if not isinstance(self.start, ConstantInt):
            return None
        if not isinstance(self.bound, ConstantInt):
            return None
        start, bound, step = self.start.value, self.bound.value, self.step
        pred = self.cmp.predicate
        if self.exit_on_true:
            # Loop continues while cond is false; only `eq` is common.
            if pred == "eq":
                if step == 0 or (bound - start) % step != 0:
                    return None
                count = (bound - start) // step
                return count if count > 0 else None
            return None
        if pred in ("slt", "ult"):
            if step <= 0:
                return None
            count = max(0, -(-(bound - start) // step))
            return count if count > 0 else None
        if pred in ("sle", "ule"):
            if step <= 0:
                return None
            count = max(0, -(-(bound - start + 1) // step))
            return count if count > 0 else None
        if pred in ("sgt", "ugt"):
            if step >= 0:
                return None
            count = max(0, -(-(start - bound) // -step))
            return count if count > 0 else None
        if pred in ("sge", "uge"):
            if step >= 0:
                return None
            count = max(0, -(-(start - bound + 1) // -step))
            return count if count > 0 else None
        if pred == "ne":
            if step == 0 or (bound - start) % step != 0:
                return None
            count = (bound - start) // step
            return count if count > 0 else None
        return None


def match_counted_loop(loop: Loop) -> Optional[CountedLoop]:
    """Match a single-block loop against the canonical counted shape."""
    if not loop.is_single_block:
        return None
    block = loop.header
    term = block.terminator
    if not isinstance(term, Br) or not term.is_conditional:
        return None
    succs = term.successors()
    if block in succs:
        exit_block = succs[1] if succs[0] is block else succs[0]
        exit_on_true = succs[1] is block
    else:
        return None

    preds = [p for p in block.predecessors() if p is not block]
    if len(preds) != 1:
        return None
    preheader = preds[0]

    cond = term.condition
    if not isinstance(cond, ICmp) or cond.parent is not block:
        return None

    # Find the induction phi: phi whose latch value is `add phi, const`.
    for phi in block.phis():
        if len(phi.incoming) != 2:
            continue
        latch_value = phi.incoming_for(block)
        start = phi.incoming_for(preheader)
        if latch_value is None or start is None:
            continue
        if not isinstance(latch_value, BinaryOp):
            continue
        if latch_value.opcode not in ("add", "sub"):
            continue
        lhs, rhs = latch_value.operands
        if lhs is phi and isinstance(rhs, ConstantInt):
            step = rhs.value
        elif rhs is phi and isinstance(lhs, ConstantInt) and latch_value.opcode == "add":
            step = lhs.value
        else:
            continue
        if latch_value.opcode == "sub":
            step = -step
        # The compare must involve iv or iv.next against a loop-invariant bound.
        cmp_lhs, cmp_rhs = cond.operands
        for candidate, bound in ((cmp_lhs, cmp_rhs), (cmp_rhs, cmp_lhs)):
            if candidate is latch_value or candidate is phi:
                if isinstance(bound, ConstantInt) or _is_invariant(bound, block):
                    if candidate is phi:
                        # Normalise: model compares on iv as compares on
                        # iv.next with an adjusted bound only for constants.
                        continue
                    return CountedLoop(
                        loop=loop,
                        preheader=preheader,
                        exit=exit_block,
                        iv=phi,
                        start=start,
                        step=step,
                        iv_next=latch_value,
                        cmp=cond,
                        bound=bound,
                        exit_on_true=exit_on_true,
                    )
    return None


def _is_invariant(value: Value, block: BasicBlock) -> bool:
    from ..ir.instructions import Instruction

    return not (isinstance(value, Instruction) and value.parent is block)
