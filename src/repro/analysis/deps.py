"""Block-level dependence graph.

The scheduling analysis of RoLAG (paper Section IV-D) must prove that
reordering a basic block into pre-loop / loop-iterations / post-loop
order preserves semantics.  That holds iff every dependence edge of the
original block still points forward in the new order.  This module
computes those edges: SSA def-use edges plus memory/side-effect
ordering edges refined by alias analysis.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.instructions import Call, Instruction, Load, Store
from ..ir.module import BasicBlock
from ..ir.types import DataLayout, DEFAULT_LAYOUT
from .alias import AliasAnalysis, AliasResult


def _access_kind(inst: Instruction) -> Tuple[bool, bool]:
    """(reads, writes) memory classification for ordering purposes."""
    if isinstance(inst, Load):
        return True, False
    if isinstance(inst, Store):
        return False, True
    if isinstance(inst, Call):
        if inst.is_readnone():
            return False, False
        if inst.is_readonly():
            return True, False
        return True, True
    return False, False


class DependenceGraph:
    """Pairwise must-precede relation over one basic block.

    ``edges[j]`` holds the set of earlier indices i such that the
    instruction at i must execute before the instruction at j.
    """

    def __init__(
        self,
        block: BasicBlock,
        aa: AliasAnalysis,
        layout: DataLayout = DEFAULT_LAYOUT,
    ) -> None:
        self.block = block
        self.instructions: List[Instruction] = list(block.instructions)
        self.index: Dict[int, int] = {
            id(inst): i for i, inst in enumerate(self.instructions)
        }
        self.edges: List[Set[int]] = [set() for _ in self.instructions]
        self._build(aa, layout)

    def _build(self, aa: AliasAnalysis, layout: DataLayout) -> None:
        insts = self.instructions

        # SSA def-use edges within the block.
        for j, inst in enumerate(insts):
            for op in inst.operands:
                i = self.index.get(id(op))
                if i is not None and i < j:
                    self.edges[j].add(i)

        # Memory ordering edges.  Classify and locate each access once
        # up front: the pair loop below is quadratic in the number of
        # memory operations, so per-pair re-derivation dominates the
        # build on store-heavy (i.e. rollable) blocks.
        mem_ops = []
        for i, inst in enumerate(insts):
            reads, writes = _access_kind(inst)
            if reads or writes:
                mem_ops.append((i, inst, writes, self._location(inst, layout)))
        alias = aa.alias
        for a_pos in range(len(mem_ops)):
            i, inst_i, writes_i, loc_i = mem_ops[a_pos]
            for b_pos in range(a_pos + 1, len(mem_ops)):
                j, inst_j, writes_j, loc_j = mem_ops[b_pos]
                if not (writes_i or writes_j):
                    continue  # read-read never conflicts
                if loc_i is None or loc_j is None:
                    # A call with unknown effects conflicts with
                    # everything except the read-read pairs above.
                    self.edges[j].add(i)
                elif alias(*loc_i, *loc_j) is not AliasResult.NO:
                    self.edges[j].add(i)

    @staticmethod
    def _may_conflict(
        a: Instruction,
        b: Instruction,
        aa: AliasAnalysis,
        layout: DataLayout,
    ) -> bool:
        loc_a = DependenceGraph._location(a, layout)
        loc_b = DependenceGraph._location(b, layout)
        if loc_a is None or loc_b is None:
            # A call with unknown effects conflicts with everything,
            # except pairs already filtered (read-read).
            return True
        (ptr_a, size_a), (ptr_b, size_b) = loc_a, loc_b
        return aa.alias(ptr_a, size_a, ptr_b, size_b) is not AliasResult.NO

    @staticmethod
    def _location(inst: Instruction, layout: DataLayout):
        if isinstance(inst, Load):
            return inst.pointer, layout.size_of(inst.type)
        if isinstance(inst, Store):
            return inst.pointer, layout.size_of(inst.value.type)
        return None  # call: unknown location

    def must_precede(self, a: Instruction, b: Instruction) -> bool:
        """Direct dependence edge a -> b (not transitive)."""
        i = self.index[id(a)]
        j = self.index[id(b)]
        if i > j:
            i, j = j, i
        return i in self.edges[j]

    def respects(self, new_order: List[Instruction]) -> bool:
        """Whether ``new_order`` preserves every dependence edge."""
        position = {id(inst): p for p, inst in enumerate(new_order)}
        for j, preds in enumerate(self.edges):
            pj = position.get(id(self.instructions[j]))
            if pj is None:
                continue
            for i in preds:
                pi = position.get(id(self.instructions[i]))
                if pi is not None and pi >= pj:
                    return False
        return True

    def predecessors_of(self, inst: Instruction) -> List[Instruction]:
        """Instructions with a direct edge into ``inst``."""
        j = self.index[id(inst)]
        return [self.instructions[i] for i in sorted(self.edges[j])]

    def transitive_predecessors(self, roots: List[Instruction]) -> Set[int]:
        """Indices of all instructions the roots transitively depend on."""
        result: Set[int] = set()
        work = [self.index[id(r)] for r in roots if id(r) in self.index]
        while work:
            j = work.pop()
            for i in self.edges[j]:
                if i not in result:
                    result.add(i)
                    work.append(i)
        return result
