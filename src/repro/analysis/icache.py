"""Instruction-cache simulation (paper Section VII future work).

The paper closes with "we also plan to investigate [...] its impact on
the instruction cache."  This module provides the substrate: static
code is laid out at byte addresses using the code-size cost model
(functions packed back to back, instructions at their cumulative
offsets), and a set-associative i-cache with LRU replacement is driven
by the reference interpreter's dynamic instruction stream.

Smaller code ⇒ smaller footprint ⇒ fewer capacity misses: the
`bench_ext_icache` benchmark quantifies exactly that for rolled versus
straight-line code.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.instructions import Instruction
from ..ir.module import Module
from .costmodel import CodeSizeCostModel, FUNCTION_OVERHEAD


@dataclass
class CodeLayout:
    """Byte addresses for every instruction of a module."""

    addresses: Dict[int, int]
    function_ranges: Dict[str, tuple]
    total_bytes: int

    @classmethod
    def assign(
        cls, module: Module, cost_model: Optional[CodeSizeCostModel] = None
    ) -> "CodeLayout":
        """Pack every defined function and record instruction addresses."""
        cm = cost_model or CodeSizeCostModel()
        addresses: Dict[int, int] = {}
        ranges: Dict[str, tuple] = {}
        cursor = 0
        for fn in module.functions:
            if fn.is_declaration:
                continue
            start = cursor
            cursor += FUNCTION_OVERHEAD
            for block in fn.blocks:
                for inst in block.instructions:
                    addresses[id(inst)] = cursor
                    cursor += cm.instruction_cost(inst)
            ranges[fn.name] = (start, cursor)
        return cls(addresses, ranges, cursor)


class ICacheSim:
    """A set-associative instruction cache with LRU replacement."""

    def __init__(
        self,
        layout: CodeLayout,
        size_bytes: int = 1024,
        line_bytes: int = 16,
        associativity: int = 2,
    ) -> None:
        if size_bytes % (line_bytes * associativity) != 0:
            raise ValueError("cache geometry does not divide evenly")
        self.layout = layout
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (line_bytes * associativity)
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access_address(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[index]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = True
        if len(ways) > self.associativity:
            ways.popitem(last=False)
        return False

    def hook(self, inst: Instruction) -> None:
        """Interpreter instruction hook: fetch the instruction's line."""
        address = self.layout.addresses.get(id(inst))
        if address is not None:
            self.access_address(address)

    @property
    def accesses(self) -> int:
        """Total fetches observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """misses / accesses (0.0 when idle)."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        """Clear contents and counters."""
        self.hits = 0
        self.misses = 0
        for ways in self._sets:
            ways.clear()


def simulate_icache(
    module: Module,
    entry: str,
    args=(),
    size_bytes: int = 1024,
    line_bytes: int = 16,
    associativity: int = 2,
    machine_setup=None,
) -> ICacheSim:
    """Lay out ``module``, run ``entry``, and return the driven cache."""
    from ..ir.interp import Machine

    layout = CodeLayout.assign(module)
    cache = ICacheSim(layout, size_bytes, line_bytes, associativity)
    machine = Machine(module, step_limit=50_000_000)
    machine.instruction_hook = cache.hook
    if machine_setup is not None:
        machine_setup(machine)
    machine.call(module.get_function(entry), list(args))
    return cache
