"""Lightweight alias analysis.

Good enough for the scheduling analysis of loop rolling: identifies the
*underlying object* of a pointer (alloca, global, argument, ...) and
tracks statically-known byte offsets through GEP chains, so that
accesses to distinct objects or to provably disjoint ranges of the same
object are recognised as independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Set, Tuple

from ..ir.instructions import Alloca, Call, Cast, GetElementPtr, Store
from ..ir.module import Function
from ..ir.types import ArrayType, DataLayout, DEFAULT_LAYOUT, StructType, Type
from ..ir.values import Argument, ConstantInt, GlobalVariable, Value


class AliasResult(Enum):
    """Outcome of an alias query."""

    NO = "no"
    MAY = "may"
    MUST = "must"


def underlying_object(pointer: Value) -> Value:
    """Strip GEPs and pointer casts down to the base object."""
    seen = 0
    while seen < 1000:
        seen += 1
        if isinstance(pointer, GetElementPtr):
            pointer = pointer.pointer
            continue
        if isinstance(pointer, Cast) and pointer.opcode == "bitcast":
            pointer = pointer.operands[0]
            continue
        return pointer
    return pointer


def constant_offset(
    pointer: Value, layout: DataLayout = DEFAULT_LAYOUT
) -> Optional[int]:
    """Byte offset of ``pointer`` from its underlying object, if constant."""
    offset = 0
    cursor = pointer
    while True:
        if isinstance(cursor, Cast) and cursor.opcode == "bitcast":
            cursor = cursor.operands[0]
            continue
        if isinstance(cursor, GetElementPtr):
            step = _gep_constant_offset(cursor, layout)
            if step is None:
                return None
            offset += step
            cursor = cursor.pointer
            continue
        return offset


def _gep_constant_offset(gep: GetElementPtr, layout: DataLayout) -> Optional[int]:
    indices = gep.indices
    if not all(isinstance(i, ConstantInt) for i in indices):
        return None
    offset = indices[0].value * layout.size_of(gep.source_type)
    ty: Type = gep.source_type
    for idx in indices[1:]:
        index = idx.value
        if isinstance(ty, ArrayType):
            offset += index * layout.size_of(ty.element)
            ty = ty.element
        elif isinstance(ty, StructType):
            offset += layout.field_offset(ty, index)
            ty = ty.fields[index]
        else:
            return None
    return offset


def _is_identified_object(value: Value) -> bool:
    return isinstance(value, (Alloca, GlobalVariable))


class AliasAnalysis:
    """Per-function alias queries with escaped-alloca tracking."""

    def __init__(self, fn: Function, layout: DataLayout = DEFAULT_LAYOUT) -> None:
        self.function = fn
        self.layout = layout
        self._escaped: Set[int] = self._compute_escaped(fn)
        # Memo tables keyed by value identity.  Valid for the lifetime
        # of this analysis because queries run while the function body
        # is unmodified (the rolling pipeline rebuilds the analysis
        # after any mutation).  Each entry also keeps the queried value
        # alive so a recycled id() can never resurrect a stale answer.
        self._bases: Dict[int, Tuple[Value, Value]] = {}
        self._offsets: Dict[int, Tuple[Value, Optional[int]]] = {}
        self._queries: Dict[Tuple[int, int, int, int], AliasResult] = {}

    def base_of(self, pointer: Value) -> Value:
        """Memoized :func:`underlying_object`."""
        key = id(pointer)
        hit = self._bases.get(key)
        if hit is None:
            hit = (pointer, underlying_object(pointer))
            self._bases[key] = hit
        return hit[1]

    def offset_of(self, pointer: Value) -> Optional[int]:
        """Memoized :func:`constant_offset` (layout-consistent)."""
        key = id(pointer)
        hit = self._offsets.get(key)
        if hit is None:
            hit = (pointer, constant_offset(pointer, self.layout))
            self._offsets[key] = hit
        return hit[1]

    @staticmethod
    def _compute_escaped(fn: Function) -> Set[int]:
        """Allocas whose address may be visible outside this function."""
        escaped: Set[int] = set()
        for inst in fn.instructions():
            if isinstance(inst, Store):
                base = underlying_object(inst.value)
                if isinstance(base, Alloca):
                    escaped.add(id(base))
            elif isinstance(inst, Call):
                for arg in inst.args:
                    if arg.type.is_pointer:
                        base = underlying_object(arg)
                        if isinstance(base, Alloca):
                            escaped.add(id(base))
        return escaped

    def alias(
        self,
        ptr_a: Value,
        size_a: int,
        ptr_b: Value,
        size_b: int,
    ) -> AliasResult:
        """Do ``[ptr_a, ptr_a+size_a)`` and ``[ptr_b, ptr_b+size_b)`` overlap?"""
        key = (id(ptr_a), size_a, id(ptr_b), size_b)
        cached = self._queries.get(key)
        if cached is not None:
            return cached
        result = self._alias_uncached(ptr_a, size_a, ptr_b, size_b)
        # The memoized base_of/offset_of entries already pin both
        # pointers, so the id-based key stays unambiguous.
        self._queries[key] = result
        self._queries[(id(ptr_b), size_b, id(ptr_a), size_a)] = result
        return result

    def _alias_uncached(
        self,
        ptr_a: Value,
        size_a: int,
        ptr_b: Value,
        size_b: int,
    ) -> AliasResult:
        base_a = self.base_of(ptr_a)
        base_b = self.base_of(ptr_b)

        if base_a is base_b:
            off_a = self.offset_of(ptr_a)
            off_b = self.offset_of(ptr_b)
            if off_a is None or off_b is None:
                return AliasResult.MAY
            if off_a == off_b and size_a == size_b:
                return AliasResult.MUST
            if off_a + size_a <= off_b or off_b + size_b <= off_a:
                return AliasResult.NO
            return AliasResult.MAY

        # Two distinct identified objects never overlap.
        if _is_identified_object(base_a) and _is_identified_object(base_b):
            return AliasResult.NO

        # A non-escaped alloca cannot alias anything the caller provided.
        for this, other in ((base_a, base_b), (base_b, base_a)):
            if isinstance(this, Alloca) and id(this) not in self._escaped:
                if isinstance(other, (Argument, GlobalVariable)):
                    return AliasResult.NO
                from ..ir.instructions import Load as _Load

                if isinstance(other, (Call, _Load)):
                    return AliasResult.NO

        return AliasResult.MAY
