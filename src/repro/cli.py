"""Command-line driver: compile, transform, measure, and run.

Usage::

    python -m repro input.c  --roll --size --emit-ir
    python -m repro input.ll --unroll 8 --reroll --size
    python -m repro input.c  --roll --loop-aware --run main 1 2
    python -m repro a.c b.c c.ll --roll --jobs 4 --cache-dir .rolag-cache
    python -m repro a.c b.c --roll --check-semantics
    python -m repro a.c b.c --roll --deadline 5 --retries 2 \
        --quarantine-file .rolag-quarantine.json
    python -m repro difftest --seed 0 --count 2000
    python -m repro bench --quick
    python -m repro chaos --seed 0 --rounds 4
    python -m repro serve --workers 2 --cache-dir .rolag-cache
    python -m repro client a.ll b.c -- --workers 2

Input ending in ``.ll`` is parsed as IR text; anything else goes
through the mini-C frontend (with the standard -Os-style cleanups
unless ``--no-opt`` is given).

With several inputs the batch path takes over: every module is
optimized through the parallel, memoizing driver (``repro.driver``),
``--jobs`` worker processes wide, with per-module results memoized
under ``--cache-dir`` unless ``--no-cache`` is given.

``repro difftest`` runs the differential-testing campaign instead:
fuzzed IR functions through the full pipeline, observed against the
reference interpreter, mismatches bisected to the guilty pass and
minimized (see ``docs/difftest.md``).

``repro bench`` times the compiled evaluator against the interpreter
on the difftest/oracle/TSVC workloads and writes
``BENCH_compiled_eval.json`` (see ``repro.bench.perfsuite``).

``repro serve`` runs the always-on streaming optimization daemon over
stdio (or localhost HTTP with ``--http``); ``repro client`` submits
files to a freshly spawned daemon and prints the familiar batch table
(see ``docs/serve.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench.objsize import measure_module, reduction_percent
from .bench.reporting import format_table
from .driver import FunctionJob, optimize_functions
from .frontend import CParseError, LexError, LowerError, compile_c
from .ir import (
    EVALUATOR_CHOICES,
    Module,
    ParseError,
    VerificationError,
    make_machine,
    parse_module,
    print_module,
    verify_module,
)
from .rolag import RolagConfig, RolagStats, roll_loops_in_module
from .transforms import reroll_loops, unroll_loops


def build_arg_parser() -> argparse.ArgumentParser:
    """The argparse definition of the driver's interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RoLAG loop-rolling compiler driver "
        "(CGO 2022 reproduction)",
    )
    parser.add_argument(
        "input",
        nargs="+",
        help="mini-C source files or .ll IR files; several inputs run "
        "through the parallel batch driver",
    )
    parser.add_argument(
        "--no-opt",
        action="store_true",
        help="skip the -Os style cleanup pipeline after the frontend",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="worker processes for the batch driver "
        "(default: min(cpu count, 8); 1 forces the serial path)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="memoize per-module optimization results under DIR",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir: neither read nor write memoized results",
    )
    parser.add_argument(
        "--no-dedupe",
        action="store_true",
        help="disable in-batch structural dedupe: run every job even "
        "when it is alpha-equivalent to another job in the batch",
    )
    parser.add_argument(
        "--unroll",
        type=int,
        metavar="N",
        help="unroll counted loops by N before anything else",
    )
    parser.add_argument(
        "--reroll",
        action="store_true",
        help="run the LLVM-style loop reroll baseline",
    )
    parser.add_argument(
        "--roll",
        action="store_true",
        help="run RoLAG loop rolling",
    )
    parser.add_argument(
        "--loop-aware",
        action="store_true",
        help="with --roll: re-roll enclosing loops in place",
    )
    parser.add_argument(
        "--fast-math",
        action="store_true",
        help="with --roll: allow re-association of float reductions",
    )
    parser.add_argument(
        "--no-special-nodes",
        action="store_true",
        help="with --roll: disable every special alignment-node kind",
    )
    parser.add_argument(
        "--emit-ir",
        action="store_true",
        help="print the final IR to stdout",
    )
    parser.add_argument(
        "--size",
        action="store_true",
        help="report per-function and total size estimates",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="with --roll: print alignment-node statistics",
    )
    parser.add_argument(
        "--run",
        nargs="+",
        metavar=("FUNCTION", "ARG"),
        help="interpret FUNCTION with integer/float arguments",
    )
    parser.add_argument(
        "--check-semantics",
        action="store_true",
        help="batch mode: differentially test every transformed module "
        "against its input with the difftest oracle",
    )
    parser.add_argument(
        "--evaluator",
        choices=EVALUATOR_CHOICES,
        default="interp",
        help="execution backend for --run and the semantics oracle "
        "(default: interp; 'compiled' lowers functions to closures once "
        "and runs them without per-instruction dispatch)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="batch mode: wall-clock budget per function; overruns "
        "become structured timeout results instead of stalling the run",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="batch mode: extra attempts for a crashed/timed-out "
        "function before it degrades to an error result (default 1)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="batch mode: base delay between retry attempts, doubled "
        "per attempt (default 0.05)",
    )
    parser.add_argument(
        "--quarantine-file",
        metavar="PATH",
        help="batch mode: persist failure counts to PATH and skip "
        "functions that repeatedly crashed or hung in earlier runs",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="SPEC",
        help="inject deterministic faults, e.g. "
        "'driver.worker.start:raise@3;cache.read:corrupt' or "
        "'@plan.json' (testing aid; see docs/robustness.md)",
    )
    parser.add_argument(
        "--serial-fallback",
        action="store_true",
        help="batch mode: if the worker pool keeps dying, finish the "
        "remaining functions in-process instead of abandoning them",
    )
    parser.add_argument(
        "--validate",
        choices=("off", "fast", "safe", "strict"),
        default="off",
        help="run every pass and rolling decision transactionally "
        "through the online validation gate: 'fast' re-verifies touched "
        "blocks, 'safe' adds an observation-equality check, 'strict' "
        "adds cross-backend parity; rejected edits roll back to the "
        "best-known-good IR (default: off)",
    )
    parser.add_argument(
        "--guard-dir",
        metavar="DIR",
        help="with --validate: write minimized guard-failure repro "
        "bundles under DIR (default: results/guard_reports)",
    )
    return parser


def build_difftest_parser() -> argparse.ArgumentParser:
    """The ``repro difftest`` subcommand's interface."""
    parser = argparse.ArgumentParser(
        prog="repro difftest",
        description="Differential-testing campaign: fuzz IR functions, "
        "run the cleanup + reroll + RoLAG pipeline, compare observable "
        "behaviour, and bisect any mismatch to the guilty pass.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    parser.add_argument(
        "--count",
        type=int,
        default=500,
        help="number of fuzzed functions (default 500)",
    )
    parser.add_argument(
        "--vectors",
        type=int,
        default=3,
        help="argument vectors per function (default 3)",
    )
    parser.add_argument(
        "--step-limit",
        type=int,
        default=None,
        help="interpreter step budget per observation",
    )
    parser.add_argument(
        "--loop-aware",
        action="store_true",
        help="roll with the loop-aware in-place strategy",
    )
    parser.add_argument(
        "--fast-math",
        action="store_true",
        help="allow re-association of float reductions",
    )
    parser.add_argument(
        "--no-special-nodes",
        action="store_true",
        help="disable every special alignment-node kind",
    )
    parser.add_argument(
        "--repro-dir",
        metavar="DIR",
        help="write minimized mismatch repros (.ll) into DIR",
    )
    parser.add_argument(
        "--evaluator",
        choices=EVALUATOR_CHOICES,
        default="interp",
        help="execution backend for every observation (default: interp)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the progress line",
    )
    parser.add_argument(
        "--case-deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget per case; overruns are recorded as "
        "structured errors instead of stalling the campaign",
    )
    return parser


def build_chaos_parser() -> argparse.ArgumentParser:
    """The ``repro chaos`` subcommand's interface."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Chaos campaign: run a synthetic corpus through the "
        "batch driver under seeded randomized fault plans and check the "
        "resilience invariants (see docs/robustness.md).",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=12,
        help="synthetic corpus size per round (default 12)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=4,
        help="fault-plan rounds, the first always fault-free (default 4)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="driver worker processes (default 2)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=5.0,
        help="per-function wall-clock budget in seconds (default 5)",
    )
    parser.add_argument(
        "--base-dir",
        metavar="DIR",
        help="keep the campaign's cache and quarantine file under DIR "
        "(default: a discarded temporary directory)",
    )
    parser.add_argument(
        "--validate",
        choices=("off", "fast", "safe", "strict"),
        default=None,
        help="run the storm with the online validation gate at this "
        "level; the campaign then asserts no round emits "
        "semantics-changing IR (default: off for the batch storm, "
        "safe under --serve; an explicit value is always honored)",
    )
    parser.add_argument(
        "--ir-faults",
        action="store_true",
        help="add corrupt-ir clauses (semantics-changing IR mutations "
        "at pass exits) to every faulted round and oracle-check every "
        "successful result",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="storm a live serve daemon through the wire protocol "
        "instead of the batch driver: backpressure resubmission, "
        "cross-tenant dedupe, per-job degradation, and (with "
        "--validate) zero wrong outputs are all asserted",
    )
    parser.add_argument(
        "--kill-daemon",
        action="store_true",
        help="(with --serve) storm a real supervised, journalled "
        "daemon subprocess and SIGKILL it mid-storm: asserts every "
        "admitted job still completes with an oracle-verified output "
        "and no idempotency-keyed resubmission executes twice",
    )
    parser.add_argument(
        "--kills",
        type=int,
        default=2,
        help="(with --kill-daemon) SIGKILLs to deliver (default 2)",
    )
    return parser


def run_chaos_command(argv: List[str]) -> int:
    """``repro chaos ...``: exit 1 when a resilience invariant breaks."""
    from .faultinject.chaos import (
        run_chaos,
        run_serve_chaos,
        run_serve_kill_chaos,
    )

    args = build_chaos_parser().parse_args(argv)
    if args.serve and args.kill_daemon:
        report = run_serve_kill_chaos(
            seed=args.seed,
            job_count=args.jobs,
            workers=args.workers,
            deadline=args.deadline,
            validate=args.validate if args.validate is not None else "safe",
            base_dir=args.base_dir,
            kills=args.kills,
        )
        print(report.summary())
        return 0 if report.ok else 1
    if args.serve:
        report = run_serve_chaos(
            seed=args.seed,
            job_count=args.jobs,
            workers=args.workers,
            deadline=args.deadline,
            validate=args.validate if args.validate is not None else "safe",
            ir_faults=True,
            base_dir=args.base_dir,
        )
        print(report.summary())
        return 0 if report.ok else 1
    report = run_chaos(
        seed=args.seed,
        job_count=args.jobs,
        rounds=args.rounds,
        workers=args.workers,
        deadline=args.deadline,
        base_dir=args.base_dir,
        validate=args.validate if args.validate is not None else "off",
        ir_faults=args.ir_faults,
    )
    print(report.summary())
    return 0 if report.ok else 1


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``repro serve`` subcommand's interface."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the always-on streaming optimization daemon: "
        "JSON-RPC requests on stdin, responses on stdout (protocol and "
        "operations in docs/serve.md).",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="driver worker processes (default 1: in-process serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist the structural result cache under DIR",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result memoization (in-flight dedupe stays on)",
    )
    parser.add_argument(
        "--no-dedupe",
        action="store_true",
        help="disable in-flight coalescing of structurally identical jobs",
    )
    parser.add_argument(
        "--check-semantics",
        action="store_true",
        help="interpret every function before/after and compare",
    )
    parser.add_argument(
        "--evaluator",
        choices=EVALUATOR_CHOICES,
        default="interp",
        help="evaluator backing semantic checks (default interp)",
    )
    parser.add_argument(
        "--validate",
        choices=("off", "fast", "safe", "strict"),
        default="off",
        help="online translation-validation level (default off)",
    )
    parser.add_argument(
        "--guard-dir",
        metavar="DIR",
        help="write validation-guard rollback evidence under DIR",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        help="per-job wall-clock budget in seconds",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts after a failed one (default 1)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        help="base seconds between retry attempts (default 0)",
    )
    parser.add_argument(
        "--quarantine-file",
        metavar="FILE",
        help="persist repeat-offender quarantine state in FILE",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="PLAN",
        help="fault-injection plan for resilience testing "
        "(SITE:ACTION[@N][xM][%%P][~S], comma-separated)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="global backpressure watermark: admitted-but-unfinished "
        "jobs beyond this are refused with 'busy' (default 64)",
    )
    parser.add_argument(
        "--tenant-quota",
        type=int,
        default=8,
        help="per-tenant in-flight quota; beyond it submissions are "
        "refused with 'quota' (default 8)",
    )
    parser.add_argument(
        "--http",
        type=int,
        metavar="PORT",
        help="serve HTTP on 127.0.0.1:PORT instead of stdio "
        "(0 picks a free port, printed to stderr)",
    )
    parser.add_argument(
        "--journal-dir",
        metavar="DIR",
        help="write-ahead job journal under DIR: every admitted job is "
        "journalled before its admission is acked and replayed at the "
        "next boot if the daemon dies before answering it",
    )
    parser.add_argument(
        "--journal-sync",
        choices=("always", "batch", "off"),
        default="batch",
        help="journal fsync policy: 'always' fsyncs per admission "
        "(power-failure durable), 'batch' fsyncs periodically "
        "(process-death durable), 'off' only flushes (default batch)",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="run under a supervisor that restarts the daemon on "
        "abnormal exit (exponential backoff, crash-loop circuit "
        "breaker); pair with --journal-dir so restarts replay "
        "unfinished work",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        help="supervisor circuit breaker: give up after this many "
        "crashes within --restart-window seconds (default 5)",
    )
    parser.add_argument(
        "--restart-window",
        type=float,
        default=60.0,
        help="crash-counting window in seconds for the circuit "
        "breaker (default 60)",
    )
    parser.add_argument(
        "--restart-backoff",
        type=float,
        default=0.25,
        help="base seconds between supervisor restarts, doubling per "
        "recent crash (default 0.25)",
    )
    parser.add_argument(
        "--pid-file",
        metavar="FILE",
        help="publish the live daemon generation's pid (JSON) to FILE "
        "-- under --supervise this tracks each restarted generation",
    )
    return parser


#: ``repro serve`` tokens consumed by the supervisor parent and
#: stripped from the child daemon's argv (flag, takes-a-value).
_SUPERVISOR_ONLY_FLAGS = {
    "--supervise": False,
    "--max-restarts": True,
    "--restart-window": True,
    "--restart-backoff": True,
    "--pid-file": True,
}


def _child_serve_args(argv: List[str]) -> List[str]:
    """The serve argv minus supervisor-only tokens."""
    child: List[str] = []
    skip = False
    for token in argv:
        if skip:
            skip = False
            continue
        flag, _, inline = token.partition("=")
        if flag in _SUPERVISOR_ONLY_FLAGS:
            skip = _SUPERVISOR_ONLY_FLAGS[flag] and not inline
            continue
        child.append(token)
    return child


def _serve_config_from_args(args: argparse.Namespace):
    from .serve import ServeConfig

    return ServeConfig(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        dedupe=not args.no_dedupe,
        check_semantics=args.check_semantics,
        evaluator=args.evaluator,
        validate=args.validate,
        guard_dir=args.guard_dir,
        deadline=args.deadline,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        quarantine_file=args.quarantine_file,
        fault_plan=args.fault_plan,
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        journal_dir=args.journal_dir,
        journal_sync=args.journal_sync,
    )


def run_serve_command(argv: List[str]) -> int:
    """``repro serve ...``: run the daemon until EOF or ``shutdown``."""
    from .serve import OptimizeService, serve_stdio

    args = build_serve_parser().parse_args(argv)
    if args.supervise:
        from .serve.supervisor import run_supervised

        return run_supervised(
            _child_serve_args(argv),
            max_restarts=args.max_restarts,
            restart_window=args.restart_window,
            restart_backoff=args.restart_backoff,
            pid_file=args.pid_file,
        )
    if args.pid_file:
        from .serve.supervisor import write_pid_file

        write_pid_file(args.pid_file, os.getpid(), 1)
    service = OptimizeService(_serve_config_from_args(args)).start()
    if args.http is not None:
        import threading

        from .serve.httpd import serve_http

        address_box: dict = {}
        started = threading.Event()
        # serve_http blocks; report the bound port before entering it
        # by seeding the box synchronously via port binding inside.
        thread = threading.Thread(
            target=serve_http,
            args=(service, args.http, started, address_box),
            daemon=True,
        )
        thread.start()
        started.wait(timeout=10.0)
        host, port = address_box.get("address", ("127.0.0.1", args.http))
        print(f"repro serve: ready (http://{host}:{port})", file=sys.stderr)
        thread.join()
        return 0
    return serve_stdio(service)


def build_client_parser() -> argparse.ArgumentParser:
    """The ``repro client`` subcommand's interface."""
    parser = argparse.ArgumentParser(
        prog="repro client",
        description="Spawn a serve daemon, pipeline the given inputs "
        "through it, and print the batch-style results table.  "
        "Arguments after ``--`` are passed to ``repro serve`` "
        "unchanged (e.g. ``-- --workers 4 --validate safe``).",
    )
    parser.add_argument(
        "input", nargs="+", help="IR (.ll) or mini-C source files"
    )
    parser.add_argument(
        "--tenant",
        default="cli",
        help="tenant identity for quota accounting (default 'cli')",
    )
    return parser


def run_client_command(argv: List[str]) -> int:
    """``repro client ...``: one pipelined conversation with a daemon."""
    from .serve import ServeClient, ServeError
    from .serve.protocol import response_error_kind

    if "--" in argv:
        split = argv.index("--")
        argv, serve_args = argv[:split], argv[split + 1:]
    else:
        serve_args = []
    args = build_client_parser().parse_args(argv)

    client = ServeClient.spawn(*serve_args)
    failures = 0
    try:
        tickets = []
        for path in args.input:
            try:
                with open(path) as fh:
                    text = fh.read()
            except OSError as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            fmt = "ir" if path.endswith(".ll") else "c"
            tickets.append(
                (
                    path,
                    client.submit_optimize(
                        text,
                        fmt=fmt,
                        tenant=args.tenant,
                        metadata={"source": path},
                    ),
                )
            )
        rows = []
        for path, ticket in tickets:
            response = client.wait(ticket)
            kind = response_error_kind(response)
            if kind is not None:
                error = response.get("error") or {}
                rows.append((path, f"refused:{kind}", "-", "-", "-"))
                failures += 1
                continue
            result = response["result"]
            if result["status"] != "ok":
                rows.append(
                    (path, result.get("error_kind") or "error",
                     "-", "-", "-")
                )
                failures += 1
                continue
            rows.append(
                (
                    path,
                    "ok",
                    result["size_before"],
                    result["size_after"],
                    f"{result['reduction_percent']:.1f}%",
                )
            )
        print(
            format_table(
                ["Input", "Status", "Before(B)", "After(B)", "Reduction"],
                rows,
            )
        )
    except ServeError as error:
        print(f"error: serve daemon: {error}", file=sys.stderr)
        return 1
    finally:
        client.close()
    return 0 if failures == 0 else 1


def build_bench_parser() -> argparse.ArgumentParser:
    """The ``repro bench`` subcommand's interface."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the evaluator-backend performance suite "
        "(compiled vs. interpreted) and write machine-readable JSON.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--count",
        type=int,
        default=2000,
        help="difftest campaign size (default 2000)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink every workload for a fast smoke run",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_compiled_eval.json",
        help="where to write the JSON payload "
        "(default BENCH_compiled_eval.json)",
    )
    parser.add_argument(
        "--text",
        metavar="PATH",
        default=None,
        help="also write the human-readable report to PATH",
    )
    return parser


def run_bench_command(argv: List[str]) -> int:
    """``repro bench ...``: measure every backend, write JSON (+ text)."""
    from .bench.perfsuite import (
        BACKENDS,
        render_perf_suite,
        run_perf_suite,
        write_bench_json,
    )

    args = build_bench_parser().parse_args(argv)
    results = run_perf_suite(
        seed=args.seed, difftest_count=args.count, quick=args.quick
    )
    wrote_primary = write_bench_json(args.json, results)
    text = render_perf_suite(results)
    print(text)
    if wrote_primary:
        print(f"; json written: {args.json}")
    if args.text:
        with open(args.text, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"; text written: {args.text}")
    failed = (
        any(
            results["difftest_campaign"][backend]["mismatches"]
            for backend in BACKENDS
        )
        or results["parity"]["mismatches"]
        or not results["tsvc_dynamic"]["steps_equal"]
    )
    return 1 if failed else 0


def run_difftest_command(argv: List[str]) -> int:
    """``repro difftest ...``: run a campaign, exit 1 on any mismatch."""
    from .difftest import run_difftest
    from .difftest.oracle import DEFAULT_STEP_LIMIT

    args = build_difftest_parser().parse_args(argv)
    config = RolagConfig(
        fast_math=args.fast_math, loop_aware=args.loop_aware
    )
    if args.no_special_nodes:
        config = config.all_special_disabled()

    def progress(done: int, total: int) -> None:
        if args.quiet or total == 0:
            return
        if done % 100 == 0 or done == total:
            print(f"; {done}/{total} cases", file=sys.stderr)

    report = run_difftest(
        seed=args.seed,
        count=args.count,
        config=config,
        vectors_per_case=args.vectors,
        step_limit=args.step_limit or DEFAULT_STEP_LIMIT,
        repro_dir=args.repro_dir,
        progress=progress,
        evaluator=args.evaluator,
        case_deadline=args.case_deadline,
    )
    print(report.summary())
    return 0 if report.ok else 1


def load_module(path: str, optimize: bool) -> Module:
    """Load a module from a .ll or mini-C file."""
    with open(path) as fh:
        source = fh.read()
    if path.endswith(".ll"):
        module = parse_module(source)
        verify_module(module)
        return module
    return compile_c(source, module_name=path, optimize=optimize)


def _parse_run_args(raw: List[str]) -> List[object]:
    values: List[object] = []
    for text in raw:
        try:
            values.append(int(text, 0))
        except ValueError:
            values.append(float(text))
    return values


#: Where guard-failure repro bundles land unless --guard-dir says
#: otherwise (mirrors the difftest repro convention under results/).
DEFAULT_GUARD_DIR = "results/guard_reports"


def _build_config(args: argparse.Namespace) -> RolagConfig:
    guard_dir = None
    if args.validate != "off":
        guard_dir = args.guard_dir or DEFAULT_GUARD_DIR
    config = RolagConfig(
        fast_math=args.fast_math,
        loop_aware=args.loop_aware,
        validate=args.validate,
        validate_evaluator=args.evaluator,
        guard_dir=guard_dir,
    )
    if args.no_special_nodes:
        config = config.all_special_disabled()
    return config


def run_batch(args: argparse.Namespace) -> int:
    """Optimize several inputs through the parallel, memoizing driver."""
    unsupported = [
        flag
        for flag, given in (
            ("--unroll", args.unroll),
            ("--reroll", args.reroll),
            ("--run", args.run),
            ("--emit-ir", args.emit_ir),
        )
        if given
    ]
    if unsupported:
        print(
            "error: with several inputs only --roll/--size/--stats apply "
            f"(got {', '.join(unsupported)})",
            file=sys.stderr,
        )
        return 1

    jobs: List[FunctionJob] = []
    try:
        for path in args.input:
            with open(path) as fh:
                text = fh.read()
            # ``name`` must stay None (it selects the function to
            # measure); the path rides along as metadata so quarantine
            # entries identify the input, not a placeholder.
            source = (("source", path),)
            if path.endswith(".ll"):
                jobs.append(FunctionJob(name=None, ir_text=text, metadata=source))
            elif args.no_opt:
                # The worker frontend always runs the cleanup pipeline;
                # honour --no-opt by compiling here and shipping IR.
                module = compile_c(text, module_name=path, optimize=False)
                jobs.append(
                    FunctionJob(
                        name=None, ir_text=print_module(module), metadata=source
                    )
                )
            else:
                jobs.append(FunctionJob(name=None, c_source=text, metadata=source))
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    report = optimize_functions(
        jobs,
        config=_build_config(args),
        workers=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        dedupe=not args.no_dedupe,
        check_semantics=args.check_semantics,
        evaluator=args.evaluator,
        deadline=args.deadline,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        quarantine_file=args.quarantine_file,
        fault_plan=args.fault_plan,
        serial_fallback=args.serial_fallback,
    )
    rows = []
    for path, result in zip(args.input, report.results):
        if result.failed:
            status = result.error_kind.upper()
        elif result.dedupe_hit:
            status = "dedup"
        else:
            status = "hit" if result.cache_hit else "miss"
        row = [
            path,
            result.size_before,
            result.rolag_size,
            f"{reduction_percent(result.size_before, result.rolag_size):.1f}%",
            result.rolag_rolled,
            status,
        ]
        if args.check_semantics:
            if result.failed:
                row.append("-")
            else:
                row.append("ok" if result.semantics_ok else "MISMATCH")
        rows.append(tuple(row))
    headers = ["Input", "Before(B)", "After(B)", "Reduction", "Rolled", "Cache"]
    if args.check_semantics:
        headers.append("Semantics")
    print(format_table(headers, rows))
    stats = report.stats
    print(
        f"; {stats.jobs} module(s), {stats.workers} worker(s), "
        f"cache hits: {stats.cache_hits}, misses: {stats.cache_misses}, "
        f"dedupe hits: {stats.dedupe_hits}, "
        f"{stats.wall_seconds:.2f}s"
    )
    if (
        stats.failed
        or stats.retried
        or stats.cache_corrupt
        or stats.pool_respawns
    ):
        print(
            f"; failures: {stats.crashed} crashed, "
            f"{stats.timed_out} timed out, "
            f"{stats.quarantined} quarantined | retried: {stats.retried}, "
            f"pool respawns: {stats.pool_respawns}, "
            f"corrupt cache entries: {stats.cache_corrupt}"
        )
    failed_results = [
        (path, result)
        for path, result in zip(args.input, report.results)
        if result.failed
    ]
    for path, result in failed_results:
        print(
            f"; FAILED {path}: [{result.error_kind}] {result.error} "
            f"(attempts: {result.attempts})",
            file=sys.stderr,
        )
    if stats.guard_failures:
        # Rolled-back transactions are the gate *working*, not a run
        # failure: report them without affecting the exit code.
        print(
            f"; guard rollbacks: {stats.guard_failures} "
            "(rejected edits restored to best-known-good IR)"
        )
        from .validation import GuardReport

        for path, result in zip(args.input, report.results):
            for data in result.guard_reports:
                guard = GuardReport.from_json_dict(data)
                print(f"; GUARD {path}: {guard.summary()}", file=sys.stderr)
    if args.stats:
        total_rolled = sum(r.rolag_rolled for r in report.results)
        attempts = sum(r.attempted for r in report.results)
        print(f"; RoLAG rolled {total_rolled} loop(s) in {attempts} attempt(s)")
    if args.check_semantics:
        failures = 0
        for path, result in zip(args.input, report.results):
            for detail in result.semantics_mismatches:
                print(f"; SEMANTICS {path}: {detail}", file=sys.stderr)
                failures += 1
        if failures:
            return 1
    return 1 if failed_results else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "difftest":
        return run_difftest_command(argv[1:])
    if argv and argv[0] == "bench":
        return run_bench_command(argv[1:])
    if argv and argv[0] == "chaos":
        return run_chaos_command(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve_command(argv[1:])
    if argv and argv[0] == "client":
        return run_client_command(argv[1:])
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if len(args.input) > 1:
        return run_batch(args)

    try:
        module = load_module(args.input[0], optimize=not args.no_opt)
    except (
        OSError, ParseError, VerificationError,
        LexError, CParseError, LowerError,
    ) as error:
        # Unreadable and unparseable inputs exit 1 with a clean
        # diagnostic, the same way batch mode reports bad jobs.
        print(f"error: {error}", file=sys.stderr)
        return 1

    size_before = measure_module(module)

    if args.unroll:
        unrolled = sum(
            unroll_loops(fn, args.unroll)
            for fn in module.functions
            if not fn.is_declaration
        )
        print(f"; unrolled {unrolled} loop(s) by factor {args.unroll}")

    if args.reroll:
        rerolled = sum(
            reroll_loops(fn)
            for fn in module.functions
            if not fn.is_declaration
        )
        print(f"; rerolled {rerolled} loop(s) (LLVM-style baseline)")

    if args.roll:
        config = _build_config(args)
        stats = RolagStats()
        rolled = roll_loops_in_module(module, config=config, stats=stats)
        print(f"; RoLAG rolled {rolled} loop(s)")
        if stats.guard_reports:
            from .validation import GuardReport

            print(
                f"; guard rollbacks: {len(stats.guard_reports)} "
                "(rejected edits restored to best-known-good IR)"
            )
            for data in stats.guard_reports:
                guard = GuardReport.from_json_dict(data)
                print(f"; GUARD: {guard.summary()}", file=sys.stderr)
        if args.stats:
            print(f"; attempts: {stats.attempted}, "
                  f"schedule-rejected: {stats.schedule_rejected}, "
                  f"unprofitable: {stats.unprofitable}")
            for kind, count in sorted(stats.node_counts.items()):
                print(f";   node {kind}: {count}")

    verify_module(module)

    if args.check_semantics:
        import zlib

        from .difftest import check_module_semantics

        original = load_module(args.input[0], optimize=not args.no_opt)
        seed = zlib.crc32(print_module(original).encode("utf-8")) & 0x7FFFFFFF
        ok, details = check_module_semantics(
            original, module, seed=seed, evaluator=args.evaluator
        )
        if ok:
            print("; semantics: ok (differential oracle)")
        else:
            for detail in details:
                print(f"; SEMANTICS: {detail}", file=sys.stderr)
            return 1

    if args.size:
        size_after = measure_module(module)
        rows = []
        for name, after in sorted(size_after.per_function.items()):
            before = size_before.per_function.get(name, after)
            rows.append(
                (name, before, after,
                 f"{reduction_percent(before, after):.1f}%")
            )
        print(format_table(["Function", "Before(B)", "After(B)", "Reduction"],
                           rows))
        print(
            f"text: {size_before.text} -> {size_after.text} bytes; "
            f"data: {size_after.data} bytes"
        )

    if args.run:
        fn_name, *raw_args = args.run
        machine = make_machine(module, args.evaluator)
        fn = module.get_function(fn_name)
        if fn is None:
            print(f"error: no function @{fn_name}", file=sys.stderr)
            return 1
        result = machine.call(fn, _parse_run_args(raw_args))
        print(f"; @{fn_name} returned {result!r} "
              f"({machine.steps} instructions executed)")

    if args.emit_ir:
        print(print_module(module))

    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
