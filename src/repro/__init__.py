"""RoLAG reproduction: loop rolling for code size reduction (CGO 2022).

Subpackages:

* :mod:`repro.ir` -- the typed SSA intermediate representation;
* :mod:`repro.analysis` -- dominators, alias, dependences, cost model;
* :mod:`repro.transforms` -- cleanups, unrolling, the reroll baseline;
* :mod:`repro.rolag` -- the loop rolling optimization itself;
* :mod:`repro.frontend` -- the mini-C compiler;
* :mod:`repro.bench` -- evaluation workloads and the experiment harness.
"""

__version__ = "1.0.0"
