"""Plain picklable dataclasses for the parallel optimization driver.

Jobs travel *into* worker processes and results travel back, so both
carry only text and primitives: a job is IR (or mini-C) text plus a
target function name; a result is sizes, counters, and the optimized
IR, JSON-serializable for the on-disk memo cache.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 1]).

    Returns 0.0 for an empty sample set -- callers render stats
    snapshots long before the first job completes.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class FunctionJob:
    """One unit of per-function RoLAG work.

    Exactly one of ``ir_text`` / ``c_source`` must be set: workers
    parse IR text directly, or run mini-C through the frontend first.
    ``name`` selects the function whose size the result reports; when
    ``None`` the whole module is measured.
    """

    name: Optional[str]
    ir_text: Optional[str] = None
    c_source: Optional[str] = None
    #: Free-form tags the caller wants echoed back (e.g. corpus family).
    metadata: Tuple[Tuple[str, str], ...] = ()

    @property
    def text(self) -> str:
        """The content the cache fingerprints (IR or C source)."""
        if self.ir_text is not None:
            return self.ir_text
        assert self.c_source is not None, "job carries no text"
        return self.c_source

    @property
    def format(self) -> str:
        """``"ir"`` or ``"c"``, the input language of :attr:`text`."""
        return "ir" if self.ir_text is not None else "c"

    @property
    def label(self) -> str:
        """A human-readable handle for logs and quarantine entries.

        Whole-module jobs (``name=None``) fall back to a ``source``
        metadata tag (the CLI sets it to the input path).
        """
        if self.name:
            return self.name
        return dict(self.metadata).get("source", "?")


@dataclass
class FunctionResult:
    """Per-function outcome of the driver's standard pipeline.

    The pipeline measures the input, runs the LLVM-style reroll
    baseline and RoLAG on independent fresh copies, verifies both, and
    measures again -- the shape every corpus experiment consumes.
    """

    name: Optional[str]
    metadata: Dict[str, str]
    size_before: int
    llvm_size: int
    rolag_size: int
    llvm_rolled: int
    rolag_rolled: int
    attempted: int
    schedule_rejected: int
    unprofitable: int
    node_counts: Dict[str, int]
    savings: List[Tuple[str, int]]
    optimized_ir: str
    #: Did this run include the differential semantics check?
    semantics_checked: bool = False
    #: Outcome of that check (``None`` when it did not run).
    semantics_ok: Optional[bool] = None
    #: Human-readable mismatch descriptions from the oracle.
    semantics_mismatches: List[str] = field(default_factory=list)
    #: Rolled-back transactions recorded while online validation was
    #: on (``repro.validation.GuardReport.to_json_dict()`` dicts, in
    #: rollback order; empty when ``validate`` is off or nothing
    #: misbehaved).  Deterministic for a deterministic run, so it lives
    #: in the stable payload and the memo cache.
    guard_reports: List[Dict[str, object]] = field(default_factory=list)
    #: Per-phase wall seconds (empty unless the driver ran timed).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Wall seconds this function took in its worker (0 on cache hits).
    wall_seconds: float = 0.0
    #: Whether this result came out of the memo cache.
    cache_hit: bool = False
    #: Whether this result was fanned out from a structurally
    #: identical job computed in the same batch (in-batch dedupe).
    dedupe_hit: bool = False
    #: Transient cache plumbing: the producing job's renaming witness
    #: (a ``repro.ir.structhash.StructuralSummary``), attached by
    #: ``ResultCache.get`` so the driver can rewrite a structural hit
    #: into the requesting job's namespace.  Never serialized.
    producer_witness: Optional[object] = None
    #: Structured failure message when the pipeline could not finish;
    #: the result then carries the *original* function text in
    #: :attr:`optimized_ir` (graceful degradation) and zeroed metrics.
    error: Optional[str] = None
    #: Failure class: ``"crash"``, ``"timeout"``, ``"quarantined"`` or
    #: ``"pool"`` (worker pool unhealthy, job not retried).
    error_kind: Optional[str] = None
    #: How many times the driver attempted this job (1 = no retries).
    attempts: int = 1

    @property
    def failed(self) -> bool:
        """Whether this is a degraded (error-carrying) result."""
        return self.error is not None

    def stable_dict(self) -> Dict[str, object]:
        """The deterministic payload: everything except timings.

        A warm-cache rerun must reproduce this dict byte-identically;
        wall times, the hit flag and the attempt count legitimately
        differ run to run.
        """
        data = asdict(self)
        for volatile in (
            "phase_seconds", "wall_seconds", "cache_hit", "dedupe_hit",
            "producer_witness", "attempts",
        ):
            data.pop(volatile)
        return data

    def to_json_dict(self) -> Dict[str, object]:
        """Serialize for the on-disk cache."""
        data = asdict(self)
        for transient in ("cache_hit", "dedupe_hit", "producer_witness"):
            data.pop(transient)
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "FunctionResult":
        """Rebuild from :meth:`to_json_dict` output (JSON round-trip
        turns the savings tuples into lists; restore them)."""
        data = dict(data)
        data["savings"] = [tuple(entry) for entry in data.get("savings", [])]
        data.setdefault("semantics_checked", False)
        data.setdefault("semantics_ok", None)
        data.setdefault("semantics_mismatches", [])
        data.setdefault("guard_reports", [])
        data.setdefault("phase_seconds", {})
        data.setdefault("wall_seconds", 0.0)
        data.setdefault("error", None)
        data.setdefault("error_kind", None)
        data.setdefault("attempts", 1)
        return cls(cache_hit=False, **data)


@dataclass
class DriverStats:
    """Aggregate behaviour of one :func:`optimize_functions` run."""

    jobs: int = 0
    workers: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    cache_writes: int = 0
    #: Jobs served by fanning out a structurally identical in-batch
    #: leader's result (never dispatched, never cache-written).
    dedupe_hits: int = 0
    #: Jobs whose structural fingerprint could not be computed
    #: (unbuildable input); they key by raw text instead.
    hash_fallbacks: int = 0
    wall_seconds: float = 0.0
    #: Sum of the per-function phase timers (timed runs only).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Jobs whose final outcome was a crash-class failure.
    crashed: int = 0
    #: Jobs whose final outcome was a deadline timeout.
    timed_out: int = 0
    #: Extra attempts scheduled after a failed one.
    retried: int = 0
    #: Jobs skipped because the quarantine list already condemned them.
    quarantined: int = 0
    #: Cache entries found truncated/corrupt/mis-versioned (now misses).
    cache_corrupt: int = 0
    #: Cache write failures swallowed (a lost memo, not a lost result).
    cache_write_errors: int = 0
    #: Worker pools torn down and rebuilt after a death or hang.
    pool_respawns: int = 0
    #: Whether the run degraded to the in-process serial path.
    serial_fallback: bool = False
    #: Total rolled-back transactions across all results (validated
    #: runs only; every one of these kept a bad edit out of the output).
    guard_failures: int = 0
    #: Per-job dispatch-to-completion latencies in seconds, recorded
    #: for executed jobs (pool and serial paths alike; cache hits and
    #: dedupe fan-outs are not dispatched, so they do not appear).
    #: Feeds :attr:`latency_p50` / :attr:`latency_p99`.
    latency_seconds: List[float] = field(default_factory=list)

    def record_latency(self, seconds: object) -> None:
        """Record one job latency, rejecting garbage.

        Teardown paths call this with whatever a dying worker left
        behind; a non-numeric, negative, or non-finite sample must
        never poison the percentiles (or raise mid-teardown).
        """
        try:
            value = float(seconds)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return
        if not math.isfinite(value) or value < 0.0:
            return
        self.latency_seconds.append(value)

    @property
    def latency_p50(self) -> float:
        """Median executed-job latency in seconds (0.0 if none ran)."""
        return percentile(self.latency_seconds, 0.50)

    @property
    def latency_p99(self) -> float:
        """99th-percentile executed-job latency (0.0 if none ran)."""
        return percentile(self.latency_seconds, 0.99)

    @property
    def executed(self) -> int:
        """Jobs that actually ran (not served from the cache or fanned
        out from an in-batch structural duplicate)."""
        return self.jobs - self.cache_hits - self.dedupe_hits

    @property
    def failed(self) -> int:
        """Jobs that ended in a degraded (error-carrying) result."""
        return self.crashed + self.timed_out + self.quarantined


@dataclass
class DriverReport:
    """Results (in job order) plus the run's aggregate stats."""

    results: List[FunctionResult]
    stats: DriverStats


@dataclass
class TenantStats:
    """Per-tenant accounting inside one long-running serve session."""

    accepted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_quota: int = 0
    rejected_busy: int = 0
    dedupe_hits: int = 0
    cache_hits: int = 0

    def to_json_dict(self) -> Dict[str, int]:
        return asdict(self)


@dataclass
class ServiceStats:
    """Aggregate behaviour of one ``repro serve`` daemon lifetime.

    Where :class:`DriverStats` describes one batch, this describes a
    *service*: admission decisions (accepted vs. typed ``busy``/
    ``quota`` rejections), streaming completion latencies measured
    from admission to response, and per-tenant counters so fleet-wide
    structural dedupe is attributable ("tenant B's job coalesced onto
    tenant A's computation" shows up on both ledgers).

    Mutated only under the owning service's lock; :meth:`snapshot`
    renders the JSON payload the ``stats`` RPC answers with.
    """

    accepted: int = 0
    completed: int = 0
    #: Completed jobs that degraded (crash/timeout/quarantine/pool).
    failed: int = 0
    rejected_busy: int = 0
    rejected_quota: int = 0
    rejected_invalid: int = 0
    #: Jobs served by coalescing onto a structurally identical
    #: in-flight computation (possibly another tenant's) or a leader
    #: computed earlier in this daemon's lifetime via the shared cache.
    dedupe_hits: int = 0
    cache_hits: int = 0
    #: Requests answered (or coalesced) because their client-supplied
    #: idempotency key matched an in-flight or memoized execution.
    idempotent_hits: int = 0
    #: Admission-to-response latency per completed job, in seconds.
    latency_seconds: List[float] = field(default_factory=list)
    #: Wall seconds the service has been accepting work (set by the
    #: owning service when snapshotting).
    wall_seconds: float = 0.0
    #: Gauges stamped at snapshot time by the owning service.
    queue_depth: int = 0
    inflight: int = 0
    per_tenant: Dict[str, TenantStats] = field(default_factory=dict)

    def tenant(self, name: str) -> TenantStats:
        if name not in self.per_tenant:
            self.per_tenant[name] = TenantStats()
        return self.per_tenant[name]

    def record_latency(self, seconds: object) -> None:
        """Record one admission-to-response latency (garbage-safe)."""
        try:
            value = float(seconds)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return
        if not math.isfinite(value) or value < 0.0:
            return
        self.latency_seconds.append(value)

    @property
    def latency_p50(self) -> float:
        return percentile(self.latency_seconds, 0.50)

    @property
    def latency_p99(self) -> float:
        return percentile(self.latency_seconds, 0.99)

    @property
    def jobs_per_second(self) -> float:
        """Completed jobs per wall second of service lifetime."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.completed / self.wall_seconds

    def snapshot(self) -> Dict[str, object]:
        """The ``stats`` RPC payload (plain JSON types only)."""
        return {
            "accepted": self.accepted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_busy": self.rejected_busy,
            "rejected_quota": self.rejected_quota,
            "rejected_invalid": self.rejected_invalid,
            "dedupe_hits": self.dedupe_hits,
            "cache_hits": self.cache_hits,
            "idempotent_hits": self.idempotent_hits,
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "wall_seconds": self.wall_seconds,
            "jobs_per_second": self.jobs_per_second,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "tenants": {
                name: tenant.to_json_dict()
                for name, tenant in sorted(self.per_tenant.items())
            },
        }
