"""Plain picklable dataclasses for the parallel optimization driver.

Jobs travel *into* worker processes and results travel back, so both
carry only text and primitives: a job is IR (or mini-C) text plus a
target function name; a result is sizes, counters, and the optimized
IR, JSON-serializable for the on-disk memo cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FunctionJob:
    """One unit of per-function RoLAG work.

    Exactly one of ``ir_text`` / ``c_source`` must be set: workers
    parse IR text directly, or run mini-C through the frontend first.
    ``name`` selects the function whose size the result reports; when
    ``None`` the whole module is measured.
    """

    name: Optional[str]
    ir_text: Optional[str] = None
    c_source: Optional[str] = None
    #: Free-form tags the caller wants echoed back (e.g. corpus family).
    metadata: Tuple[Tuple[str, str], ...] = ()

    @property
    def text(self) -> str:
        """The content the cache fingerprints (IR or C source)."""
        if self.ir_text is not None:
            return self.ir_text
        assert self.c_source is not None, "job carries no text"
        return self.c_source

    @property
    def format(self) -> str:
        """``"ir"`` or ``"c"``, the input language of :attr:`text`."""
        return "ir" if self.ir_text is not None else "c"


@dataclass
class FunctionResult:
    """Per-function outcome of the driver's standard pipeline.

    The pipeline measures the input, runs the LLVM-style reroll
    baseline and RoLAG on independent fresh copies, verifies both, and
    measures again -- the shape every corpus experiment consumes.
    """

    name: Optional[str]
    metadata: Dict[str, str]
    size_before: int
    llvm_size: int
    rolag_size: int
    llvm_rolled: int
    rolag_rolled: int
    attempted: int
    schedule_rejected: int
    unprofitable: int
    node_counts: Dict[str, int]
    savings: List[Tuple[str, int]]
    optimized_ir: str
    #: Did this run include the differential semantics check?
    semantics_checked: bool = False
    #: Outcome of that check (``None`` when it did not run).
    semantics_ok: Optional[bool] = None
    #: Human-readable mismatch descriptions from the oracle.
    semantics_mismatches: List[str] = field(default_factory=list)
    #: Per-phase wall seconds (empty unless the driver ran timed).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Wall seconds this function took in its worker (0 on cache hits).
    wall_seconds: float = 0.0
    #: Whether this result came out of the memo cache.
    cache_hit: bool = False

    def stable_dict(self) -> Dict[str, object]:
        """The deterministic payload: everything except timings.

        A warm-cache rerun must reproduce this dict byte-identically;
        wall times and the hit flag legitimately differ run to run.
        """
        data = asdict(self)
        for volatile in ("phase_seconds", "wall_seconds", "cache_hit"):
            data.pop(volatile)
        return data

    def to_json_dict(self) -> Dict[str, object]:
        """Serialize for the on-disk cache."""
        data = asdict(self)
        data.pop("cache_hit")
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "FunctionResult":
        """Rebuild from :meth:`to_json_dict` output (JSON round-trip
        turns the savings tuples into lists; restore them)."""
        data = dict(data)
        data["savings"] = [tuple(entry) for entry in data.get("savings", [])]
        data.setdefault("semantics_checked", False)
        data.setdefault("semantics_ok", None)
        data.setdefault("semantics_mismatches", [])
        data.setdefault("phase_seconds", {})
        data.setdefault("wall_seconds", 0.0)
        return cls(cache_hit=False, **data)


@dataclass
class DriverStats:
    """Aggregate behaviour of one :func:`optimize_functions` run."""

    jobs: int = 0
    workers: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    cache_writes: int = 0
    wall_seconds: float = 0.0
    #: Sum of the per-function phase timers (timed runs only).
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def executed(self) -> int:
        """Jobs that actually ran (were not served from the cache)."""
        return self.jobs - self.cache_hits


@dataclass
class DriverReport:
    """Results (in job order) plus the run's aggregate stats."""

    results: List[FunctionResult]
    stats: DriverStats
