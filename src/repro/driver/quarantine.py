"""Persistent quarantine list for repeatedly-failing functions.

Corpus-scale runs contain pathological functions that crash or hang a
worker every time they are attempted.  Retrying them across runs wastes
a worker (and, for hard crashes, a whole pool respawn) per run, so the
driver records every exhausted failure here, keyed by the job's
*structural* fingerprint (see :mod:`repro.ir.structhash`; deliberately
config-independent: a function that kills workers does so regardless
of tuning knobs, and regardless of how its values are named -- an
alpha-variant of a known-bad function is the same bad function).
Jobs that do not build fall back to a text fingerprint.  Once a
function accumulates ``threshold`` failed attempts it is quarantined:
future runs emit an error result for it immediately instead of
dispatching it.

The on-disk format is a small JSON document::

    {"schema": 2,
     "entries": {"<key>": {"name": "...", "failures": 3,
                            "last_kind": "crash", "last_error": "..."}}}

A missing or unreadable file is treated as an empty list (the
quarantine layer must itself be corruption-resilient); a file written
by an older schema (whose keys derive differently) is treated as
stale and started fresh.  Saving rewrites the file atomically.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from typing import Dict, Optional

from .types import FunctionJob

log = logging.getLogger(__name__)

#: Bump when the on-disk layout (or the key derivation) changes
#: meaning.  2: keys went structural (schema-1 files keyed raw text).
SCHEMA_VERSION = 2


def quarantine_key(job: FunctionJob, summary: object = None) -> str:
    """Config-independent structural fingerprint of one job.

    ``summary`` mirrors :func:`repro.driver.cache.job_key`: pass a
    precomputed :class:`~repro.ir.structhash.StructuralSummary` (the
    driver memoizes them), or leave the default to compute one here.
    """
    from .cache import _content_fingerprint, job_struct_summary

    if summary is None:
        # Covers both "caller did not compute one" and "job does not
        # build" (recomputing the latter lands on the text fallback).
        summary = job_struct_summary(job)
    target = job.name
    if summary is not None:
        target = summary.canonical_target(job.name)
    material = f"target:{target}\ncontent:{_content_fingerprint(job, summary)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


class QuarantineList:
    """Failure counts per function, optionally persisted to ``path``."""

    def __init__(
        self,
        path: Optional[str],
        threshold: int = 2,
        fsync: bool = False,
    ) -> None:
        self.path = path
        self.threshold = max(1, threshold)
        #: fsync the replacement file (and, best-effort, its
        #: directory) on save -- the durability bar serve daemons with
        #: ``--journal-sync always`` ask for.
        self.fsync = fsync
        self.entries: Dict[str, Dict[str, object]] = {}
        #: The backing file existed but did not parse.
        self.corrupt_file = False
        self._dirty = False
        if path:
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            entries = data["entries"]
            schema = data.get("schema")
            if schema != SCHEMA_VERSION:
                if isinstance(schema, int) and isinstance(entries, dict):
                    # A well-formed file from an older schema: its keys
                    # derive differently (schema 1 keyed raw text), so
                    # the entries cannot migrate -- start fresh, but do
                    # not flag the file as corrupt.
                    log.info(
                        "quarantine file %s uses schema %s (current %s); "
                        "starting fresh", path, schema, SCHEMA_VERSION,
                    )
                    self._dirty = True
                    return
                raise ValueError(f"schema {schema!r}")
            self.entries = {
                str(key): dict(value) for key, value in entries.items()
            }
        except FileNotFoundError:
            pass
        except Exception as error:
            # A corrupt quarantine file must not take the run down;
            # start empty and overwrite it on save.
            self.corrupt_file = True
            self._dirty = True
            log.warning("quarantine file %s unreadable (%s); starting empty",
                        path, error)

    def __len__(self) -> int:
        return len(self.entries)

    def failures(self, key: str) -> int:
        entry = self.entries.get(key)
        return int(entry["failures"]) if entry else 0

    def is_quarantined(self, key: str) -> bool:
        return self.failures(key) >= self.threshold

    def describe(self, key: str) -> str:
        """Human-readable reason used in quarantined error results."""
        entry = self.entries.get(key, {})
        return (
            f"quarantined after {entry.get('failures', 0)} failed "
            f"attempt(s); last: {entry.get('last_error', 'unknown')}"
        )

    def record_failure(
        self, key: str, name: Optional[str], kind: str, message: str
    ) -> bool:
        """Count one failed attempt; True when this crossed the threshold."""
        entry = self.entries.setdefault(
            key, {"name": name or "?", "failures": 0}
        )
        entry["failures"] = int(entry["failures"]) + 1
        entry["last_kind"] = kind
        entry["last_error"] = f"{kind}: {message}"
        self._dirty = True
        return int(entry["failures"]) == self.threshold

    def save(self) -> None:
        """Atomically persist the list (no-op without a path or changes)."""
        if self.path is None or not self._dirty:
            return
        payload = {"schema": SCHEMA_VERSION, "entries": self.entries}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            if self.fsync:
                try:
                    dir_fd = os.open(directory, os.O_RDONLY)
                    try:
                        os.fsync(dir_fd)
                    finally:
                        os.close(dir_fd)
                except OSError:  # pragma: no cover - fs-dependent
                    pass
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._dirty = False
