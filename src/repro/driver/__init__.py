"""Parallel, memoizing, fault-tolerant per-function optimization driver.

Public surface::

    from repro.driver import (
        FunctionJob, FunctionResult, DriverReport, DriverStats,
        ResultCache, QuarantineList, quarantine_key,
        optimize_functions, optimize_one, run_one_guarded,
        default_worker_count,
    )
"""

from .cache import ResultCache, job_key, model_fingerprint
from .core import (
    default_worker_count,
    optimize_functions,
    optimize_one,
    run_one_guarded,
)
from .quarantine import QuarantineList, quarantine_key
from .types import DriverReport, DriverStats, FunctionJob, FunctionResult

__all__ = [
    "DriverReport",
    "DriverStats",
    "FunctionJob",
    "FunctionResult",
    "QuarantineList",
    "ResultCache",
    "default_worker_count",
    "job_key",
    "model_fingerprint",
    "optimize_functions",
    "optimize_one",
    "quarantine_key",
    "run_one_guarded",
]
