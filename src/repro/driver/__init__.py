"""Parallel, memoizing, fault-tolerant per-function optimization driver.

Public surface::

    from repro.driver import (
        FunctionJob, FunctionResult, DriverReport, DriverStats,
        ServiceStats, TenantStats, ResultCache, QuarantineList,
        quarantine_key, optimize_functions, optimize_one,
        run_one_guarded, default_worker_count, DriverSession,
    )

:class:`DriverSession` is the incremental (submit/collect) front end
the ``repro serve`` daemon runs on; :func:`optimize_functions` is the
batch entry point everything else uses.
"""

from .cache import ResultCache, job_key, model_fingerprint
from .core import (
    DriverSession,
    default_worker_count,
    optimize_functions,
    optimize_one,
    run_one_guarded,
)
from .quarantine import QuarantineList, quarantine_key
from .types import (
    DriverReport,
    DriverStats,
    FunctionJob,
    FunctionResult,
    ServiceStats,
    TenantStats,
    percentile,
)

__all__ = [
    "DriverReport",
    "DriverSession",
    "DriverStats",
    "FunctionJob",
    "FunctionResult",
    "QuarantineList",
    "ResultCache",
    "ServiceStats",
    "TenantStats",
    "default_worker_count",
    "job_key",
    "model_fingerprint",
    "optimize_functions",
    "optimize_one",
    "percentile",
    "quarantine_key",
    "run_one_guarded",
]
