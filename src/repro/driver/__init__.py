"""Parallel, memoizing per-function optimization driver.

Public surface::

    from repro.driver import (
        FunctionJob, FunctionResult, DriverReport, DriverStats,
        ResultCache, optimize_functions, optimize_one,
        default_worker_count,
    )
"""

from .cache import ResultCache, job_key, model_fingerprint
from .core import default_worker_count, optimize_functions, optimize_one
from .types import DriverReport, DriverStats, FunctionJob, FunctionResult

__all__ = [
    "DriverReport",
    "DriverStats",
    "FunctionJob",
    "FunctionResult",
    "ResultCache",
    "default_worker_count",
    "job_key",
    "model_fingerprint",
    "optimize_functions",
    "optimize_one",
]
