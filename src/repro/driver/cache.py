"""Content-addressed memo cache for per-function optimization results.

A cache entry is keyed by a SHA-256 fingerprint of

* a schema version (bumped whenever the result layout or the worker
  pipeline changes meaning),
* the :meth:`RolagConfig.fingerprint` of the active config,
* a fingerprint of the measuring cost model,
* the semantics-check flag and the oracle's evaluator backend,
* the *canonical* target function name, and
* the function's **structural fingerprint** (see
  :mod:`repro.ir.structhash`): an alpha-invariant digest of the
  verified IR, so a rename of values, labels, or the defined functions
  themselves -- or a reordering of reachable blocks -- still *hits*.
  Inputs that fail to build (unparseable IR, uncompilable C) fall back
  to a digest of their raw text, flagged with a distinct prefix so the
  two namespaces cannot collide.

Equal inputs therefore hit regardless of process, worker count, run
order, or spelling; any config/model/structural change misses and
recomputes.  Because the key is structural, a hit may come from a job
with different names than the requester's: the envelope therefore
stores the producing job's renaming *witness* so the driver can
rewrite the cached ``optimized_ir`` into the requester's namespace
(see ``core.py``).  Entries are JSON files sharded two hex characters
deep so corpus-sized caches do not degenerate into one giant
directory.

The cache trusts nothing it reads back.  Each entry is an envelope
``{"schema": N, "checksum": ..., "result": {...}, "renames": {...}}``;
a read that fails to parse, carries the wrong schema, or fails its
checksum is treated as a *miss*: counted in
:attr:`ResultCache.corrupt`, logged, deleted, and rewritten when the
recomputed result lands.  Reads pass through the ``cache.read``
fault-injection site so corruption handling stays under test (see
``repro.faultinject``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from typing import Dict, Optional

from ..analysis.costmodel import CodeSizeCostModel
from ..faultinject import corrupt_bytes, fire
from ..ir import parse_module
from ..ir.structhash import StructuralSummary, structural_summary
from ..rolag.config import RolagConfig
from .types import FunctionJob, FunctionResult

log = logging.getLogger(__name__)

#: Bump to invalidate every existing cache entry.  4: entries gained
#: the self-describing envelope (schema + checksum) around the result.
#: 5: results gained ``guard_reports`` (online translation validation).
#: 6: stats gained the ``parse`` phase timer, and the evaluator knob
#: grew the ``bytecode`` tier (same knob string keys different code).
#: 7: keys went structural (alpha-invariant fingerprint + canonical
#: target instead of raw text), and the envelope gained the producing
#: job's renaming witness.
SCHEMA_VERSION = 7

#: ``job_key``/``quarantine_key`` sentinel: "compute the summary here".
_AUTO = object()


def model_fingerprint(model: Optional[CodeSizeCostModel]) -> str:
    """Stable hash of the cost model used for measurement."""
    if model is None:
        return "default"
    parts = sorted((opcode, cost) for opcode, cost in model.table.items())
    digest = hashlib.sha256(repr(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def job_struct_summary(job: FunctionJob) -> Optional[StructuralSummary]:
    """The job's structural summary, or ``None`` if it does not build.

    IR jobs are parsed; mini-C jobs run through the frontend (the
    compile is a fraction of what the full worker pipeline costs, and
    only cache-enabled or failure paths ever need it).  Any exception
    means "no structural identity": the caller falls back to keying by
    raw text, and the job still flows -- its worker will report the
    real error.
    """
    try:
        if job.ir_text is not None:
            module = parse_module(job.ir_text)
        else:
            from ..frontend import compile_c

            module = compile_c(job.c_source, module_name="structhash.probe")
        return structural_summary(module)
    except Exception:
        return None


def text_fingerprint(job: FunctionJob) -> str:
    """The fallback content fingerprint for jobs that do not build."""
    material = f"{job.format}:{job.name}\n{job.text}"
    return "text:" + hashlib.sha256(material.encode("utf-8")).hexdigest()


def _content_fingerprint(
    job: FunctionJob, summary: Optional[StructuralSummary]
) -> str:
    if summary is not None:
        return "struct:" + summary.fingerprint
    return text_fingerprint(job)


def job_key(
    job: FunctionJob,
    config: RolagConfig,
    measure_model: Optional[CodeSizeCostModel] = None,
    check_semantics: bool = False,
    evaluator: str = "interp",
    summary: object = _AUTO,
) -> str:
    """The content-addressed cache key for one job.

    ``check_semantics`` participates in the key: a result computed
    without the differential oracle must not satisfy a request that
    asked for one.  So does ``evaluator``: the backend that executed
    the oracle is part of what the cached verdict attests.

    ``summary`` is the job's :class:`StructuralSummary` when the
    caller already computed one (the driver memoizes them), ``None``
    for a job known not to build; left at the default it is computed
    here, so ``job_key(job, config)`` is self-contained.
    """
    if summary is _AUTO:
        summary = job_struct_summary(job)
    target = job.name
    if summary is not None:
        target = summary.canonical_target(job.name)
    material = "\n".join(
        [
            f"schema:{SCHEMA_VERSION}",
            f"config:{config.fingerprint()}",
            f"model:{model_fingerprint(measure_model)}",
            f"semantics:{int(check_semantics)}",
            f"evaluator:{evaluator}",
            f"target:{target}",
            f"content:{_content_fingerprint(job, summary)}",
        ]
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _payload_checksum(payload: Dict[str, object]) -> str:
    """Digest of the canonical JSON form of one result payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class ResultCache:
    """A directory of memoized :class:`FunctionResult` JSON blobs."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Entries present on disk but truncated/corrupt/mis-versioned.
        self.corrupt = 0
        #: Writes that failed and were swallowed (lost memo, not result).
        self.write_errors = 0

    def path(self, key: str) -> str:
        """Where the entry for ``key`` lives on disk."""
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def get(self, key: str) -> Optional[FunctionResult]:
        """The cached result, or ``None`` on miss or unusable entry.

        An entry that exists but cannot be trusted -- unparsable bytes,
        wrong envelope schema, checksum mismatch, stale result layout,
        or a fault injected at the ``cache.read`` site -- is deleted and
        counted as corrupt, so the recomputed result rewrites it.
        """
        path = self.path(key)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            self.misses += 1
            return None
        try:
            raw = corrupt_bytes("cache.read", raw)
            data = json.loads(raw.decode("utf-8"))
            if data.get("schema") != SCHEMA_VERSION:
                raise ValueError(
                    f"envelope schema {data.get('schema')!r}, "
                    f"expected {SCHEMA_VERSION}"
                )
            payload = data["result"]
            renames = data.get("renames")
            checksum = _payload_checksum(
                {"result": payload, "renames": renames}
            )
            if data.get("checksum") != checksum:
                raise ValueError(
                    f"checksum {data.get('checksum')!r} != {checksum}"
                )
            result = FunctionResult.from_json_dict(payload)
            if isinstance(renames, dict):
                result.producer_witness = StructuralSummary(
                    fingerprint="",
                    fn_renames=renames.get("fns") or {},
                    global_renames=renames.get("globals") or {},
                )
        except Exception as error:
            # Corrupt-entry path: never let a bad byte on disk take the
            # run down.  Treat as a miss, drop the entry, recompute.
            self.corrupt += 1
            self.misses += 1
            log.warning("corrupt cache entry %s (%s); treating as miss",
                        path, error)
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        result.cache_hit = True
        return result

    def put(
        self,
        key: str,
        result: FunctionResult,
        summary: Optional[StructuralSummary] = None,
    ) -> None:
        """Persist one result atomically (write-temp then rename).

        ``summary`` is the producing job's structural summary; its
        renaming witness rides in the envelope so a later hit from an
        alpha-variant job can be rewritten into that job's namespace.
        Write failures are swallowed and counted: a memo the next run
        will recompute is not worth aborting this run over.
        """
        path = self.path(key)
        payload = result.to_json_dict()
        renames = (
            {"fns": summary.fn_renames, "globals": summary.global_renames}
            if summary is not None
            else None
        )
        envelope = {
            "schema": SCHEMA_VERSION,
            "checksum": _payload_checksum(
                {"result": payload, "renames": renames}
            ),
            "result": payload,
            "renames": renames,
        }
        tmp = None
        try:
            fire("cache.write")
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(envelope, fh)
            os.replace(tmp, path)
        except Exception as error:
            self.write_errors += 1
            log.warning("cache write failed for %s (%s)", path, error)
            if tmp is not None and os.path.exists(tmp):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return
        self.writes += 1
