"""Content-addressed memo cache for per-function optimization results.

A cache entry is keyed by a SHA-256 fingerprint of

* a schema version (bumped whenever the result layout or the worker
  pipeline changes meaning),
* the :meth:`RolagConfig.fingerprint` of the active config,
* a fingerprint of the measuring cost model,
* the semantics-check flag and the oracle's evaluator backend,
* the target function name, and
* the function's canonical text (printed IR, or the mini-C source).

Equal inputs therefore hit regardless of process, worker count, or
run order; any config/model/input change misses and recomputes.
Entries are JSON files sharded two hex characters deep so corpus-sized
caches do not degenerate into one giant directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

from ..analysis.costmodel import CodeSizeCostModel
from ..rolag.config import RolagConfig
from .types import FunctionJob, FunctionResult

#: Bump to invalidate every existing cache entry.
SCHEMA_VERSION = 3


def model_fingerprint(model: Optional[CodeSizeCostModel]) -> str:
    """Stable hash of the cost model used for measurement."""
    if model is None:
        return "default"
    parts = sorted((opcode, cost) for opcode, cost in model.table.items())
    digest = hashlib.sha256(repr(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def job_key(
    job: FunctionJob,
    config: RolagConfig,
    measure_model: Optional[CodeSizeCostModel] = None,
    check_semantics: bool = False,
    evaluator: str = "interp",
) -> str:
    """The content-addressed cache key for one job.

    ``check_semantics`` participates in the key: a result computed
    without the differential oracle must not satisfy a request that
    asked for one.  So does ``evaluator``: the backend that executed
    the oracle is part of what the cached verdict attests.
    """
    material = "\n".join(
        [
            f"schema:{SCHEMA_VERSION}",
            f"config:{config.fingerprint()}",
            f"model:{model_fingerprint(measure_model)}",
            f"semantics:{int(check_semantics)}",
            f"evaluator:{evaluator}",
            f"target:{job.name}",
            f"format:{job.format}",
            "text:",
            job.text,
        ]
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of memoized :class:`FunctionResult` JSON blobs."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path(self, key: str) -> str:
        """Where the entry for ``key`` lives on disk."""
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def get(self, key: str) -> Optional[FunctionResult]:
        """The cached result, or ``None`` on miss or unreadable entry."""
        try:
            with open(self.path(key)) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            result = FunctionResult.from_json_dict(data)
        except (KeyError, TypeError):
            self.misses += 1  # stale layout: treat as a miss
            return None
        self.hits += 1
        result.cache_hit = True
        return result

    def put(self, key: str, result: FunctionResult) -> None:
        """Persist one result atomically (write-temp then rename)."""
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(result.to_json_dict(), fh)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.writes += 1
