"""The parallel, memoizing, fault-tolerant optimization driver.

:func:`optimize_functions` fans per-function RoLAG work out over a
process pool.  Each worker receives a picklable :class:`FunctionJob`
(IR or mini-C text), rebuilds the module in its own interpreter, runs
the standard measurement pipeline -- size before, LLVM-style reroll
baseline, RoLAG, verify, size after -- and sends back a plain
:class:`FunctionResult`.

Scheduling is chunked (one pickle round-trip per chunk, not per
function) and falls back to a deterministic in-process loop for
``workers=1``, so tests and small runs never pay pool startup.  With a
cache directory, results are memoized content-addressed under an
*alpha-invariant structural* key (see ``cache.py`` and
``repro.ir.structhash``): a warm rerun resolves entirely from disk
even if every value, label, and function in the corpus was renamed in
between.  The same fingerprints drive an in-batch dedupe pass --
structurally identical jobs are coalesced before they reach the pool,
one leader computes, and every follower receives a copy rewritten
into its own namespace via the canonical-renaming witness.

At corpus scale, one pathological function must cost one result, never
the run.  The resilience contract (see ``docs/robustness.md``):

* every job is guarded in its worker -- an exception or a cooperative
  :class:`~repro.faultinject.DeadlineExceeded` becomes a structured
  failure, never a lost batch;
* ``deadline`` bounds each function's wall clock; hangs that ignore
  the cooperative checkpoints are killed by the parent watchdog along
  with their pool, which is respawned (``max_pool_respawns`` times);
* failed jobs are retried (``retries`` times, exponential backoff) and
  functions that exhaust their retries are recorded in a persistent
  quarantine list so later runs skip them outright;
* a job that still fails degrades gracefully: its
  :class:`FunctionResult` carries the *original* function text plus a
  structured ``error``/``error_kind``, and the batch completes;
* when the pool keeps dying, the driver either falls back to the
  in-process serial path (``serial_fallback=True``) or abandons the
  remaining jobs as error results -- it never deadlocks.

Failures are counted on :class:`DriverStats` (``crashed``,
``timed_out``, ``retried``, ``quarantined``, ``cache_corrupt``, ...)
and surfaced in the CLI batch summary.  The whole machinery is driven
through the deterministic fault-injection sites in
``repro.faultinject`` (``driver.worker.start``, ``driver.worker.roll``,
``cache.read``, ``cache.write``, ``pipeline.pass``, ...).
"""

from __future__ import annotations

import os
import zlib
from collections import deque
from dataclasses import dataclass
from time import perf_counter, sleep
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..analysis.costmodel import CodeSizeCostModel
from ..difftest.runner import check_module_semantics
from ..faultinject import (
    DeadlineExceeded,
    FaultPlan,
    active_plan,
    checkpoint,
    deadline_scope,
    fire,
    install_plan,
    resolve_plan,
)
from ..frontend import compile_c
from ..ir import (
    ParseError,
    parse_module,
    print_module,
    rename_function_locals,
    rename_globals,
    verify_module,
)
from ..ir.module import Module
from ..ir.structhash import StructuralSummary, compose_witness_renames
from ..rolag import RolagConfig, RolagStats, roll_loops_in_module
from ..transforms.reroll import reroll_loops
from .cache import ResultCache, job_key, job_struct_summary
from .quarantine import QuarantineList, quarantine_key
from .types import DriverReport, DriverStats, FunctionJob, FunctionResult

#: Pool sizes beyond this stop paying off for per-function work.
MAX_DEFAULT_WORKERS = 8


def default_worker_count() -> int:
    """``min(os.cpu_count(), 8)``, and at least 1."""
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS))


def _load_module(job: FunctionJob) -> Module:
    """Materialize the job's module in this process."""
    if job.ir_text is not None:
        module = parse_module(job.ir_text)
        verify_module(module)
        return module
    return compile_c(job.c_source, module_name=f"driver.{job.name}")


def _measure(
    module: Module, name: Optional[str], model: Optional[CodeSizeCostModel]
) -> int:
    # Imported here, not at module scope: ``repro.bench`` imports this
    # package back (its harness drives the pool), and a top-level import
    # made a cold ``import repro.driver`` fail with a circular-import
    # error unless the caller happened to import ``repro.bench`` first.
    from ..bench.objsize import function_size, measure_module

    if name is None:
        return measure_module(module, model).total
    return function_size(module.get_function(name), model)


def optimize_one(
    job: FunctionJob,
    config: Optional[RolagConfig] = None,
    measure_model: Optional[CodeSizeCostModel] = None,
    timed: bool = False,
    check_semantics: bool = False,
    evaluator: str = "interp",
) -> FunctionResult:
    """The per-function pipeline one worker runs for one job.

    With ``check_semantics`` set, both transformed modules are
    differentially tested against a fresh copy of the input via the
    :mod:`repro.difftest` oracle (executed by ``evaluator``); the
    verdict and any mismatch details travel back (and into the cache)
    on the result.  Oracle time lands in the stats' ``eval`` phase so
    timed runs show evaluation next to the rolling phases.

    With ``config.validate`` on, both the reroll baseline and every
    RoLAG rolling decision run transactionally through the online
    validation gate (see ``repro.validation``): rejected edits are
    rolled back to best-known-good IR and recorded on the result's
    ``guard_reports``.

    The pipeline checkpoints the ambient deadline between stages, so a
    budgeted run (see :func:`optimize_functions`) bails out of a slow
    function at the next stage boundary.
    """
    config = config or RolagConfig()
    start = perf_counter()
    parse_seconds = 0.0

    def load() -> Module:
        # Parse/verify wall time books under the stats' ``parse`` phase
        # so timed runs attribute the Amdahl floor directly.
        nonlocal parse_seconds
        parse_start = perf_counter()
        loaded = _load_module(job)
        parse_seconds += perf_counter() - parse_start
        return loaded

    validate = config.validate
    # Vector seed derives from the input text, so reruns replay the
    # same vectors (for both the oracle and the online validation gate)
    # and the cache entry stays meaningful.
    vector_seed = zlib.crc32(job.text.encode("utf-8")) & 0x7FFFFFFF
    guard_reports: List[Dict[str, object]] = []

    # Baseline: LLVM-style rerolling on its own fresh copy.  With
    # validation on, reroll runs as a transaction through the gate;
    # with it off, the historical direct path is kept bit-for-bit
    # (including fault-site hit counts).
    llvm_module = load()
    checkpoint("load")
    if validate != "off":
        from ..transforms.txn import TransactionalPassManager

        llvm_validator = _make_validator(config, vector_seed)
        reroll_pm = TransactionalPassManager(
            verify=False, validator=llvm_validator
        )
        reroll_pm.add("reroll", reroll_loops)
        llvm_rolled = reroll_pm.run(llvm_module)
        guard_reports.extend(
            report.to_json_dict() for report in llvm_validator.reports
        )
    else:
        llvm_rolled = sum(
            reroll_loops(f)
            for f in llvm_module.functions
            if not f.is_declaration
        )
    verify_module(llvm_module)
    llvm_size = _measure(llvm_module, job.name, measure_model)
    checkpoint("reroll")

    # RoLAG on another fresh copy, measured before and after.
    module = load()
    size_before = _measure(module, job.name, measure_model)
    stats = RolagStats(timed=timed)
    fire("driver.worker.roll")
    rolag_validator = (
        _make_validator(config, vector_seed) if validate != "off" else None
    )
    rolag_rolled = roll_loops_in_module(
        module, config=config, stats=stats, validator=rolag_validator
    )
    guard_reports.extend(stats.guard_reports)
    verify_module(module)
    rolag_size = _measure(module, job.name, measure_model)
    checkpoint("rolag")

    semantics_ok: Optional[bool] = None
    semantics_mismatches: List[str] = []
    if check_semantics:
        original = load()
        eval_start = perf_counter()
        for label, candidate in (("reroll", llvm_module), ("rolag", module)):
            ok, details = check_module_semantics(
                original, candidate, seed=vector_seed, evaluator=evaluator
            )
            if not ok:
                semantics_mismatches.extend(
                    f"{label}: {detail}" for detail in details
                )
            checkpoint("eval")
        semantics_ok = not semantics_mismatches
        if timed:
            stats.add_phase_time("eval", perf_counter() - eval_start)

    if timed:
        stats.add_phase_time("parse", parse_seconds)

    return FunctionResult(
        name=job.name,
        metadata=dict(job.metadata),
        size_before=size_before,
        llvm_size=llvm_size,
        rolag_size=rolag_size,
        llvm_rolled=llvm_rolled,
        rolag_rolled=rolag_rolled,
        attempted=stats.attempted,
        schedule_rejected=stats.schedule_rejected,
        unprofitable=stats.unprofitable,
        node_counts=dict(stats.node_counts),
        savings=list(stats.savings),
        optimized_ir=print_module(module),
        semantics_checked=check_semantics,
        semantics_ok=semantics_ok,
        semantics_mismatches=semantics_mismatches,
        guard_reports=guard_reports,
        phase_seconds=dict(stats.phase_seconds),
        wall_seconds=perf_counter() - start,
    )


def _make_validator(config: RolagConfig, seed: int):
    """The per-module-copy validation gate described by ``config``.

    Imported lazily: ``repro.validation`` transitively pulls in the
    difftest runner, which imports this package back.
    """
    from ..validation import Validator

    return Validator(
        config.validate,
        vectors=config.validate_vectors,
        step_limit=config.validate_step_limit,
        guard_dir=config.guard_dir,
        evaluator=config.validate_evaluator,
        seed=seed,
    )


# --- failure plumbing -------------------------------------------------------


@dataclass
class _Failure:
    """Picklable record of one failed attempt (travels pool -> parent)."""

    kind: str  # "crash" | "timeout"
    message: str


#: One worker-side attempt outcome.
Outcome = Union[FunctionResult, _Failure]


def run_one_guarded(
    job: FunctionJob,
    config: Optional[RolagConfig] = None,
    measure_model: Optional[CodeSizeCostModel] = None,
    timed: bool = False,
    check_semantics: bool = False,
    evaluator: str = "interp",
    deadline: Optional[float] = None,
) -> Outcome:
    """One attempt at one job, with crash/timeout containment.

    Runs :func:`optimize_one` under a cooperative deadline; any
    exception (including injected faults) becomes a :class:`_Failure`
    instead of propagating, so a worker never loses its whole chunk to
    one pathological function.  Hard deaths (``os._exit``, segfaults)
    cannot be caught here and are the parent pool's problem.
    """
    try:
        with deadline_scope(deadline):
            fire("driver.worker.start")
            return optimize_one(
                job, config, measure_model, timed, check_semantics, evaluator
            )
    except DeadlineExceeded as error:
        return _Failure("timeout", str(error))
    except Exception as error:
        return _Failure("crash", f"{type(error).__name__}: {error}")


def _error_result(
    job: FunctionJob, kind: str, message: str, attempts: int
) -> FunctionResult:
    """Graceful degradation: the original function plus a structured error."""
    return FunctionResult(
        name=job.name,
        metadata=dict(job.metadata),
        size_before=0,
        llvm_size=0,
        rolag_size=0,
        llvm_rolled=0,
        rolag_rolled=0,
        attempted=0,
        schedule_rejected=0,
        unprofitable=0,
        node_counts={},
        savings=[],
        optimized_ir=job.text,
        error=message,
        error_kind=kind,
        attempts=attempts,
    )


def _retarget_result(
    result: FunctionResult,
    producer: Optional[StructuralSummary],
    consumer: Optional[StructuralSummary],
) -> None:
    """Respell ``result`` (the producer's output) in the consumer's
    names, via the composed canonical-renaming witness.

    Rewrites the ``optimized_ir`` text and the per-function names in
    ``savings``.  Identity compositions (same spelling on both sides)
    are free, and any failure keeps the producer's text verbatim -- the
    result is still structurally correct, just spelled differently.
    """
    if producer is None or consumer is None:
        return
    locals_map, globals_map = compose_witness_renames(producer, consumer)
    if not locals_map and not globals_map:
        return
    try:
        text = result.optimized_ir
        if locals_map:
            text = rename_function_locals(text, locals_map)
        if globals_map:
            text = rename_globals(text, globals_map)
        result.optimized_ir = text
    except ParseError:  # pragma: no cover - output IR always lexes
        pass
    if globals_map:
        result.savings = [
            (globals_map.get(fn_name, fn_name), saved)
            for fn_name, saved in result.savings
        ]


def _follower_result(
    leader_result: FunctionResult,
    job: FunctionJob,
    leader_summary: Optional[StructuralSummary],
    summary: Optional[StructuralSummary],
    stats: DriverStats,
) -> FunctionResult:
    """Fan one computed leader result out to a structural duplicate.

    A failed leader degrades the follower identically (same error
    class, counted per follower) -- the follower *is* the same
    computation, so pretending it might have succeeded would be a lie.
    Successful results are deep-copied, restamped with the follower's
    identity, and their ``optimized_ir`` rewritten into the follower's
    namespace; ``guard_reports`` travel with the copy, so every
    rolled-back transaction is attributed to every duplicate.
    """
    if leader_result.failed:
        kind = leader_result.error_kind or "crash"
        if kind == "timeout":
            stats.timed_out += 1
        else:
            stats.crashed += 1
        result = _error_result(
            job, kind, leader_result.error or "", leader_result.attempts
        )
        result.dedupe_hit = True
        return result
    result = FunctionResult.from_json_dict(leader_result.to_json_dict())
    result.name = job.name
    result.metadata = dict(job.metadata)
    result.attempts = leader_result.attempts
    # The work happened once, in the leader: no wall/phase time here,
    # or timed aggregates would double-count it.
    result.wall_seconds = 0.0
    result.phase_seconds = {}
    result.dedupe_hit = True
    _retarget_result(result, leader_summary, summary)
    return result


# --- pool plumbing ----------------------------------------------------------
#
# The per-run knobs are shipped once per worker through the pool
# initializer instead of once per job through every pickle.

_WORKER_STATE: dict = {}


def _init_worker(
    config: RolagConfig,
    measure_model: Optional[CodeSizeCostModel],
    timed: bool,
    check_semantics: bool,
    evaluator: str,
    deadline: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> None:
    _WORKER_STATE["config"] = config
    _WORKER_STATE["measure_model"] = measure_model
    _WORKER_STATE["timed"] = timed
    _WORKER_STATE["check_semantics"] = check_semantics
    _WORKER_STATE["evaluator"] = evaluator
    _WORKER_STATE["deadline"] = deadline
    # Fault-plan hit counters are per worker process by design: each
    # worker unpickles its own zeroed copy.
    install_plan(fault_plan)


def _run_chunk(jobs: Sequence[FunctionJob]) -> List[Outcome]:
    """Worker entry point: one guarded attempt per job in the chunk."""
    return [
        run_one_guarded(
            job,
            config=_WORKER_STATE["config"],
            measure_model=_WORKER_STATE["measure_model"],
            timed=_WORKER_STATE["timed"],
            check_semantics=_WORKER_STATE["check_semantics"],
            evaluator=_WORKER_STATE["evaluator"],
            deadline=_WORKER_STATE.get("deadline"),
        )
        for job in jobs
    ]


def _default_chunk_size(pending: int, workers: int) -> int:
    # ~4 chunks per worker balances pickle overhead against stragglers.
    return max(1, -(-pending // (workers * 4)))


def _attempt_serially(
    job: FunctionJob,
    qkey_fn: Callable[[], str],
    config: Optional[RolagConfig],
    measure_model: Optional[CodeSizeCostModel],
    timed: bool,
    check_semantics: bool,
    evaluator: str,
    deadline: Optional[float],
    retries: int,
    retry_backoff: float,
    quarantine: QuarantineList,
    stats: DriverStats,
) -> FunctionResult:
    """The in-process retry loop: attempt, back off, degrade.

    ``qkey_fn`` is lazy: deriving a quarantine key means fingerprinting
    the job (structurally when it builds), which only failure paths
    should ever pay for.
    """
    attempts = 0
    while True:
        attempts += 1
        outcome = run_one_guarded(
            job, config, measure_model, timed, check_semantics, evaluator,
            deadline,
        )
        if isinstance(outcome, FunctionResult):
            outcome.attempts = attempts
            return outcome
        quarantine.record_failure(
            qkey_fn(), job.label, outcome.kind, outcome.message
        )
        if attempts <= retries:
            stats.retried += 1
            if retry_backoff > 0.0:
                sleep(retry_backoff * (2 ** (attempts - 1)))
            continue
        if outcome.kind == "timeout":
            stats.timed_out += 1
        else:
            stats.crashed += 1
        return _error_result(job, outcome.kind, outcome.message, attempts)


def _run_pool(
    jobs: Sequence[FunctionJob],
    pending: List[int],
    config: RolagConfig,
    measure_model: Optional[CodeSizeCostModel],
    timed: bool,
    check_semantics: bool,
    evaluator: str,
    deadline: Optional[float],
    retries: int,
    retry_backoff: float,
    quarantine: QuarantineList,
    qkey: Callable[[int], str],
    stats: DriverStats,
    workers: int,
    chunk_size: Optional[int],
    plan: Optional[FaultPlan],
    serial_fallback: bool,
    max_pool_respawns: int,
) -> Dict[int, FunctionResult]:
    """Crash/hang-isolated pool execution with respawn and retry.

    A worker that dies abruptly breaks the whole
    :class:`~concurrent.futures.ProcessPoolExecutor`; the executor
    cannot say *which* job killed it, so in-flight chunks are requeued
    uncharged and the pool is rebuilt -- the respawn budget bounds a
    poison job that kills every pool it meets.  A chunk observed
    running past its whole-chunk deadline budget is declared hung
    (non-cooperative stall): its jobs are charged a timeout, its
    workers are killed, and the pool is rebuilt.
    """
    from concurrent.futures import (
        FIRST_COMPLETED,
        ProcessPoolExecutor,
        wait,
    )
    from concurrent.futures.process import BrokenProcessPool

    computed: Dict[int, FunctionResult] = {}
    attempts: Dict[int, int] = {i: 0 for i in pending}
    not_before: Dict[int, float] = {i: 0.0 for i in pending}
    queue: deque = deque(pending)
    respawns = 0
    poll = 0.1 if deadline is None else max(0.002, min(0.05, deadline / 4.0))
    chunk = chunk_size or (
        1
        if (deadline is not None or plan is not None)
        else _default_chunk_size(len(pending), workers)
    )

    def finish_failure(index: int, kind: str, message: str) -> None:
        attempts[index] += 1
        quarantine.record_failure(
            qkey(index), jobs[index].label, kind, message
        )
        if attempts[index] <= retries:
            stats.retried += 1
            backoff = retry_backoff * (2 ** (attempts[index] - 1))
            not_before[index] = perf_counter() + backoff
            queue.append(index)
            return
        if kind == "timeout":
            stats.timed_out += 1
        else:
            stats.crashed += 1
        computed[index] = _error_result(
            jobs[index], kind, message, attempts[index]
        )

    def harvest(indices: List[int], outcomes: List[Outcome]) -> None:
        for index, outcome in zip(indices, outcomes):
            if isinstance(outcome, FunctionResult):
                outcome.attempts = attempts[index] + 1
                computed[index] = outcome
            else:
                finish_failure(index, outcome.kind, outcome.message)

    executor: Optional[ProcessPoolExecutor] = None
    futures: Dict[object, dict] = {}

    def shutdown(kill: bool) -> None:
        nonlocal executor
        if executor is None:
            return
        if kill:
            for proc in list(getattr(executor, "_processes", None) or {}
                             .values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
        try:
            executor.shutdown(wait=not kill, cancel_futures=True)
        except Exception:
            pass
        executor = None

    def drain_inflight(hung: set) -> None:
        """Settle every in-flight chunk after a pool teardown."""
        for future, info in list(futures.items()):
            if future in hung:
                for index in info["indices"]:
                    finish_failure(
                        index,
                        "timeout",
                        f"exceeded the {deadline:.3f}s wall-clock deadline "
                        "without yielding; worker killed",
                    )
            elif future.done():
                try:
                    outcomes = future.result(timeout=0)
                except Exception:
                    queue.extend(info["indices"])
                else:
                    harvest(info["indices"], outcomes)
            else:
                queue.extend(info["indices"])
        futures.clear()

    try:
        while queue or futures:
            if executor is None and queue:
                if respawns > max_pool_respawns:
                    break  # pool declared unhealthy; drained below
                executor = ProcessPoolExecutor(
                    max_workers=min(workers, max(1, len(queue))),
                    initializer=_init_worker,
                    initargs=(
                        config, measure_model, timed, check_semantics,
                        evaluator, deadline,
                        plan.fresh() if plan is not None else None,
                    ),
                )
            if executor is not None and queue:
                now = perf_counter()
                eligible: List[int] = []
                waiting: deque = deque()
                while queue:
                    index = queue.popleft()
                    if not_before[index] <= now:
                        eligible.append(index)
                    else:
                        waiting.append(index)
                queue = waiting
                for start in range(0, len(eligible), chunk):
                    indices = eligible[start:start + chunk]
                    future = executor.submit(
                        _run_chunk, [jobs[i] for i in indices]
                    )
                    futures[future] = {
                        "indices": indices, "first_running": None
                    }
            if not futures:
                if queue:
                    sleep(poll)  # every queued job is inside its backoff
                continue

            done, _ = wait(
                set(futures), timeout=poll, return_when=FIRST_COMPLETED
            )
            now = perf_counter()
            broken = False
            for future in done:
                info = futures.pop(future)
                try:
                    outcomes = future.result()
                except BrokenProcessPool:
                    broken = True
                    queue.extend(info["indices"])
                except Exception:
                    # Executor infrastructure failure: treat like a death.
                    broken = True
                    queue.extend(info["indices"])
                else:
                    harvest(info["indices"], outcomes)
            if broken:
                respawns += 1
                stats.pool_respawns += 1
                drain_inflight(hung=set())
                shutdown(kill=True)
                continue

            if deadline is not None and executor is not None:
                hung = set()
                for future, info in futures.items():
                    if info["first_running"] is None and future.running():
                        info["first_running"] = now
                    if info["first_running"] is None:
                        continue
                    budget = (
                        deadline * len(info["indices"])
                        + max(4 * poll, 0.05)
                    )
                    if now - info["first_running"] > budget:
                        hung.add(future)
                if hung:
                    respawns += 1
                    stats.pool_respawns += 1
                    drain_inflight(hung)
                    shutdown(kill=True)
    finally:
        shutdown(kill=bool(futures))
        futures.clear()

    if queue:
        # Respawn budget exhausted: the pool is unhealthy.  Either
        # degrade to the in-process path or abandon the leftovers as
        # structured errors -- never deadlock.
        remaining = list(queue)
        queue.clear()
        if serial_fallback:
            stats.serial_fallback = True
            for index in remaining:
                computed[index] = _attempt_serially(
                    jobs[index], lambda i=index: qkey(i), config, measure_model,
                    timed, check_semantics, evaluator, deadline,
                    retries, retry_backoff, quarantine, stats,
                )
        else:
            for index in remaining:
                stats.crashed += 1
                computed[index] = _error_result(
                    jobs[index],
                    "pool",
                    f"worker pool unhealthy after {respawns} respawn(s); "
                    "job abandoned (enable serial_fallback to retry "
                    "in-process)",
                    attempts[index],
                )
    return computed


def optimize_functions(
    jobs: Sequence[FunctionJob],
    config: Optional[RolagConfig] = None,
    *,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    measure_model: Optional[CodeSizeCostModel] = None,
    chunk_size: Optional[int] = None,
    timed: bool = False,
    check_semantics: bool = False,
    evaluator: str = "interp",
    deadline: Optional[float] = None,
    retries: int = 1,
    retry_backoff: float = 0.05,
    quarantine_file: Optional[str] = None,
    quarantine_after: int = 2,
    fault_plan: Union[None, str, FaultPlan] = None,
    serial_fallback: bool = False,
    max_pool_respawns: int = 2,
    dedupe: bool = True,
) -> DriverReport:
    """Optimize every job, in parallel, memoized, and fault-tolerant.

    ``workers`` defaults to :func:`default_worker_count`; ``workers=1``
    runs serially in-process (bit-identical to the pool path, since
    workers rebuild modules from text either way).  With ``cache_dir``
    set (and ``use_cache`` true), results are looked up before dispatch
    and newly computed ones written back.  Results come back in job
    order regardless of completion order.  ``check_semantics`` turns on
    the per-job differential oracle (see :func:`optimize_one`); it is
    part of the cache key, so checked and unchecked results never mix.
    ``evaluator`` picks the oracle's execution backend and is likewise
    fingerprinted into the key.

    The batch is scheduled through a warm-path partition.  With the
    cache on, every job is structurally fingerprinted (see
    ``repro.ir.structhash``) and split three ways: **cache hits** are
    served inline (rewritten into the job's namespace via the stored
    witness, no pool round-trip), **dedupe followers** -- jobs
    structurally identical to an earlier job in the same batch -- wait
    for their leader's single computation and receive a renamed copy,
    and only the **unique misses** reach the retry/pool machinery.
    Without a cache no fingerprinting happens (the no-cache fast path
    stays overhead-free) and dedupe degrades to coalescing textually
    identical jobs.  ``dedupe=False`` disables the coalescing
    entirely.

    Resilience knobs (see the module docstring and
    ``docs/robustness.md``): ``deadline`` bounds each function's wall
    clock; failed jobs are retried ``retries`` times with exponential
    ``retry_backoff``; functions that exhaust their retries are
    recorded in ``quarantine_file`` and skipped once they accumulate
    ``quarantine_after`` failed attempts.  ``fault_plan`` (a
    :class:`~repro.faultinject.FaultPlan`, a spec string, or ``None``
    to consult ``config.fault_plan`` and then ``ROLAG_FAULT_PLAN``)
    injects deterministic faults for testing.  Every job always yields
    a result: on unrecoverable failure, a degraded one carrying the
    original text and a structured ``error``.
    """
    config = config or RolagConfig()
    workers = default_worker_count() if workers is None else max(1, workers)
    start = perf_counter()
    plan = resolve_plan(
        fault_plan if fault_plan is not None else config.fault_plan
    )

    stats = DriverStats(jobs=len(jobs), workers=workers)
    quarantine = QuarantineList(quarantine_file, threshold=quarantine_after)
    summaries: Dict[int, Optional[StructuralSummary]] = {}
    hash_seconds = 0.0
    qkey_memo: Dict[int, str] = {}

    def summary_of(index: int) -> Optional[StructuralSummary]:
        """Memoized structural summary (None when the job won't build).

        Lazy on purpose: without a cache only failure/quarantine paths
        ever fingerprint a job, keeping the plain no-cache run at zero
        hashing overhead.
        """
        nonlocal hash_seconds
        if index not in summaries:
            hash_start = perf_counter()
            summaries[index] = job_struct_summary(jobs[index])
            hash_seconds += perf_counter() - hash_start
            if summaries[index] is None:
                stats.hash_fallbacks += 1
        return summaries[index]

    def qkey(index: int) -> str:
        if index not in qkey_memo:
            qkey_memo[index] = quarantine_key(
                jobs[index], summary_of(index)
            )
        return qkey_memo[index]

    with active_plan(plan):
        cache = (
            ResultCache(cache_dir) if (cache_dir and use_cache) else None
        )
        results: List[Optional[FunctionResult]] = [None] * len(jobs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        # In-batch dedupe: leader index per content key, follower
        # indices per leader.  With the cache on, the content key is
        # the full structural job key; without it, exact text.
        leader_by_key: Dict[object, int] = {}
        followers_of: Dict[int, List[int]] = {}
        for i, job in enumerate(jobs):
            if cache is not None:
                summary = summary_of(i)
                keys[i] = job_key(
                    job, config, measure_model, check_semantics, evaluator,
                    summary=summary,
                )
                hit = cache.get(keys[i])
                if hit is not None:
                    # Structural hits may come from a differently-named
                    # producer: restamp the job's identity and respell
                    # the output via the envelope witness.
                    hit.name = job.name
                    hit.metadata = dict(job.metadata)
                    _retarget_result(
                        hit,
                        hit.producer_witness,  # type: ignore[arg-type]
                        summary,
                    )
                    results[i] = hit
                    stats.cache_hits += 1
                    continue
                stats.cache_misses += 1
            if len(quarantine) and quarantine.is_quarantined(qkey(i)):
                stats.quarantined += 1
                results[i] = _error_result(
                    job, "quarantined", quarantine.describe(qkey(i)),
                    attempts=0,
                )
                continue
            if dedupe:
                dkey: object = (
                    keys[i]
                    if keys[i] is not None
                    else ("text", job.format, job.name, job.text)
                )
                leader = leader_by_key.get(dkey)
                if leader is not None:
                    followers_of.setdefault(leader, []).append(i)
                    stats.dedupe_hits += 1
                    continue
                leader_by_key[dkey] = i
            pending.append(i)

        if pending:
            if workers == 1 or len(pending) == 1:
                computed = {
                    i: _attempt_serially(
                        jobs[i], lambda i=i: qkey(i), config, measure_model,
                        timed, check_semantics, evaluator, deadline, retries,
                        retry_backoff, quarantine, stats,
                    )
                    for i in pending
                }
            else:
                computed = _run_pool(
                    jobs, pending, config, measure_model, timed,
                    check_semantics, evaluator, deadline, retries,
                    retry_backoff, quarantine, qkey, stats, workers,
                    chunk_size, plan, serial_fallback, max_pool_respawns,
                )
            for i in pending:
                result = computed[i]
                results[i] = result
                # Error results are never cached: transient failures
                # must not poison warm reruns.
                if cache is not None and not result.failed:
                    cache.put(keys[i], result, summary=summaries.get(i))

        # Fan leaders out to their followers (same key, so never
        # cache-written twice; failed leaders degrade each follower).
        for leader, follower_indices in followers_of.items():
            leader_result = results[leader]
            assert leader_result is not None
            for i in follower_indices:
                results[i] = _follower_result(
                    leader_result, jobs[i],
                    summaries.get(leader), summaries.get(i), stats,
                )

        quarantine.save()
        if cache is not None:
            stats.cache_writes = cache.writes
            stats.cache_corrupt = cache.corrupt
            stats.cache_write_errors = cache.write_errors

    final: List[FunctionResult] = [r for r in results if r is not None]
    assert len(final) == len(jobs)
    stats.guard_failures = sum(len(r.guard_reports) for r in final)
    for result in final:
        for phase, seconds in result.phase_seconds.items():
            stats.phase_seconds[phase] = (
                stats.phase_seconds.get(phase, 0.0) + seconds
            )
    if timed:
        # Parent-side structural fingerprinting books under ``hash``.
        stats.phase_seconds["hash"] = (
            stats.phase_seconds.get("hash", 0.0) + hash_seconds
        )
    stats.wall_seconds = perf_counter() - start
    return DriverReport(results=final, stats=stats)
