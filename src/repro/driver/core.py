"""The parallel, memoizing, fault-tolerant optimization driver.

:func:`optimize_functions` fans per-function RoLAG work out over a
process pool.  Each worker receives a picklable :class:`FunctionJob`
(IR or mini-C text), rebuilds the module in its own interpreter, runs
the standard measurement pipeline -- size before, LLVM-style reroll
baseline, RoLAG, verify, size after -- and sends back a plain
:class:`FunctionResult`.

Scheduling is chunked (one pickle round-trip per chunk, not per
function) and falls back to a deterministic in-process loop for
``workers=1``, so tests and small runs never pay pool startup.  With a
cache directory, results are memoized content-addressed under an
*alpha-invariant structural* key (see ``cache.py`` and
``repro.ir.structhash``): a warm rerun resolves entirely from disk
even if every value, label, and function in the corpus was renamed in
between.  The same fingerprints drive an in-batch dedupe pass --
structurally identical jobs are coalesced before they reach the pool,
one leader computes, and every follower receives a copy rewritten
into its own namespace via the canonical-renaming witness.

At corpus scale, one pathological function must cost one result, never
the run.  The resilience contract (see ``docs/robustness.md``):

* every job is guarded in its worker -- an exception or a cooperative
  :class:`~repro.faultinject.DeadlineExceeded` becomes a structured
  failure, never a lost batch;
* ``deadline`` bounds each function's wall clock; hangs that ignore
  the cooperative checkpoints are killed by the parent watchdog along
  with their pool, which is respawned (``max_pool_respawns`` times);
* failed jobs are retried (``retries`` times, exponential backoff) and
  functions that exhaust their retries are recorded in a persistent
  quarantine list so later runs skip them outright;
* a job that still fails degrades gracefully: its
  :class:`FunctionResult` carries the *original* function text plus a
  structured ``error``/``error_kind``, and the batch completes;
* when the pool keeps dying, the driver either falls back to the
  in-process serial path (``serial_fallback=True``) or abandons the
  remaining jobs as error results -- it never deadlocks.

Failures are counted on :class:`DriverStats` (``crashed``,
``timed_out``, ``retried``, ``quarantined``, ``cache_corrupt``, ...)
and surfaced in the CLI batch summary.  The whole machinery is driven
through the deterministic fault-injection sites in
``repro.faultinject`` (``driver.worker.start``, ``driver.worker.roll``,
``cache.read``, ``cache.write``, ``pipeline.pass``, ...).
"""

from __future__ import annotations

import os
import zlib
from collections import deque
from dataclasses import dataclass
from time import perf_counter, sleep
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..analysis.costmodel import CodeSizeCostModel
from ..difftest.runner import check_module_semantics
from ..faultinject import (
    DeadlineExceeded,
    FaultPlan,
    active_plan,
    checkpoint,
    deadline_scope,
    fire,
    install_plan,
    resolve_plan,
)
from ..frontend import compile_c
from ..ir import (
    ParseError,
    parse_module,
    print_module,
    rename_function_locals,
    rename_globals,
    verify_module,
)
from ..ir.module import Module
from ..ir.structhash import StructuralSummary, compose_witness_renames
from ..rolag import RolagConfig, RolagStats, roll_loops_in_module
from ..transforms.reroll import reroll_loops
from .cache import ResultCache, job_key, job_struct_summary
from .quarantine import QuarantineList, quarantine_key
from .types import DriverReport, DriverStats, FunctionJob, FunctionResult

#: Pool sizes beyond this stop paying off for per-function work.
MAX_DEFAULT_WORKERS = 8


def default_worker_count() -> int:
    """``min(os.cpu_count(), 8)``, and at least 1."""
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS))


def _load_module(job: FunctionJob) -> Module:
    """Materialize the job's module in this process."""
    if job.ir_text is not None:
        module = parse_module(job.ir_text)
        verify_module(module)
        return module
    return compile_c(job.c_source, module_name=f"driver.{job.name}")


def _measure(
    module: Module, name: Optional[str], model: Optional[CodeSizeCostModel]
) -> int:
    # Imported here, not at module scope: ``repro.bench`` imports this
    # package back (its harness drives the pool), and a top-level import
    # made a cold ``import repro.driver`` fail with a circular-import
    # error unless the caller happened to import ``repro.bench`` first.
    from ..bench.objsize import function_size, measure_module

    if name is None:
        return measure_module(module, model).total
    return function_size(module.get_function(name), model)


def optimize_one(
    job: FunctionJob,
    config: Optional[RolagConfig] = None,
    measure_model: Optional[CodeSizeCostModel] = None,
    timed: bool = False,
    check_semantics: bool = False,
    evaluator: str = "interp",
) -> FunctionResult:
    """The per-function pipeline one worker runs for one job.

    With ``check_semantics`` set, both transformed modules are
    differentially tested against a fresh copy of the input via the
    :mod:`repro.difftest` oracle (executed by ``evaluator``); the
    verdict and any mismatch details travel back (and into the cache)
    on the result.  Oracle time lands in the stats' ``eval`` phase so
    timed runs show evaluation next to the rolling phases.

    With ``config.validate`` on, both the reroll baseline and every
    RoLAG rolling decision run transactionally through the online
    validation gate (see ``repro.validation``): rejected edits are
    rolled back to best-known-good IR and recorded on the result's
    ``guard_reports``.

    The pipeline checkpoints the ambient deadline between stages, so a
    budgeted run (see :func:`optimize_functions`) bails out of a slow
    function at the next stage boundary.
    """
    config = config or RolagConfig()
    start = perf_counter()
    parse_seconds = 0.0

    def load() -> Module:
        # Parse/verify wall time books under the stats' ``parse`` phase
        # so timed runs attribute the Amdahl floor directly.
        nonlocal parse_seconds
        parse_start = perf_counter()
        loaded = _load_module(job)
        parse_seconds += perf_counter() - parse_start
        return loaded

    validate = config.validate
    # Vector seed derives from the input text, so reruns replay the
    # same vectors (for both the oracle and the online validation gate)
    # and the cache entry stays meaningful.
    vector_seed = zlib.crc32(job.text.encode("utf-8")) & 0x7FFFFFFF
    guard_reports: List[Dict[str, object]] = []

    # Baseline: LLVM-style rerolling on its own fresh copy.  With
    # validation on, reroll runs as a transaction through the gate;
    # with it off, the historical direct path is kept bit-for-bit
    # (including fault-site hit counts).
    llvm_module = load()
    checkpoint("load")
    if validate != "off":
        from ..transforms.txn import TransactionalPassManager

        llvm_validator = _make_validator(config, vector_seed)
        reroll_pm = TransactionalPassManager(
            verify=False, validator=llvm_validator
        )
        reroll_pm.add("reroll", reroll_loops)
        llvm_rolled = reroll_pm.run(llvm_module)
        guard_reports.extend(
            report.to_json_dict() for report in llvm_validator.reports
        )
    else:
        llvm_rolled = sum(
            reroll_loops(f)
            for f in llvm_module.functions
            if not f.is_declaration
        )
    verify_module(llvm_module)
    llvm_size = _measure(llvm_module, job.name, measure_model)
    checkpoint("reroll")

    # RoLAG on another fresh copy, measured before and after.
    module = load()
    size_before = _measure(module, job.name, measure_model)
    stats = RolagStats(timed=timed)
    fire("driver.worker.roll")
    rolag_validator = (
        _make_validator(config, vector_seed) if validate != "off" else None
    )
    rolag_rolled = roll_loops_in_module(
        module, config=config, stats=stats, validator=rolag_validator
    )
    guard_reports.extend(stats.guard_reports)
    verify_module(module)
    rolag_size = _measure(module, job.name, measure_model)
    checkpoint("rolag")

    semantics_ok: Optional[bool] = None
    semantics_mismatches: List[str] = []
    if check_semantics:
        original = load()
        eval_start = perf_counter()
        for label, candidate in (("reroll", llvm_module), ("rolag", module)):
            ok, details = check_module_semantics(
                original, candidate, seed=vector_seed, evaluator=evaluator
            )
            if not ok:
                semantics_mismatches.extend(
                    f"{label}: {detail}" for detail in details
                )
            checkpoint("eval")
        semantics_ok = not semantics_mismatches
        if timed:
            stats.add_phase_time("eval", perf_counter() - eval_start)

    if timed:
        stats.add_phase_time("parse", parse_seconds)

    return FunctionResult(
        name=job.name,
        metadata=dict(job.metadata),
        size_before=size_before,
        llvm_size=llvm_size,
        rolag_size=rolag_size,
        llvm_rolled=llvm_rolled,
        rolag_rolled=rolag_rolled,
        attempted=stats.attempted,
        schedule_rejected=stats.schedule_rejected,
        unprofitable=stats.unprofitable,
        node_counts=dict(stats.node_counts),
        savings=list(stats.savings),
        optimized_ir=print_module(module),
        semantics_checked=check_semantics,
        semantics_ok=semantics_ok,
        semantics_mismatches=semantics_mismatches,
        guard_reports=guard_reports,
        phase_seconds=dict(stats.phase_seconds),
        wall_seconds=perf_counter() - start,
    )


def _make_validator(config: RolagConfig, seed: int):
    """The per-module-copy validation gate described by ``config``.

    Imported lazily: ``repro.validation`` transitively pulls in the
    difftest runner, which imports this package back.
    """
    from ..validation import Validator

    return Validator(
        config.validate,
        vectors=config.validate_vectors,
        step_limit=config.validate_step_limit,
        guard_dir=config.guard_dir,
        evaluator=config.validate_evaluator,
        seed=seed,
    )


# --- failure plumbing -------------------------------------------------------


@dataclass
class _Failure:
    """Picklable record of one failed attempt (travels pool -> parent)."""

    kind: str  # "crash" | "timeout"
    message: str


#: One worker-side attempt outcome.
Outcome = Union[FunctionResult, _Failure]


def run_one_guarded(
    job: FunctionJob,
    config: Optional[RolagConfig] = None,
    measure_model: Optional[CodeSizeCostModel] = None,
    timed: bool = False,
    check_semantics: bool = False,
    evaluator: str = "interp",
    deadline: Optional[float] = None,
) -> Outcome:
    """One attempt at one job, with crash/timeout containment.

    Runs :func:`optimize_one` under a cooperative deadline; any
    exception (including injected faults) becomes a :class:`_Failure`
    instead of propagating, so a worker never loses its whole chunk to
    one pathological function.  Hard deaths (``os._exit``, segfaults)
    cannot be caught here and are the parent pool's problem.
    """
    try:
        with deadline_scope(deadline):
            fire("driver.worker.start")
            return optimize_one(
                job, config, measure_model, timed, check_semantics, evaluator
            )
    except DeadlineExceeded as error:
        return _Failure("timeout", str(error))
    except Exception as error:
        return _Failure("crash", f"{type(error).__name__}: {error}")


def _error_result(
    job: FunctionJob, kind: str, message: str, attempts: int
) -> FunctionResult:
    """Graceful degradation: the original function plus a structured error."""
    return FunctionResult(
        name=job.name,
        metadata=dict(job.metadata),
        size_before=0,
        llvm_size=0,
        rolag_size=0,
        llvm_rolled=0,
        rolag_rolled=0,
        attempted=0,
        schedule_rejected=0,
        unprofitable=0,
        node_counts={},
        savings=[],
        optimized_ir=job.text,
        error=message,
        error_kind=kind,
        attempts=attempts,
    )


def _retarget_result(
    result: FunctionResult,
    producer: Optional[StructuralSummary],
    consumer: Optional[StructuralSummary],
) -> None:
    """Respell ``result`` (the producer's output) in the consumer's
    names, via the composed canonical-renaming witness.

    Rewrites the ``optimized_ir`` text and the per-function names in
    ``savings``.  Identity compositions (same spelling on both sides)
    are free, and any failure keeps the producer's text verbatim -- the
    result is still structurally correct, just spelled differently.
    """
    if producer is None or consumer is None:
        return
    locals_map, globals_map = compose_witness_renames(producer, consumer)
    if not locals_map and not globals_map:
        return
    try:
        text = result.optimized_ir
        if locals_map:
            text = rename_function_locals(text, locals_map)
        if globals_map:
            text = rename_globals(text, globals_map)
        result.optimized_ir = text
    except ParseError:  # pragma: no cover - output IR always lexes
        pass
    if globals_map:
        result.savings = [
            (globals_map.get(fn_name, fn_name), saved)
            for fn_name, saved in result.savings
        ]


def _follower_result(
    leader_result: FunctionResult,
    job: FunctionJob,
    leader_summary: Optional[StructuralSummary],
    summary: Optional[StructuralSummary],
    stats: DriverStats,
) -> FunctionResult:
    """Fan one computed leader result out to a structural duplicate.

    A failed leader degrades the follower identically (same error
    class, counted per follower) -- the follower *is* the same
    computation, so pretending it might have succeeded would be a lie.
    Successful results are deep-copied, restamped with the follower's
    identity, and their ``optimized_ir`` rewritten into the follower's
    namespace; ``guard_reports`` travel with the copy, so every
    rolled-back transaction is attributed to every duplicate.
    """
    if leader_result.failed:
        kind = leader_result.error_kind or "crash"
        if kind == "timeout":
            stats.timed_out += 1
        else:
            stats.crashed += 1
        result = _error_result(
            job, kind, leader_result.error or "", leader_result.attempts
        )
        result.dedupe_hit = True
        return result
    result = FunctionResult.from_json_dict(leader_result.to_json_dict())
    result.name = job.name
    result.metadata = dict(job.metadata)
    result.attempts = leader_result.attempts
    # The work happened once, in the leader: no wall/phase time here,
    # or timed aggregates would double-count it.
    result.wall_seconds = 0.0
    result.phase_seconds = {}
    result.dedupe_hit = True
    _retarget_result(result, leader_summary, summary)
    return result


# --- pool plumbing ----------------------------------------------------------
#
# The per-run knobs are shipped once per worker through the pool
# initializer instead of once per job through every pickle.

_WORKER_STATE: dict = {}

#: Exit code of a pool worker that noticed its parent process died.
ORPHANED_WORKER_EXIT_CODE = 87

#: Seconds between parent-liveness checks in each pool worker.
_PARENT_WATCH_INTERVAL = 1.0


def _watch_parent(parent_pid: int) -> None:
    """Exit the worker once its parent is gone (ppid changed).

    Forked siblings hold each other's call-queue pipe ends open, so a
    SIGKILLed parent (e.g. a serve daemon generation under the
    kill-chaos storm) would otherwise leave its workers blocked on
    ``get()`` forever -- orphans that also pin any inherited stdio
    pipes open.  Runs as a daemon thread started by the initializer.
    """
    import threading  # local: workers only

    def watch() -> None:
        while True:
            sleep(_PARENT_WATCH_INTERVAL)
            if os.getppid() != parent_pid:
                os._exit(ORPHANED_WORKER_EXIT_CODE)

    thread = threading.Thread(
        target=watch, name="parent-watch", daemon=True
    )
    thread.start()


def _init_worker(
    config: RolagConfig,
    measure_model: Optional[CodeSizeCostModel],
    timed: bool,
    check_semantics: bool,
    evaluator: str,
    deadline: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> None:
    if "parent_watch" not in _WORKER_STATE:
        _WORKER_STATE["parent_watch"] = True
        _watch_parent(os.getppid())
    _WORKER_STATE["config"] = config
    _WORKER_STATE["measure_model"] = measure_model
    _WORKER_STATE["timed"] = timed
    _WORKER_STATE["check_semantics"] = check_semantics
    _WORKER_STATE["evaluator"] = evaluator
    _WORKER_STATE["deadline"] = deadline
    # Fault-plan hit counters are per worker process by design: each
    # worker unpickles its own zeroed copy.
    install_plan(fault_plan)


def _run_chunk(jobs: Sequence[FunctionJob]) -> List[Outcome]:
    """Worker entry point: one guarded attempt per job in the chunk."""
    return [
        run_one_guarded(
            job,
            config=_WORKER_STATE["config"],
            measure_model=_WORKER_STATE["measure_model"],
            timed=_WORKER_STATE["timed"],
            check_semantics=_WORKER_STATE["check_semantics"],
            evaluator=_WORKER_STATE["evaluator"],
            deadline=_WORKER_STATE.get("deadline"),
        )
        for job in jobs
    ]


def _default_chunk_size(pending: int, workers: int) -> int:
    # ~4 chunks per worker balances pickle overhead against stragglers.
    return max(1, -(-pending // (workers * 4)))


def _terminate_pool_workers(executor) -> None:
    """SIGTERM every live worker of ``executor``; never raises.

    The hang-containment contract depends on this actually reaching
    the processes: a worker stuck in native code ignores
    ``shutdown(cancel_futures=True)`` and, being non-daemonic, would
    otherwise block interpreter exit.
    """
    procs = getattr(executor, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except Exception:
            pass


def _attempt_serially(
    job: FunctionJob,
    qkey_fn: Callable[[], str],
    config: Optional[RolagConfig],
    measure_model: Optional[CodeSizeCostModel],
    timed: bool,
    check_semantics: bool,
    evaluator: str,
    deadline: Optional[float],
    retries: int,
    retry_backoff: float,
    quarantine: QuarantineList,
    stats: DriverStats,
) -> FunctionResult:
    """The in-process retry loop: attempt, back off, degrade.

    ``qkey_fn`` is lazy: deriving a quarantine key means fingerprinting
    the job (structurally when it builds), which only failure paths
    should ever pay for.
    """
    attempts = 0
    dispatch_start = perf_counter()
    while True:
        attempts += 1
        outcome = run_one_guarded(
            job, config, measure_model, timed, check_semantics, evaluator,
            deadline,
        )
        if isinstance(outcome, FunctionResult):
            outcome.attempts = attempts
            stats.record_latency(perf_counter() - dispatch_start)
            return outcome
        quarantine.record_failure(
            qkey_fn(), job.label, outcome.kind, outcome.message
        )
        if attempts <= retries:
            stats.retried += 1
            if retry_backoff > 0.0:
                sleep(retry_backoff * (2 ** (attempts - 1)))
            continue
        if outcome.kind == "timeout":
            stats.timed_out += 1
        else:
            stats.crashed += 1
        stats.record_latency(perf_counter() - dispatch_start)
        return _error_result(job, outcome.kind, outcome.message, attempts)


def _run_pool(
    jobs: Sequence[FunctionJob],
    pending: List[int],
    config: RolagConfig,
    measure_model: Optional[CodeSizeCostModel],
    timed: bool,
    check_semantics: bool,
    evaluator: str,
    deadline: Optional[float],
    retries: int,
    retry_backoff: float,
    quarantine: QuarantineList,
    qkey: Callable[[int], str],
    stats: DriverStats,
    workers: int,
    chunk_size: Optional[int],
    plan: Optional[FaultPlan],
    serial_fallback: bool,
    max_pool_respawns: int,
) -> Dict[int, FunctionResult]:
    """Crash/hang-isolated pool execution with respawn and retry.

    A worker that dies abruptly breaks the whole
    :class:`~concurrent.futures.ProcessPoolExecutor`; the executor
    cannot say *which* job killed it, so in-flight chunks are requeued
    uncharged and the pool is rebuilt -- the respawn budget bounds a
    poison job that kills every pool it meets.  A chunk observed
    running past its whole-chunk deadline budget is declared hung
    (non-cooperative stall): its jobs are charged a timeout, its
    workers are killed, and the pool is rebuilt.
    """
    from concurrent.futures import (
        FIRST_COMPLETED,
        ProcessPoolExecutor,
        wait,
    )
    from concurrent.futures.process import BrokenProcessPool

    computed: Dict[int, FunctionResult] = {}
    attempts: Dict[int, int] = {i: 0 for i in pending}
    not_before: Dict[int, float] = {i: 0.0 for i in pending}
    queue: deque = deque(pending)
    respawns = 0
    poll = 0.1 if deadline is None else max(0.002, min(0.05, deadline / 4.0))
    chunk = chunk_size or (
        1
        if (deadline is not None or plan is not None)
        else _default_chunk_size(len(pending), workers)
    )

    def finish_failure(index: int, kind: str, message: str) -> None:
        attempts[index] += 1
        quarantine.record_failure(
            qkey(index), jobs[index].label, kind, message
        )
        if attempts[index] <= retries:
            stats.retried += 1
            backoff = retry_backoff * (2 ** (attempts[index] - 1))
            not_before[index] = perf_counter() + backoff
            queue.append(index)
            return
        if kind == "timeout":
            stats.timed_out += 1
        else:
            stats.crashed += 1
        computed[index] = _error_result(
            jobs[index], kind, message, attempts[index]
        )

    def harvest(
        indices: List[int],
        outcomes: List[Outcome],
        submitted: Optional[float] = None,
    ) -> None:
        now = perf_counter()
        for index, outcome in zip(indices, outcomes):
            if isinstance(outcome, FunctionResult):
                outcome.attempts = attempts[index] + 1
                computed[index] = outcome
                if submitted is not None:
                    stats.record_latency(now - submitted)
            else:
                finish_failure(index, outcome.kind, outcome.message)

    executor: Optional[ProcessPoolExecutor] = None
    futures: Dict[object, dict] = {}

    def shutdown(kill: bool) -> None:
        nonlocal executor
        if executor is None:
            return
        if kill:
            _terminate_pool_workers(executor)
        try:
            executor.shutdown(wait=not kill, cancel_futures=True)
        except Exception:
            pass
        executor = None

    def drain_inflight(hung: set) -> None:
        """Settle every in-flight chunk after a pool teardown."""
        for future, info in list(futures.items()):
            if future in hung:
                for index in info["indices"]:
                    finish_failure(
                        index,
                        "timeout",
                        f"exceeded the {deadline:.3f}s wall-clock deadline "
                        "without yielding; worker killed",
                    )
            elif future.done():
                try:
                    outcomes = future.result(timeout=0)
                except Exception:
                    queue.extend(info["indices"])
                else:
                    harvest(info["indices"], outcomes, info.get("submitted"))
            else:
                queue.extend(info["indices"])
        futures.clear()

    pool_error: Optional[str] = None
    try:
        while queue or futures:
            if executor is None and queue:
                if respawns > max_pool_respawns:
                    break  # pool declared unhealthy; drained below
                executor = ProcessPoolExecutor(
                    max_workers=min(workers, max(1, len(queue))),
                    initializer=_init_worker,
                    initargs=(
                        config, measure_model, timed, check_semantics,
                        evaluator, deadline,
                        plan.fresh() if plan is not None else None,
                    ),
                )
            if executor is not None and queue:
                now = perf_counter()
                eligible: List[int] = []
                waiting: deque = deque()
                while queue:
                    index = queue.popleft()
                    if not_before[index] <= now:
                        eligible.append(index)
                    else:
                        waiting.append(index)
                queue = waiting
                for start in range(0, len(eligible), chunk):
                    indices = eligible[start:start + chunk]
                    future = executor.submit(
                        _run_chunk, [jobs[i] for i in indices]
                    )
                    futures[future] = {
                        "indices": indices,
                        "first_running": None,
                        "submitted": perf_counter(),
                    }
            if not futures:
                if queue:
                    sleep(poll)  # every queued job is inside its backoff
                continue

            done, _ = wait(
                set(futures), timeout=poll, return_when=FIRST_COMPLETED
            )
            now = perf_counter()
            broken = False
            for future in done:
                info = futures.pop(future)
                try:
                    outcomes = future.result()
                except BrokenProcessPool:
                    broken = True
                    queue.extend(info["indices"])
                except Exception:
                    # Executor infrastructure failure: treat like a death.
                    broken = True
                    queue.extend(info["indices"])
                else:
                    harvest(info["indices"], outcomes, info.get("submitted"))
            if broken:
                respawns += 1
                stats.pool_respawns += 1
                drain_inflight(hung=set())
                shutdown(kill=True)
                continue

            if deadline is not None and executor is not None:
                hung = set()
                for future, info in futures.items():
                    if info["first_running"] is None and future.running():
                        info["first_running"] = now
                    if info["first_running"] is None:
                        continue
                    budget = (
                        deadline * len(info["indices"])
                        + max(4 * poll, 0.05)
                    )
                    if now - info["first_running"] > budget:
                        hung.add(future)
                if hung:
                    respawns += 1
                    stats.pool_respawns += 1
                    drain_inflight(hung)
                    shutdown(kill=True)
    except Exception as error:
        # A parent-side failure mid-collect (executor plumbing, a
        # harvest gone wrong, a signal-interrupted wait) must never
        # leak the in-flight requeue: pull every uncomputed index back
        # out of the in-flight map so the post-loop degradation path
        # settles it.  The pool itself is no longer trustworthy, so
        # charge the whole respawn budget.
        pool_error = f"{type(error).__name__}: {error}"
        for info in futures.values():
            queue.extend(
                i for i in info["indices"] if i not in computed
            )
        respawns = max_pool_respawns + 1
    finally:
        shutdown(kill=bool(futures))
        futures.clear()

    if queue:
        # Respawn budget exhausted: the pool is unhealthy.  Either
        # degrade to the in-process path or abandon the leftovers as
        # structured errors -- never deadlock.
        remaining = list(queue)
        queue.clear()
        if serial_fallback:
            stats.serial_fallback = True
            for index in remaining:
                computed[index] = _attempt_serially(
                    jobs[index], lambda i=index: qkey(i), config, measure_model,
                    timed, check_semantics, evaluator, deadline,
                    retries, retry_backoff, quarantine, stats,
                )
        else:
            detail = f": {pool_error}" if pool_error else ""
            for index in remaining:
                stats.crashed += 1
                computed[index] = _error_result(
                    jobs[index],
                    "pool",
                    f"worker pool unhealthy after {respawns} respawn(s)"
                    f"{detail}; job abandoned (enable serial_fallback to "
                    "retry in-process)",
                    attempts[index],
                )
    return computed


def optimize_functions(
    jobs: Sequence[FunctionJob],
    config: Optional[RolagConfig] = None,
    *,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    measure_model: Optional[CodeSizeCostModel] = None,
    chunk_size: Optional[int] = None,
    timed: bool = False,
    check_semantics: bool = False,
    evaluator: str = "interp",
    deadline: Optional[float] = None,
    retries: int = 1,
    retry_backoff: float = 0.05,
    quarantine_file: Optional[str] = None,
    quarantine_after: int = 2,
    fault_plan: Union[None, str, FaultPlan] = None,
    serial_fallback: bool = False,
    max_pool_respawns: int = 2,
    dedupe: bool = True,
) -> DriverReport:
    """Optimize every job, in parallel, memoized, and fault-tolerant.

    ``workers`` defaults to :func:`default_worker_count`; ``workers=1``
    runs serially in-process (bit-identical to the pool path, since
    workers rebuild modules from text either way).  With ``cache_dir``
    set (and ``use_cache`` true), results are looked up before dispatch
    and newly computed ones written back.  Results come back in job
    order regardless of completion order.  ``check_semantics`` turns on
    the per-job differential oracle (see :func:`optimize_one`); it is
    part of the cache key, so checked and unchecked results never mix.
    ``evaluator`` picks the oracle's execution backend and is likewise
    fingerprinted into the key.

    The batch is scheduled through a warm-path partition.  With the
    cache on, every job is structurally fingerprinted (see
    ``repro.ir.structhash``) and split three ways: **cache hits** are
    served inline (rewritten into the job's namespace via the stored
    witness, no pool round-trip), **dedupe followers** -- jobs
    structurally identical to an earlier job in the same batch -- wait
    for their leader's single computation and receive a renamed copy,
    and only the **unique misses** reach the retry/pool machinery.
    Without a cache no fingerprinting happens (the no-cache fast path
    stays overhead-free) and dedupe degrades to coalescing textually
    identical jobs.  ``dedupe=False`` disables the coalescing
    entirely.

    Resilience knobs (see the module docstring and
    ``docs/robustness.md``): ``deadline`` bounds each function's wall
    clock; failed jobs are retried ``retries`` times with exponential
    ``retry_backoff``; functions that exhaust their retries are
    recorded in ``quarantine_file`` and skipped once they accumulate
    ``quarantine_after`` failed attempts.  ``fault_plan`` (a
    :class:`~repro.faultinject.FaultPlan`, a spec string, or ``None``
    to consult ``config.fault_plan`` and then ``ROLAG_FAULT_PLAN``)
    injects deterministic faults for testing.  Every job always yields
    a result: on unrecoverable failure, a degraded one carrying the
    original text and a structured ``error``.
    """
    config = config or RolagConfig()
    workers = default_worker_count() if workers is None else max(1, workers)
    start = perf_counter()
    plan = resolve_plan(
        fault_plan if fault_plan is not None else config.fault_plan
    )

    stats = DriverStats(jobs=len(jobs), workers=workers)
    quarantine = QuarantineList(quarantine_file, threshold=quarantine_after)
    summaries: Dict[int, Optional[StructuralSummary]] = {}
    hash_seconds = 0.0
    qkey_memo: Dict[int, str] = {}

    def summary_of(index: int) -> Optional[StructuralSummary]:
        """Memoized structural summary (None when the job won't build).

        Lazy on purpose: without a cache only failure/quarantine paths
        ever fingerprint a job, keeping the plain no-cache run at zero
        hashing overhead.
        """
        nonlocal hash_seconds
        if index not in summaries:
            hash_start = perf_counter()
            summaries[index] = job_struct_summary(jobs[index])
            hash_seconds += perf_counter() - hash_start
            if summaries[index] is None:
                stats.hash_fallbacks += 1
        return summaries[index]

    def qkey(index: int) -> str:
        if index not in qkey_memo:
            qkey_memo[index] = quarantine_key(
                jobs[index], summary_of(index)
            )
        return qkey_memo[index]

    with active_plan(plan):
        cache = (
            ResultCache(cache_dir) if (cache_dir and use_cache) else None
        )
        results: List[Optional[FunctionResult]] = [None] * len(jobs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        # In-batch dedupe: leader index per content key, follower
        # indices per leader.  With the cache on, the content key is
        # the full structural job key; without it, exact text.
        leader_by_key: Dict[object, int] = {}
        followers_of: Dict[int, List[int]] = {}
        for i, job in enumerate(jobs):
            if cache is not None:
                summary = summary_of(i)
                keys[i] = job_key(
                    job, config, measure_model, check_semantics, evaluator,
                    summary=summary,
                )
                hit = cache.get(keys[i])
                if hit is not None:
                    # Structural hits may come from a differently-named
                    # producer: restamp the job's identity and respell
                    # the output via the envelope witness.
                    hit.name = job.name
                    hit.metadata = dict(job.metadata)
                    _retarget_result(
                        hit,
                        hit.producer_witness,  # type: ignore[arg-type]
                        summary,
                    )
                    results[i] = hit
                    stats.cache_hits += 1
                    continue
                stats.cache_misses += 1
            if len(quarantine) and quarantine.is_quarantined(qkey(i)):
                stats.quarantined += 1
                results[i] = _error_result(
                    job, "quarantined", quarantine.describe(qkey(i)),
                    attempts=0,
                )
                continue
            if dedupe:
                dkey: object = (
                    keys[i]
                    if keys[i] is not None
                    else ("text", job.format, job.name, job.text)
                )
                leader = leader_by_key.get(dkey)
                if leader is not None:
                    followers_of.setdefault(leader, []).append(i)
                    stats.dedupe_hits += 1
                    continue
                leader_by_key[dkey] = i
            pending.append(i)

        if pending:
            if workers == 1 or len(pending) == 1:
                computed = {
                    i: _attempt_serially(
                        jobs[i], lambda i=i: qkey(i), config, measure_model,
                        timed, check_semantics, evaluator, deadline, retries,
                        retry_backoff, quarantine, stats,
                    )
                    for i in pending
                }
            else:
                computed = _run_pool(
                    jobs, pending, config, measure_model, timed,
                    check_semantics, evaluator, deadline, retries,
                    retry_backoff, quarantine, qkey, stats, workers,
                    chunk_size, plan, serial_fallback, max_pool_respawns,
                )
            for i in pending:
                result = computed[i]
                results[i] = result
                # Error results are never cached: transient failures
                # must not poison warm reruns.
                if cache is not None and not result.failed:
                    cache.put(keys[i], result, summary=summaries.get(i))

        # Fan leaders out to their followers (same key, so never
        # cache-written twice; failed leaders degrade each follower).
        for leader, follower_indices in followers_of.items():
            leader_result = results[leader]
            assert leader_result is not None
            for i in follower_indices:
                results[i] = _follower_result(
                    leader_result, jobs[i],
                    summaries.get(leader), summaries.get(i), stats,
                )

        quarantine.save()
        if cache is not None:
            stats.cache_writes = cache.writes
            stats.cache_corrupt = cache.corrupt
            stats.cache_write_errors = cache.write_errors

    final: List[FunctionResult] = [r for r in results if r is not None]
    assert len(final) == len(jobs)
    stats.guard_failures = sum(len(r.guard_reports) for r in final)
    for result in final:
        for phase, seconds in result.phase_seconds.items():
            stats.phase_seconds[phase] = (
                stats.phase_seconds.get(phase, 0.0) + seconds
            )
    if timed:
        # Parent-side structural fingerprinting books under ``hash``.
        stats.phase_seconds["hash"] = (
            stats.phase_seconds.get("hash", 0.0) + hash_seconds
        )
    stats.wall_seconds = perf_counter() - start
    return DriverReport(results=final, stats=stats)


# --- the incremental front end ---------------------------------------------


class DriverSession:
    """Incremental submit/collect access to the driver machinery.

    Where :func:`optimize_functions` consumes a whole batch and
    returns, a session stays open: jobs arrive one at a time
    (:meth:`submit` returns a ticket immediately), results are
    harvested as they complete (:meth:`collect`), and the memo cache,
    quarantine list, structural-dedupe table, and worker pool persist
    across the session's lifetime.  This is the engine behind
    ``repro serve`` -- a streaming daemon needs admission to be cheap
    and non-blocking while computation proceeds elsewhere.

    Semantics mirror the batch entry point exactly:

    * with a cache, every job is structurally fingerprinted and cache
      hits are served at submit time, rewritten into the submitting
      job's namespace via the stored witness;
    * a job structurally identical to one still *in flight* coalesces
      onto that leader (even when the two came from different
      submitters): one computation, every follower gets a renamed
      copy, failures degrade every follower alike;
    * quarantined jobs are refused with a structured error result;
    * the resilience contract holds: deadlines, retries with backoff,
      pool respawn after crashes/hangs, graceful degradation -- every
      submitted ticket always resolves to exactly one result.

    With ``workers == 1`` jobs execute in-process at the next
    :meth:`pump`/:meth:`collect` (deterministic, pool-free -- the mode
    tests and single-core daemons run; deferring execution past
    :meth:`submit` is what lets back-to-back identical submissions
    coalesce even without a pool).  With more workers a persistent
    :class:`~concurrent.futures.ProcessPoolExecutor` computes jobs as
    single-job futures; :meth:`collect` (or :meth:`pump`) advances the
    event loop.  A session is *not* thread-safe: one owner thread
    (the serve scheduler) drives it.

    Always :meth:`close` a session (or use it as a context manager):
    closing drains or degrades every outstanding ticket and tears the
    pool down -- no orphaned workers, no leaked in-flight jobs, even
    when teardown itself hits an exception.
    """

    def __init__(
        self,
        config: Optional[RolagConfig] = None,
        *,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        measure_model: Optional[CodeSizeCostModel] = None,
        timed: bool = False,
        check_semantics: bool = False,
        evaluator: str = "interp",
        deadline: Optional[float] = None,
        retries: int = 1,
        retry_backoff: float = 0.05,
        quarantine_file: Optional[str] = None,
        quarantine_after: int = 2,
        quarantine_fsync: bool = False,
        fault_plan: Union[None, str, FaultPlan] = None,
        serial_fallback: bool = True,
        max_pool_respawns: int = 2,
        dedupe: bool = True,
    ) -> None:
        self.config = config or RolagConfig()
        self.workers = (
            default_worker_count() if workers is None else max(1, workers)
        )
        self._measure_model = measure_model
        self._timed = timed
        self._check_semantics = check_semantics
        self._evaluator = evaluator
        self._deadline = deadline
        self._retries = retries
        self._retry_backoff = retry_backoff
        self._serial_fallback = serial_fallback
        self._max_pool_respawns = max_pool_respawns
        self._dedupe = dedupe

        self.stats = DriverStats(jobs=0, workers=self.workers)
        self._cache = (
            ResultCache(cache_dir) if (cache_dir and use_cache) else None
        )
        self._quarantine = QuarantineList(
            quarantine_file, threshold=quarantine_after,
            fsync=quarantine_fsync,
        )
        self._plan = resolve_plan(
            fault_plan if fault_plan is not None else self.config.fault_plan
        )
        # The serial path (and parent-side cache reads) fire fault
        # sites in this process; install the plan for the session's
        # lifetime and restore whatever was ambient on close.
        from ..faultinject.plan import get_active_plan

        self._prev_plan = get_active_plan()
        if self._plan is not None:
            install_plan(self._plan)

        #: Called as ``on_result(ticket, result)`` the moment a ticket
        #: resolves (from submit for cache hits / serial runs, from
        #: pump for pool completions).  The serve scheduler hooks this.
        self.on_result: Optional[Callable[[int, FunctionResult], None]] = None
        #: Called as ``on_respawn(count)`` each time the worker pool is
        #: torn down and rebuilt after a death or hang -- the session
        #: restart hook a supervising service uses to log and count
        #: partial restarts without polling the stats.
        self.on_respawn: Optional[Callable[[int], None]] = None

        self._next_ticket = 0
        self._jobs: Dict[int, FunctionJob] = {}
        self._keys: Dict[int, Optional[str]] = {}
        self._summaries: Dict[int, Optional[StructuralSummary]] = {}
        self._qkeys: Dict[int, str] = {}
        self._submitted_at: Dict[int, float] = {}
        self._ready: deque = deque()  # (ticket, result) awaiting collect
        self._done: Dict[int, bool] = {}
        # In-flight dedupe: content key -> leader ticket (only while
        # the leader is unresolved), plus follower lists per leader.
        self._leader_by_key: Dict[object, int] = {}
        self._dkey_of: Dict[int, object] = {}
        self._followers: Dict[int, List[int]] = {}
        # Pool state (workers > 1).
        self._queue: deque = deque()  # tickets awaiting dispatch
        self._attempts: Dict[int, int] = {}
        self._not_before: Dict[int, float] = {}
        self._inflight: Dict[object, dict] = {}  # future -> info
        self._executor = None
        self._respawns = 0
        self._closed = False
        self._started = perf_counter()

    # -- context management ------------------------------------------------

    def __enter__(self) -> "DriverSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- bookkeeping helpers -----------------------------------------------

    def _summary_of(self, ticket: int) -> Optional[StructuralSummary]:
        if ticket not in self._summaries:
            self._summaries[ticket] = job_struct_summary(self._jobs[ticket])
            if self._summaries[ticket] is None:
                self.stats.hash_fallbacks += 1
        return self._summaries[ticket]

    def _qkey(self, ticket: int) -> str:
        if ticket not in self._qkeys:
            self._qkeys[ticket] = quarantine_key(
                self._jobs[ticket], self._summary_of(ticket)
            )
        return self._qkeys[ticket]

    def _sync_cache_counters(self) -> None:
        if self._cache is not None:
            self.stats.cache_writes = self._cache.writes
            self.stats.cache_corrupt = self._cache.corrupt
            self.stats.cache_write_errors = self._cache.write_errors

    def _finish(self, ticket: int, result: FunctionResult) -> None:
        """Resolve one ticket: stats, ready queue, completion hook."""
        self._done[ticket] = True
        self.stats.guard_failures += len(result.guard_reports)
        for phase, seconds in result.phase_seconds.items():
            self.stats.phase_seconds[phase] = (
                self.stats.phase_seconds.get(phase, 0.0) + seconds
            )
        self._ready.append((ticket, result))
        if self.on_result is not None:
            self.on_result(ticket, result)

    def _fire_respawn(self) -> None:
        """Invoke the on_respawn hook; a raising hook never stops pump."""
        hook = self.on_respawn
        if hook is None:
            return
        try:
            hook(self._respawns)
        except Exception:  # pragma: no cover - defensive
            pass

    def _settle(self, ticket: int, result: FunctionResult) -> None:
        """A leader computed (or degraded): cache, finish, fan out."""
        if (
            self._cache is not None
            and not result.failed
            and self._keys.get(ticket) is not None
        ):
            self._cache.put(
                self._keys[ticket], result, summary=self._summaries.get(ticket)
            )
            self._sync_cache_counters()
        dkey = self._dkey_of.pop(ticket, None)
        if dkey is not None:
            self._leader_by_key.pop(dkey, None)
        self._finish(ticket, result)
        for follower in self._followers.pop(ticket, ()):  # type: ignore
            self._finish(
                follower,
                _follower_result(
                    result,
                    self._jobs[follower],
                    self._summaries.get(ticket),
                    self._summaries.get(follower),
                    self.stats,
                ),
            )

    # -- submission ---------------------------------------------------------

    def submit(self, job: FunctionJob) -> int:
        """Admit one job; returns its ticket immediately.

        Cache hits and quarantine refusals resolve before this
        returns; everything else resolves during a later
        :meth:`pump`/:meth:`collect`.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        ticket = self._next_ticket
        self._next_ticket += 1
        self._jobs[ticket] = job
        self._done[ticket] = False
        self._submitted_at[ticket] = perf_counter()
        self.stats.jobs += 1

        key: Optional[str] = None
        if self._cache is not None:
            summary = self._summary_of(ticket)
            key = job_key(
                job, self.config, self._measure_model,
                self._check_semantics, self._evaluator, summary=summary,
            )
            self._keys[ticket] = key
            hit = self._cache.get(key)
            if hit is not None:
                hit.name = job.name
                hit.metadata = dict(job.metadata)
                _retarget_result(
                    hit,
                    hit.producer_witness,  # type: ignore[arg-type]
                    summary,
                )
                self.stats.cache_hits += 1
                self._finish(ticket, hit)
                return ticket
            self.stats.cache_misses += 1
        else:
            self._keys[ticket] = None

        if len(self._quarantine) and self._quarantine.is_quarantined(
            self._qkey(ticket)
        ):
            self.stats.quarantined += 1
            self._finish(
                ticket,
                _error_result(
                    job, "quarantined",
                    self._quarantine.describe(self._qkey(ticket)),
                    attempts=0,
                ),
            )
            return ticket

        if self._dedupe:
            if key is not None:
                dkey: object = key
            else:
                # No cache key to coalesce on; fall back to the
                # alpha-invariant fingerprint (same respell machinery
                # as cache retargeting), then to exact text.
                summary = self._summary_of(ticket)
                dkey = (
                    ("struct", job.format, summary.fingerprint)
                    if summary is not None
                    else ("text", job.format, job.name, job.text)
                )
            leader = self._leader_by_key.get(dkey)
            if leader is not None and not self._done[leader]:
                self._followers.setdefault(leader, []).append(ticket)
                self.stats.dedupe_hits += 1
                return ticket
            self._leader_by_key[dkey] = ticket
            self._dkey_of[ticket] = dkey

        self._attempts[ticket] = 0
        self._not_before[ticket] = 0.0
        self._queue.append(ticket)
        if self.workers > 1:
            # Get the pool started; serial execution waits for the
            # next pump/collect so that structurally identical jobs
            # submitted back-to-back can still coalesce in flight.
            self.pump()
        return ticket

    # -- pool event loop ----------------------------------------------------

    def _spawn_executor(self, want: int):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=min(self.workers, max(1, want)),
            initializer=_init_worker,
            initargs=(
                self.config, self._measure_model, self._timed,
                self._check_semantics, self._evaluator, self._deadline,
                self._plan.fresh() if self._plan is not None else None,
            ),
        )

    def _kill_executor(self) -> None:
        """Tear the pool down hard; never raises."""
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        _terminate_pool_workers(executor)
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _pool_failure(self, ticket: int, kind: str, message: str) -> None:
        """One failed pool attempt: retry with backoff or degrade."""
        self._attempts[ticket] += 1
        self._quarantine.record_failure(
            self._qkey(ticket), self._jobs[ticket].label, kind, message
        )
        self._quarantine.save()
        if self._attempts[ticket] <= self._retries:
            self.stats.retried += 1
            backoff = self._retry_backoff * (2 ** (self._attempts[ticket] - 1))
            self._not_before[ticket] = perf_counter() + backoff
            self._queue.append(ticket)
            return
        if kind == "timeout":
            self.stats.timed_out += 1
        else:
            self.stats.crashed += 1
        self._settle(
            ticket,
            _error_result(
                self._jobs[ticket], kind, message, self._attempts[ticket]
            ),
        )

    def _degrade_remaining(self, message: str) -> None:
        """Settle every queued ticket without a pool (fallback path)."""
        remaining = list(self._queue)
        self._queue.clear()
        if self._serial_fallback and not self._closed:
            self.stats.serial_fallback = True
            for ticket in remaining:
                result = _attempt_serially(
                    self._jobs[ticket], lambda t=ticket: self._qkey(t),
                    self.config, self._measure_model, self._timed,
                    self._check_semantics, self._evaluator, self._deadline,
                    self._retries, self._retry_backoff, self._quarantine,
                    self.stats,
                )
                self._quarantine.save()
                self._settle(ticket, result)
        else:
            for ticket in remaining:
                self.stats.crashed += 1
                self._settle(
                    ticket,
                    _error_result(
                        self._jobs[ticket], "pool", message,
                        self._attempts.get(ticket, 0),
                    ),
                )

    def pump(self) -> int:
        """Advance the pool without blocking; returns tickets resolved.

        Dispatches eligible queued tickets as single-job futures,
        harvests completions, requeues uncharged in-flight work when
        the pool dies (respawning it up to the budget), and kills
        non-cooperative hangs past their deadline budget.  With
        ``workers == 1`` it instead runs every queued ticket to
        completion in-process, in submission order.
        """
        if self.workers == 1:
            resolved = 0
            while self._queue:
                ticket = self._queue.popleft()
                result = _attempt_serially(
                    self._jobs[ticket], lambda t=ticket: self._qkey(t),
                    self.config, self._measure_model, self._timed,
                    self._check_semantics, self._evaluator, self._deadline,
                    self._retries, self._retry_backoff, self._quarantine,
                    self.stats,
                )
                self._quarantine.save()
                self._settle(ticket, result)
                resolved += 1
            return resolved
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        resolved = 0
        now = perf_counter()

        if self._queue and self._executor is None:
            if self._respawns > self._max_pool_respawns:
                before = len(self._ready)
                self._degrade_remaining(
                    f"worker pool unhealthy after {self._respawns} "
                    "respawn(s); job abandoned (serial_fallback off)"
                )
                return len(self._ready) - before
            self._executor = self._spawn_executor(len(self._queue))

        if self._queue and self._executor is not None:
            waiting: deque = deque()
            while self._queue:
                ticket = self._queue.popleft()
                if self._not_before[ticket] <= now:
                    future = self._executor.submit(
                        _run_chunk, [self._jobs[ticket]]
                    )
                    self._inflight[future] = {
                        "ticket": ticket,
                        "first_running": None,
                        "submitted": perf_counter(),
                    }
                else:
                    waiting.append(ticket)
            self._queue = waiting

        if not self._inflight:
            return resolved

        done, _ = wait(
            set(self._inflight), timeout=0, return_when=FIRST_COMPLETED
        )
        now = perf_counter()
        broken = False
        for future in done:
            info = self._inflight.pop(future)
            ticket = info["ticket"]
            try:
                outcomes = future.result()
            except BrokenProcessPool:
                broken = True
                self._queue.append(ticket)
            except Exception:
                broken = True
                self._queue.append(ticket)
            else:
                outcome = outcomes[0]
                if isinstance(outcome, FunctionResult):
                    outcome.attempts = self._attempts[ticket] + 1
                    self.stats.record_latency(now - info["submitted"])
                    self._settle(ticket, outcome)
                    resolved += 1
                else:
                    self._pool_failure(ticket, outcome.kind, outcome.message)
                    if self._done[ticket]:
                        resolved += 1
        if broken:
            self._respawns += 1
            self.stats.pool_respawns += 1
            self._fire_respawn()
            for future, info in list(self._inflight.items()):
                self._queue.append(info["ticket"])
            self._inflight.clear()
            self._kill_executor()
            return resolved

        if self._deadline is not None and self._executor is not None:
            hung = []
            for future, info in self._inflight.items():
                if info["first_running"] is None and future.running():
                    info["first_running"] = now
                if info["first_running"] is None:
                    continue
                budget = self._deadline + 0.05
                if now - info["first_running"] > budget:
                    hung.append(future)
            if hung:
                self._respawns += 1
                self.stats.pool_respawns += 1
                self._fire_respawn()
                for future in hung:
                    info = self._inflight.pop(future)
                    self._pool_failure(
                        info["ticket"],
                        "timeout",
                        f"exceeded the {self._deadline:.3f}s wall-clock "
                        "deadline without yielding; worker killed",
                    )
                    if self._done[info["ticket"]]:
                        resolved += 1
                for future, info in list(self._inflight.items()):
                    self._queue.append(info["ticket"])
                self._inflight.clear()
                self._kill_executor()
        return resolved

    # -- harvesting ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Tickets submitted but not yet resolved."""
        return sum(1 for done in self._done.values() if not done)

    @property
    def unread(self) -> int:
        """Resolved results not yet collected."""
        return len(self._ready)

    def collect(
        self, timeout: Optional[float] = 0.0
    ) -> List[tuple]:
        """Harvest resolved tickets as ``[(ticket, result), ...]``.

        ``timeout=0`` polls once; a positive timeout waits up to that
        long for at least one result; ``None`` blocks until a result
        arrives or nothing is pending.  Results come back in
        resolution order (not submission order -- this is a stream).
        """
        poll = 0.005 if self._deadline is None else max(
            0.002, min(0.05, self._deadline / 4.0)
        )
        deadline_at = (
            None if timeout is None else perf_counter() + (timeout or 0.0)
        )
        while True:
            self.pump()
            if self._ready or self.pending == 0:
                break
            if deadline_at is not None and perf_counter() >= deadline_at:
                break
            sleep(poll)
        out = list(self._ready)
        self._ready.clear()
        return out

    def drain(self, timeout: Optional[float] = None) -> List[tuple]:
        """Collect until every submitted ticket has resolved."""
        deadline_at = (
            None if timeout is None else perf_counter() + timeout
        )
        out: List[tuple] = []
        while True:
            remaining = (
                None
                if deadline_at is None
                else max(0.0, deadline_at - perf_counter())
            )
            out.extend(self.collect(timeout=remaining))
            if self.pending == 0:
                return out
            if deadline_at is not None and perf_counter() >= deadline_at:
                return out

    # -- teardown -----------------------------------------------------------

    def close(
        self, drain: bool = True, drain_timeout: Optional[float] = None
    ) -> List[tuple]:
        """Tear the session down; every outstanding ticket resolves.

        With ``drain`` (the default) outstanding work is finished
        first (bounded by ``drain_timeout``); anything still pending
        after that -- or everything, with ``drain=False`` -- degrades
        to structured ``pool``-class error results.  The worker pool
        is always torn down, even if draining raises: no orphaned
        workers survive a closed session.  Idempotent.  Returns any
        results resolved during the close (uncollected ones remain
        available via :meth:`collect` on the closed session's ready
        queue -- but new submits are refused).
        """
        if self._closed:
            return []
        out: List[tuple] = []
        try:
            if drain and self.pending:
                out.extend(self.drain(timeout=drain_timeout))
        finally:
            self._closed = True
            try:
                # Whatever is still queued or in flight degrades; the
                # _closed flag above keeps the fallback path from
                # re-executing work during teardown.
                for info in self._inflight.values():
                    self._queue.append(info["ticket"])
                self._inflight.clear()
                self._degrade_remaining(
                    "session closed with the job still outstanding"
                )
                # Followers whose leader never resolved degrade too.
                for ticket, done in list(self._done.items()):
                    if not done:
                        self.stats.crashed += 1
                        self._finish(
                            ticket,
                            _error_result(
                                self._jobs[ticket], "pool",
                                "session closed with the job still "
                                "outstanding",
                                self._attempts.get(ticket, 0),
                            ),
                        )
            finally:
                self._kill_executor()
                try:
                    self._quarantine.save()
                except Exception:
                    pass
                self._sync_cache_counters()
                self.stats.wall_seconds = perf_counter() - self._started
                install_plan(self._prev_plan)
        return out
