"""The parallel, memoizing optimization driver.

:func:`optimize_functions` fans per-function RoLAG work out over a
``multiprocessing`` pool.  Each worker receives a picklable
:class:`FunctionJob` (IR or mini-C text), rebuilds the module in its
own interpreter, runs the standard measurement pipeline -- size before,
LLVM-style reroll baseline, RoLAG, verify, size after -- and sends back
a plain :class:`FunctionResult`.

Scheduling is chunked (one pickle round-trip per chunk, not per
function) and falls back to a deterministic in-process loop for
``workers=1``, so tests and small runs never pay pool startup.  With a
cache directory, results are memoized content-addressed (see
``cache.py``): a warm rerun of an unchanged corpus resolves entirely
from disk without touching the pool.
"""

from __future__ import annotations

import multiprocessing
import os
import zlib
from time import perf_counter
from typing import Iterable, List, Optional, Sequence

from ..analysis.costmodel import CodeSizeCostModel
from ..difftest.runner import check_module_semantics
from ..frontend import compile_c
from ..ir import parse_module, print_module, verify_module
from ..ir.module import Module
from ..rolag import RolagConfig, RolagStats, roll_loops_in_module
from ..transforms.reroll import reroll_loops
from .cache import ResultCache, job_key
from .types import DriverReport, DriverStats, FunctionJob, FunctionResult

#: Pool sizes beyond this stop paying off for per-function work.
MAX_DEFAULT_WORKERS = 8


def default_worker_count() -> int:
    """``min(os.cpu_count(), 8)``, and at least 1."""
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS))


def _load_module(job: FunctionJob) -> Module:
    """Materialize the job's module in this process."""
    if job.ir_text is not None:
        module = parse_module(job.ir_text)
        verify_module(module)
        return module
    return compile_c(job.c_source, module_name=f"driver.{job.name}")


def _measure(
    module: Module, name: Optional[str], model: Optional[CodeSizeCostModel]
) -> int:
    # Imported here, not at module scope: ``repro.bench`` imports this
    # package back (its harness drives the pool), and a top-level import
    # made a cold ``import repro.driver`` fail with a circular-import
    # error unless the caller happened to import ``repro.bench`` first.
    from ..bench.objsize import function_size, measure_module

    if name is None:
        return measure_module(module, model).total
    return function_size(module.get_function(name), model)


def optimize_one(
    job: FunctionJob,
    config: Optional[RolagConfig] = None,
    measure_model: Optional[CodeSizeCostModel] = None,
    timed: bool = False,
    check_semantics: bool = False,
    evaluator: str = "interp",
) -> FunctionResult:
    """The per-function pipeline one worker runs for one job.

    With ``check_semantics`` set, both transformed modules are
    differentially tested against a fresh copy of the input via the
    :mod:`repro.difftest` oracle (executed by ``evaluator``); the
    verdict and any mismatch details travel back (and into the cache)
    on the result.  Oracle time lands in the stats' ``eval`` phase so
    timed runs show evaluation next to the rolling phases.
    """
    config = config or RolagConfig()
    start = perf_counter()

    # Baseline: LLVM-style rerolling on its own fresh copy.
    llvm_module = _load_module(job)
    llvm_rolled = sum(
        reroll_loops(f) for f in llvm_module.functions if not f.is_declaration
    )
    verify_module(llvm_module)
    llvm_size = _measure(llvm_module, job.name, measure_model)

    # RoLAG on another fresh copy, measured before and after.
    module = _load_module(job)
    size_before = _measure(module, job.name, measure_model)
    stats = RolagStats(timed=timed)
    rolag_rolled = roll_loops_in_module(module, config=config, stats=stats)
    verify_module(module)
    rolag_size = _measure(module, job.name, measure_model)

    semantics_ok: Optional[bool] = None
    semantics_mismatches: List[str] = []
    if check_semantics:
        eval_start = perf_counter()
        original = _load_module(job)
        # Vector seed derives from the input text, so reruns replay the
        # same vectors and the cache entry stays meaningful.
        vector_seed = zlib.crc32(job.text.encode("utf-8")) & 0x7FFFFFFF
        for label, candidate in (("reroll", llvm_module), ("rolag", module)):
            ok, details = check_module_semantics(
                original, candidate, seed=vector_seed, evaluator=evaluator
            )
            if not ok:
                semantics_mismatches.extend(
                    f"{label}: {detail}" for detail in details
                )
        semantics_ok = not semantics_mismatches
        if timed:
            stats.add_phase_time("eval", perf_counter() - eval_start)

    return FunctionResult(
        name=job.name,
        metadata=dict(job.metadata),
        size_before=size_before,
        llvm_size=llvm_size,
        rolag_size=rolag_size,
        llvm_rolled=llvm_rolled,
        rolag_rolled=rolag_rolled,
        attempted=stats.attempted,
        schedule_rejected=stats.schedule_rejected,
        unprofitable=stats.unprofitable,
        node_counts=dict(stats.node_counts),
        savings=list(stats.savings),
        optimized_ir=print_module(module),
        semantics_checked=check_semantics,
        semantics_ok=semantics_ok,
        semantics_mismatches=semantics_mismatches,
        phase_seconds=dict(stats.phase_seconds),
        wall_seconds=perf_counter() - start,
    )


# --- pool plumbing ----------------------------------------------------------
#
# The config/model/timed triple is shipped once per worker through the
# pool initializer instead of once per job through every pickle.

_WORKER_STATE: dict = {}


def _init_worker(
    config: RolagConfig,
    measure_model: Optional[CodeSizeCostModel],
    timed: bool,
    check_semantics: bool,
    evaluator: str,
) -> None:
    _WORKER_STATE["config"] = config
    _WORKER_STATE["measure_model"] = measure_model
    _WORKER_STATE["timed"] = timed
    _WORKER_STATE["check_semantics"] = check_semantics
    _WORKER_STATE["evaluator"] = evaluator


def _run_job(job: FunctionJob) -> FunctionResult:
    return optimize_one(
        job,
        config=_WORKER_STATE["config"],
        measure_model=_WORKER_STATE["measure_model"],
        timed=_WORKER_STATE["timed"],
        check_semantics=_WORKER_STATE["check_semantics"],
        evaluator=_WORKER_STATE["evaluator"],
    )


def _default_chunk_size(pending: int, workers: int) -> int:
    # ~4 chunks per worker balances pickle overhead against stragglers.
    return max(1, -(-pending // (workers * 4)))


def optimize_functions(
    jobs: Sequence[FunctionJob],
    config: Optional[RolagConfig] = None,
    *,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    measure_model: Optional[CodeSizeCostModel] = None,
    chunk_size: Optional[int] = None,
    timed: bool = False,
    check_semantics: bool = False,
    evaluator: str = "interp",
) -> DriverReport:
    """Optimize every job, in parallel and memoized.

    ``workers`` defaults to :func:`default_worker_count`; ``workers=1``
    runs serially in-process (bit-identical to the pool path, since
    workers rebuild modules from text either way).  With ``cache_dir``
    set (and ``use_cache`` true), results are looked up before dispatch
    and newly computed ones written back.  Results come back in job
    order regardless of completion order.  ``check_semantics`` turns on
    the per-job differential oracle (see :func:`optimize_one`); it is
    part of the cache key, so checked and unchecked results never mix.
    ``evaluator`` picks the oracle's execution backend and is likewise
    fingerprinted into the key.
    """
    config = config or RolagConfig()
    workers = default_worker_count() if workers is None else max(1, workers)
    start = perf_counter()

    cache = (
        ResultCache(cache_dir) if (cache_dir and use_cache) else None
    )
    stats = DriverStats(jobs=len(jobs), workers=workers)

    results: List[Optional[FunctionResult]] = [None] * len(jobs)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(jobs)
    for i, job in enumerate(jobs):
        if cache is not None:
            keys[i] = job_key(
                job, config, measure_model, check_semantics, evaluator
            )
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                stats.cache_hits += 1
                continue
            stats.cache_misses += 1
        pending.append(i)

    if pending:
        todo = [jobs[i] for i in pending]
        if workers == 1 or len(todo) == 1:
            computed: Iterable[FunctionResult] = (
                optimize_one(
                    job, config, measure_model, timed, check_semantics, evaluator
                )
                for job in todo
            )
        else:
            ctx = multiprocessing.get_context()
            chunk = chunk_size or _default_chunk_size(len(todo), workers)
            pool = ctx.Pool(
                processes=min(workers, len(todo)),
                initializer=_init_worker,
                initargs=(
                    config, measure_model, timed, check_semantics, evaluator
                ),
            )
            try:
                computed = pool.map(_run_job, todo, chunksize=chunk)
            finally:
                pool.close()
                pool.join()
        for i, result in zip(pending, computed):
            results[i] = result
            if cache is not None:
                cache.put(keys[i], result)
                stats.cache_writes += 1

    final: List[FunctionResult] = [r for r in results if r is not None]
    assert len(final) == len(jobs)
    for result in final:
        for phase, seconds in result.phase_seconds.items():
            stats.phase_seconds[phase] = (
                stats.phase_seconds.get(phase, 0.0) + seconds
            )
    stats.wall_seconds = perf_counter() - start
    return DriverReport(results=final, stats=stats)
