"""Constant folding and trivial algebraic simplification.

Folds instructions whose operands are all constants and applies a small
set of identities (x+0, x*1, x*0, x-x, ...).  Kept deliberately modest:
it models the cleanups clang runs before ``-Os`` codegen and gives the
TSVC experiment realistic pre-rolled IR.
"""

from __future__ import annotations

from typing import Optional

from ..ir.instructions import BinaryOp, Cast, ICmp, Instruction, Phi, Select
from ..ir.interp import TrapError, eval_int_binop
from ..ir.module import Function
from ..ir.types import IntType
from ..ir.values import ConstantFloat, ConstantInt, Value


def fold_int_binop(opcode: str, ty: IntType, a: int, b: int) -> Optional[int]:
    """Fold one integer binop, or None when it must not fold.

    Delegates to the interpreter's :func:`~repro.ir.interp.eval_int_binop`
    so the folded constant is already wrapped to ``ty``'s bit width and
    agrees with execution on every edge case (INT_MIN // -1 wraps,
    shift amounts reduce modulo the width).  Trapping operands
    (division/remainder by zero) never fold: the trap is observable and
    must stay in the instruction stream.
    """
    try:
        return eval_int_binop(opcode, ty.bits, a, b)
    except TrapError:
        return None


#: Backwards-compatible alias of the pre-oracle internal name.
_fold_int_binop = fold_int_binop


def _simplify(inst: Instruction) -> Optional[Value]:
    """A simpler value equivalent to ``inst``, or None."""
    if isinstance(inst, BinaryOp):
        lhs, rhs = inst.operands
        ty = inst.type
        if (
            isinstance(ty, IntType)
            and isinstance(lhs, ConstantInt)
            and isinstance(rhs, ConstantInt)
        ):
            folded = fold_int_binop(inst.opcode, ty, lhs.value, rhs.value)
            if folded is not None:
                return ConstantInt(ty, folded)
        if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
            table = {
                "fadd": lhs.value + rhs.value,
                "fsub": lhs.value - rhs.value,
                "fmul": lhs.value * rhs.value,
            }
            if inst.opcode in table:
                return ConstantFloat(ty, table[inst.opcode])
        if isinstance(ty, IntType):
            # Cheap inline tests (no throwaway ConstantInt per call):
            # a constant operand equals zero/one iff it is a
            # ConstantInt of this type with that stored value.
            lhs_const = isinstance(lhs, ConstantInt) and lhs.type is ty
            rhs_const = isinstance(rhs, ConstantInt) and rhs.type is ty
            lhs_zero = lhs_const and lhs.value == 0
            rhs_zero = rhs_const and rhs.value == 0
            opcode = inst.opcode
            if opcode == "add":
                if rhs_zero:
                    return lhs
                if lhs_zero:
                    return rhs
            if opcode == "sub" and rhs_zero:
                return lhs
            if opcode == "mul":
                if rhs_const and rhs.value == 1:
                    return lhs
                if lhs_const and lhs.value == 1:
                    return rhs
                if rhs_zero or lhs_zero:
                    return ConstantInt(ty, 0)
            if opcode in ("and", "or") and lhs is rhs:
                return lhs
            if opcode == "xor" and lhs is rhs:
                return ConstantInt(ty, 0)
            if opcode in ("shl", "lshr", "ashr") and rhs_zero:
                return lhs
            if opcode == "or" and rhs_zero:
                return lhs
            if opcode == "xor" and rhs_zero:
                return lhs
        return None
    if isinstance(inst, ICmp):
        lhs, rhs = inst.operands
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            a, b = lhs.value, rhs.value
            bits = lhs.type.bits
            mask = (1 << bits) - 1
            ua, ub = a & mask, b & mask
            table = {
                "eq": a == b, "ne": a != b,
                "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
                "ult": ua < ub, "ule": ua <= ub, "ugt": ua > ub, "uge": ua >= ub,
            }
            return ConstantInt(IntType(1), 1 if table[inst.predicate] else 0)
        return None
    if isinstance(inst, Select):
        cond = inst.operands[0]
        if isinstance(cond, ConstantInt):
            return inst.operands[1 if cond.value else 2]
        if inst.operands[1] is inst.operands[2]:
            return inst.operands[1]
        return None
    if isinstance(inst, Cast):
        value = inst.operands[0]
        if isinstance(value, ConstantInt) and isinstance(inst.type, IntType):
            if inst.opcode in ("trunc", "sext"):
                return ConstantInt(inst.type, value.value)
            if inst.opcode == "zext":
                return ConstantInt(inst.type, value.value & value.type.mask)
        return None
    if isinstance(inst, Phi):
        candidates = [v for v, _ in inst.incoming if v is not inst]
        if not candidates:
            return None
        first = candidates[0]
        for v in candidates[1:]:
            same = v is first or (
                isinstance(v, (ConstantInt, ConstantFloat))
                and isinstance(first, (ConstantInt, ConstantFloat))
                and v == first
            )
            if not same:
                return None
        return first
    return None


def fold_constants(fn: Function) -> int:
    """Constant-fold and simplify; returns the number of rewrites."""
    if fn.is_declaration:
        return 0
    rewrites = 0
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                replacement = _simplify(inst)
                if replacement is not None and replacement is not inst:
                    inst.replace_all_uses_with(replacement)
                    inst.erase_from_parent()
                    rewrites += 1
                    changed = True
    return rewrites
