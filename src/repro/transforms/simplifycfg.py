"""Control-flow graph cleanup.

Three classic simplifications:

* fold conditional branches on constant conditions,
* merge a block into its unique predecessor when that predecessor
  branches unconditionally to it,
* delete unreachable blocks (fixing up phis).
"""

from __future__ import annotations

from ..analysis.domtree import DominatorTree
from ..ir.instructions import Br
from ..ir.module import Function
from ..ir.values import ConstantInt


def simplify_cfg(fn: Function) -> int:
    """Run CFG cleanup to a fixed point; returns change count."""
    if fn.is_declaration:
        return 0
    total = 0
    changed = True
    while changed:
        changed = False

        # Fold constant conditional branches.
        for block in fn.blocks:
            term = block.terminator
            if isinstance(term, Br) and term.is_conditional:
                cond = term.condition
                if isinstance(cond, ConstantInt):
                    taken = term.successors()[0 if cond.value else 1]
                    dead = term.successors()[1 if cond.value else 0]
                    if dead is not taken:
                        for phi in dead.phis():
                            phi.remove_incoming(block)
                    term.erase_from_parent()
                    block.append(Br(taken))
                    changed = True
                    total += 1

        # Remove unreachable blocks.
        domtree = DominatorTree(fn)
        for block in list(fn.blocks):
            if block is fn.entry or domtree.is_reachable(block):
                continue
            for succ in block.successors():
                for phi in succ.phis():
                    phi.remove_incoming(block)
            for inst in list(block.instructions):
                inst.drop_all_references()
            block.instructions = []
            block.erase_from_parent()
            changed = True
            total += 1

        # Merge single-successor/single-predecessor pairs.
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, Br) or term.is_conditional:
                continue
            succ = term.successors()[0]
            if succ is block or succ is fn.entry:
                continue
            preds = succ.predecessors()
            if len(preds) != 1 or preds[0] is not block:
                continue
            if succ.phis():
                for phi in list(succ.phis()):
                    incoming = phi.incoming_for(block)
                    if incoming is None:
                        break
                    phi.replace_all_uses_with(incoming)
                    phi.erase_from_parent()
                if succ.phis():
                    continue
            term.erase_from_parent()
            for inst in list(succ.instructions):
                succ.instructions.remove(inst)
                block.append(inst)
            # Successor blocks' phis must now name `block` as the pred.
            succ.replace_all_uses_with(block)
            succ.erase_from_parent()
            changed = True
            total += 1
    return total
