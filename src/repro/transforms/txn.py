"""Transactional pass execution: every pass is a commit-or-rollback.

:class:`TransactionalPassManager` runs the same pipelines as the plain
:class:`~repro.transforms.pass_manager.PassManager`, but wraps each
pass in a transaction gated by a :class:`repro.validation.Validator`:

1. ``begin`` -- snapshot the function (and, at the semantic levels,
   capture reference observations the first time the function is seen);
2. run the pass, then fire the ``pipeline.pass.exit`` fault site over
   the *IR itself* (so ``corrupt-ir`` storms exercise the gate);
3. ``commit_or_rollback`` -- the validator's ladder decides: an edit
   that fails verification / changes observed behaviour / breaks
   backend parity is rolled back to the snapshot and recorded as a
   :class:`~repro.validation.GuardReport`, and the pipeline continues
   from best-known-good IR with the *next* pass.

A pass that raises no longer aborts the whole function: the exception
becomes a rolled-back transaction too, so one misbehaving pass degrades
that one decision instead of the function (or the batch).

This module deliberately has no import-time dependency on
``repro.validation`` (which transitively imports the difftest runner
and with it the RoLAG pipeline); the validator instance is handed in by
the caller, typically the driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..faultinject import DeadlineExceeded, checkpoint, fire, fire_ir
from ..ir.module import Function
from .pass_manager import PassManager

if TYPE_CHECKING:  # pragma: no cover - typing only, see module docstring
    from ..validation.gate import Validator


@dataclass
class TransactionalPassManager(PassManager):
    """A pass manager whose passes commit through a validation gate.

    With no validator (or one at level ``off``) it behaves exactly like
    the plain :class:`PassManager`, including its exception contract.
    """

    validator: Optional["Validator"] = None

    def run_function(self, fn: Function) -> int:
        validator = self.validator
        if validator is None or validator.level == "off":
            return super().run_function(fn)
        total = 0
        for name, fn_pass in self.passes:
            checkpoint(f"pass:{name}")
            snapshot = validator.begin(fn)
            try:
                fire("pipeline.pass")
                changed = fn_pass(fn)
                fire_ir("pipeline.pass.exit", fn)
            except DeadlineExceeded:
                raise
            except Exception as error:
                validator.rollback_exception(fn, snapshot, name, error)
                continue
            report = validator.commit_or_rollback(
                fn, snapshot, name, replay=fn_pass
            )
            if report is not None:
                continue  # rolled back; next pass starts from the snapshot
            self.changes[name] = self.changes.get(name, 0) + changed
            total += changed
        return total
