"""Promote memory to registers (SSA construction).

The mini-C frontend lowers every local variable to an ``alloca`` with
explicit loads and stores.  This pass promotes scalar allocas to SSA
values using the classic iterated-dominance-frontier phi placement of
Cytron et al., followed by a renaming walk over the dominator tree.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..analysis.domtree import DominatorTree
from ..ir.instructions import Alloca, Load, Phi, Store
from ..ir.module import BasicBlock, Function
from ..ir.values import UndefValue, Value


def _is_promotable(alloca: Alloca) -> bool:
    """Scalar alloca used only by direct loads and full-width stores."""
    if not alloca.allocated_type.is_first_class:
        return False
    if alloca.allocated_type.is_array or alloca.allocated_type.is_struct:
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, Load) and user.pointer is alloca:
            continue
        if isinstance(user, Store) and user.pointer is alloca and user.value is not alloca:
            continue
        return False
    return True


def promote_memory_to_registers(fn: Function) -> int:
    """Run mem2reg on ``fn``; returns the number of promoted allocas."""
    if fn.is_declaration:
        return 0
    allocas = [
        inst
        for inst in fn.entry.instructions
        if isinstance(inst, Alloca) and _is_promotable(inst)
    ]
    if not allocas:
        return 0

    domtree = DominatorTree(fn)
    frontiers = domtree.dominance_frontiers()
    children: Dict[int, List[BasicBlock]] = {}
    for block in domtree.order:
        idom = domtree.idom.get(block)
        if idom is not None:
            children.setdefault(id(idom), []).append(block)

    phi_homes: Dict[int, Alloca] = {}

    for alloca in allocas:
        def_blocks: List[BasicBlock] = []
        for use in alloca.uses:
            user = use.user
            if isinstance(user, Store) and user.parent is not None:
                if user.parent not in def_blocks:
                    def_blocks.append(user.parent)
        # Iterated dominance frontier.
        placed: Set[int] = set()
        work = list(def_blocks)
        while work:
            block = work.pop()
            for frontier_block in frontiers.get(block, ()):
                if id(frontier_block) in placed:
                    continue
                placed.add(id(frontier_block))
                phi = Phi(alloca.allocated_type, fn.next_name("m2r"))
                frontier_block.insert(0, phi)
                phi_homes[id(phi)] = alloca
                work.append(frontier_block)

    # Renaming walk.
    stacks: Dict[int, List[Value]] = {id(a): [] for a in allocas}
    alloca_ids = {id(a) for a in allocas}

    def current(alloca: Alloca) -> Value:
        stack = stacks[id(alloca)]
        if stack:
            return stack[-1]
        return UndefValue(alloca.allocated_type)

    def rename(block: BasicBlock) -> None:
        pushed: List[Alloca] = []
        for inst in list(block.instructions):
            if isinstance(inst, Phi) and id(inst) in phi_homes:
                home = phi_homes[id(inst)]
                stacks[id(home)].append(inst)
                pushed.append(home)
                continue
            if isinstance(inst, Load) and id(inst.pointer) in alloca_ids:
                inst.replace_all_uses_with(current(inst.pointer))
                inst.erase_from_parent()
                continue
            if isinstance(inst, Store) and id(inst.pointer) in alloca_ids:
                home = inst.pointer
                stacks[id(home)].append(inst.value)
                pushed.append(home)
                inst.erase_from_parent()
                continue
        for succ in block.successors():
            for phi in succ.phis():
                home = phi_homes.get(id(phi))
                if home is not None:
                    phi.add_incoming(current(home), block)
        for child in children.get(id(block), ()):
            rename(child)
        for home in reversed(pushed):
            stacks[id(home)].pop()

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        rename(fn.entry)
    finally:
        sys.setrecursionlimit(old_limit)

    for alloca in allocas:
        if not alloca.uses:
            alloca.erase_from_parent()

    # Prune phis in unreachable blocks or with missing incomings left over.
    for block in fn.blocks:
        if not domtree.is_reachable(block):
            continue
        for phi in list(block.phis()):
            if id(phi) in phi_homes and not phi.incoming:
                phi.replace_all_uses_with(UndefValue(phi.type))
                phi.erase_from_parent()

    return len(allocas)
