"""A small pass manager.

Runs a named pipeline of function passes over a module, optionally
verifying the IR after each pass (the default in tests).  Function
passes are callables ``(Function) -> int`` returning a change count,
matching every transform in this package.

A pass that raises is wrapped in :class:`PassError` carrying the pass
and function names, so a crash deep inside a transform surfaces as
``pass 'cse' failed on function 'foo': ...`` instead of a bare
traceback.  Cooperative deadline signals pass through unwrapped -- the
driver classifies those as timeouts, not crashes.  Each pass boundary
fires the ``pipeline.pass`` fault-injection site and checkpoints the
ambient deadline (see ``repro.faultinject``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..faultinject import DeadlineExceeded, checkpoint, fire, fire_ir
from ..ir.module import Function, Module
from ..ir.verifier import verify_function

FunctionPass = Callable[[Function], int]


class PassError(RuntimeError):
    """A transform pass failed, with pass + function context attached."""

    def __init__(
        self,
        pass_name: str,
        function_name: Optional[str],
        cause: BaseException,
    ) -> None:
        self.pass_name = pass_name
        self.function_name = function_name or "?"
        super().__init__(
            f"pass {pass_name!r} failed on function "
            f"{self.function_name!r}: {type(cause).__name__}: {cause}"
        )


@dataclass
class PassManager:
    """Sequences function passes, with per-pass change accounting."""

    verify: bool = True
    passes: List[Tuple[str, FunctionPass]] = field(default_factory=list)
    changes: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, fn_pass: FunctionPass) -> "PassManager":
        """Append a named pass to the pipeline."""
        self.passes.append((name, fn_pass))
        return self

    def run_function(self, fn: Function) -> int:
        """Run the pipeline over one function; returns total changes."""
        total = 0
        for name, fn_pass in self.passes:
            checkpoint(f"pass:{name}")
            try:
                fire("pipeline.pass")
                changed = fn_pass(fn)
                fire_ir("pipeline.pass.exit", fn)
                if self.verify and changed:
                    verify_function(fn)
            except (PassError, DeadlineExceeded):
                raise
            except Exception as error:
                raise PassError(name, fn.name, error) from error
            self.changes[name] = self.changes.get(name, 0) + changed
            total += changed
        return total

    def run(self, module: Module) -> int:
        """Run the pipeline over every defined function."""
        total = 0
        for fn in module.functions:
            if not fn.is_declaration:
                total += self.run_function(fn)
        return total


def default_cleanup_pipeline(verify: bool = True) -> PassManager:
    """The -Os style cleanup pipeline: mem2reg + scalar cleanups."""
    from .constfold import fold_constants
    from .cse import eliminate_common_subexpressions
    from .dce import eliminate_dead_code
    from .ifconvert import convert_ifs
    from .mem2reg import promote_memory_to_registers
    from .simplifycfg import simplify_cfg

    pm = PassManager(verify=verify)
    pm.add("mem2reg", promote_memory_to_registers)
    pm.add("constfold", fold_constants)
    pm.add("cse", eliminate_common_subexpressions)
    pm.add("dce", eliminate_dead_code)
    pm.add("simplifycfg", simplify_cfg)
    pm.add("ifconvert", convert_ifs)
    pm.add("simplifycfg2", simplify_cfg)
    pm.add("constfold2", fold_constants)
    pm.add("cse2", eliminate_common_subexpressions)
    pm.add("dce2", eliminate_dead_code)
    return pm
