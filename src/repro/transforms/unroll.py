"""Counted-loop unrolling.

Unrolls single-block counted loops by a constant factor, producing the
partially-unrolled shape of the paper's Figure 1a: the body is
replicated with explicit ``iv + k*step`` induction updates and the
latch increment is scaled.  This is the tool used to prepare the TSVC
kernels ("we have forced all its inner loops to unroll by a factor
of 8", Section V-C).
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.loopinfo import CountedLoop, find_loops, match_counted_loop
from ..ir.instructions import BinaryOp, Instruction, Phi
from ..ir.module import Function
from ..ir.values import ConstantInt, Value


def unroll_counted_loop(counted: CountedLoop, factor: int) -> bool:
    """Unroll one counted loop by ``factor``.  Returns success.

    Requires a static trip count divisible by the factor, so the
    unrolled loop needs no epilogue.
    """
    if factor < 2:
        return False
    trip = counted.trip_count()
    if trip is None or trip <= 0 or trip % factor != 0:
        return False

    block = counted.block
    iv = counted.iv
    iv_next = counted.iv_next
    cmp = counted.cmp
    term = block.terminator
    fn = block.parent
    assert fn is not None

    phis = block.phis()
    control_ids = {id(iv_next), id(cmp), id(term)}
    body: List[Instruction] = [
        inst
        for inst in block.instructions
        if not isinstance(inst, Phi) and id(inst) not in control_ids
    ]

    # The body must not consume the latch update or the exit compare.
    for inst in body:
        for op in inst.operands:
            if op is iv_next or op is cmp:
                return False

    # Values carried between iterations: phi -> its latch (next) value.
    carried: Dict[int, Value] = {}
    for phi in phis:
        latch_value = phi.incoming_for(block)
        if latch_value is None:
            return False
        carried[id(phi)] = latch_value

    # The latch value of every carried phi must be a non-phi body
    # instruction (otherwise we cannot chain copies).  In particular a
    # phi whose latch is *another phi* (wraparound shifts like
    # ``y = x; x = b[i]``) has no per-copy equivalent: copy k needs the
    # value x held k-1 iterations ago, which no single remap provides.
    for phi in phis:
        if phi is iv:
            continue
        latch_value = carried[id(phi)]
        if (
            isinstance(latch_value, Instruction)
            and not isinstance(latch_value, Phi)
            and latch_value.parent is block
        ):
            continue
        return False

    new_instructions: List[Instruction] = list(phis) + list(body)
    # prev_map maps original body values to "the value at the end of the
    # previous copy"; for copy 1 that is the originals themselves.
    prev_map: Dict[int, Value] = {id(inst): inst for inst in body}

    int_ty = iv.type

    for k in range(1, factor):
        clone_map: Dict[int, Value] = {}
        # Fresh induction value for this copy: iv + k*step.
        iv_k = BinaryOp("add", iv, ConstantInt(int_ty, k * counted.step))
        iv_k.name = fn.next_name(f"iv{k}")
        new_instructions.append(iv_k)
        clone_map[id(iv)] = iv_k

        def remap(value: Value) -> Value:
            if id(value) in clone_map:
                return clone_map[id(value)]
            if isinstance(value, Phi) and id(value) in carried and value is not iv:
                # Start-of-iteration value = previous copy's latch value.
                latch = carried[id(value)]
                return prev_map.get(id(latch), latch)
            return value

        for inst in body:
            clone = inst.clone()
            clone.name = fn.next_name(inst.name or "u")
            for index, op in enumerate(list(clone.operands)):
                clone.set_operand(index, remap(op))
            clone_map[id(inst)] = clone
            new_instructions.append(clone)

        prev_map = {id(inst): clone_map[id(inst)] for inst in body}

    # Rewire loop-carried phis to the final copy's values.
    for phi in phis:
        if phi is iv:
            continue
        latch_value = carried[id(phi)]
        final = prev_map.get(id(latch_value), latch_value)
        for index, (value, pred) in enumerate(phi.incoming):
            if pred is block:
                phi.set_incoming_value(index, final)

    # Scale the latch increment.
    lhs, rhs = iv_next.operands
    scaled = counted.step * factor
    if iv_next.opcode == "sub":
        scaled = -scaled
    if isinstance(rhs, ConstantInt):
        iv_next.set_operand(1, ConstantInt(int_ty, abs(scaled) if iv_next.opcode == "sub" else scaled))
    else:
        iv_next.set_operand(0, ConstantInt(int_ty, scaled))

    new_instructions += [iv_next, cmp, term]
    block.instructions = new_instructions
    for inst in new_instructions:
        inst.parent = block

    # External uses of body values now see the final copy (done after
    # parents are set so in-loop clones are not mistaken for external).
    for inst in body:
        final = prev_map[id(inst)]
        if final is inst:
            continue
        for use in list(inst.uses):
            user = use.user
            if isinstance(user, Instruction) and user.parent is not block:
                user.set_operand(use.index, final)
    return True


def unroll_loops(fn: Function, factor: int) -> int:
    """Unroll every eligible counted loop in ``fn`` by ``factor``."""
    if fn.is_declaration:
        return 0
    unrolled = 0
    for loop in find_loops(fn):
        counted = match_counted_loop(loop)
        if counted is None:
            continue
        if unroll_counted_loop(counted, factor):
            unrolled += 1
    return unrolled
