"""If-conversion: turn small branches into ``select`` instructions.

Clang performs this at -Os (via SimplifyCFG's speculation folds), and
the paper's Fig. 20b relies on it: a ``if (a[i] > max) max = a[i]``
body "is lowered to a select instruction", which is what makes min/max
reductions reachable for a single-block technique.

Two shapes are handled:

*triangle*::

        A: br c, T, M          A: ...T's code...
        T: <pure code> br M    ->  %phi = select c, vT, vA
        M: phi [vT,T],[vA,A]       br M

*diamond*::

        A: br c, T, F
        T: <pure> br M         ->  A: ...T+F code... select per phi
        F: <pure> br M
        M: phi [vT,T],[vF,F]

Only *speculatable* instructions may move: pure arithmetic, compares,
casts, selects and address computations.  Loads, stores, calls and
integer division (trap hazards / side effects) block the conversion,
and each side is limited to a small instruction budget as a size
guard.
"""

from __future__ import annotations


from ..ir.instructions import (
    BinaryOp,
    Br,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Select,
)
from ..ir.module import BasicBlock, Function
from ..ir.values import Value

#: Maximum instructions speculated per side (an -Os style limit).
SPECULATION_BUDGET = 6

_TRAPPING_BINOPS = frozenset({"sdiv", "udiv", "srem", "urem"})


def _speculatable(inst: Instruction) -> bool:
    if isinstance(inst, BinaryOp):
        return inst.opcode not in _TRAPPING_BINOPS
    return isinstance(inst, (ICmp, FCmp, Select, Cast, GetElementPtr))


def _side_ok(block: BasicBlock) -> bool:
    body = block.instructions[:-1]
    if len(body) > SPECULATION_BUDGET:
        return False
    term = block.terminator
    if not isinstance(term, Br) or term.is_conditional:
        return False
    return all(_speculatable(inst) for inst in body)


def _hoist(block: BasicBlock, before: Instruction) -> None:
    """Move every non-terminator of ``block`` before ``before``."""
    for inst in list(block.instructions[:-1]):
        inst.move_before(before)


def convert_ifs(fn: Function) -> int:
    """Run if-conversion to a fixed point; returns conversion count."""
    if fn.is_declaration:
        return 0
    total = 0
    changed = True
    while changed:
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, Br) or not term.is_conditional:
                continue
            cond = term.condition
            true_block, false_block = term.successors()
            if true_block is false_block or true_block is block:
                continue

            if _try_triangle(block, cond, true_block, false_block, True):
                changed = True
                total += 1
                continue
            if _try_triangle(block, cond, false_block, true_block, False):
                changed = True
                total += 1
                continue
            if _try_diamond(block, cond, true_block, false_block):
                changed = True
                total += 1
    return total


def _single_pred(block: BasicBlock) -> bool:
    return len(block.predecessors()) == 1


def _try_triangle(
    block: BasicBlock,
    cond: Value,
    side: BasicBlock,
    merge: BasicBlock,
    side_on_true: bool,
) -> bool:
    """``block -> side -> merge`` with a direct ``block -> merge`` edge."""
    if side is merge or not _single_pred(side):
        return False
    if not _side_ok(side):
        return False
    if side.successors() != [merge]:
        return False
    if block not in merge.predecessors():
        return False
    # The merge phis must distinguish exactly these two incoming edges.
    for phi in merge.phis():
        if phi.incoming_for(side) is None or phi.incoming_for(block) is None:
            return False

    term = block.terminator
    _hoist(side, term)
    for phi in merge.phis():
        side_value = phi.incoming_for(side)
        direct_value = phi.incoming_for(block)
        if side_on_true:
            select = Select(cond, side_value, direct_value)
        else:
            select = Select(cond, direct_value, side_value)
        select.name = block.parent.next_name("ifcvt")
        select.move_before(term)
        phi.remove_incoming(side)
        # Retarget the remaining (block) incoming to the select.
        for index, (value, pred) in enumerate(phi.incoming):
            if pred is block:
                phi.set_incoming_value(index, select)

    term.erase_from_parent()
    new_term = Br(merge)
    block.append(new_term)
    side.erase_from_parent()
    return True


def _try_diamond(
    block: BasicBlock,
    cond: Value,
    true_block: BasicBlock,
    false_block: BasicBlock,
) -> bool:
    if not (_single_pred(true_block) and _single_pred(false_block)):
        return False
    if not (_side_ok(true_block) and _side_ok(false_block)):
        return False
    t_succ = true_block.successors()
    f_succ = false_block.successors()
    if len(t_succ) != 1 or t_succ != f_succ:
        return False
    merge = t_succ[0]
    if merge in (block, true_block, false_block):
        return False
    for phi in merge.phis():
        if (
            phi.incoming_for(true_block) is None
            or phi.incoming_for(false_block) is None
        ):
            return False

    term = block.terminator
    _hoist(true_block, term)
    _hoist(false_block, term)
    for phi in merge.phis():
        tv = phi.incoming_for(true_block)
        fv = phi.incoming_for(false_block)
        select = Select(cond, tv, fv)
        select.name = block.parent.next_name("ifcvt")
        select.move_before(term)
        phi.remove_incoming(true_block)
        phi.remove_incoming(false_block)
        phi.add_incoming(select, block)

    term.erase_from_parent()
    block.append(Br(merge))
    true_block.erase_from_parent()
    false_block.erase_from_parent()
    return True
