"""Dominator-scoped common-subexpression elimination.

Value-numbers pure instructions along the dominator tree (a light GVN,
like LLVM's EarlyCSE): an expression computed in a block is available
in every block it dominates.  Loads join the table too, with
conservative invalidation -- a store or a non-readnone call clears
remembered loads, and so does entering a block with more than one
predecessor (memory state on the other edges is unknown).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.domtree import DominatorTree
from ..ir.instructions import (
    BinaryOp,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Select,
    Store,
)
from ..ir.module import BasicBlock, Function
from ..ir.values import ConstantFloat, ConstantInt, Value


def _operand_key(value: Value) -> object:
    # Types are interned (same type <=> same object), so the type
    # object itself is a sound and cheap key component.
    if isinstance(value, ConstantInt):
        return ("ci", value.type, value.value)
    if isinstance(value, ConstantFloat):
        return ("cf", value.type, value.value)
    return id(value)


def _value_key(inst: Instruction) -> Optional[Tuple]:
    ops = tuple(_operand_key(op) for op in inst.operands)
    if isinstance(inst, BinaryOp):
        if inst.is_commutative:
            ops = tuple(sorted(ops, key=repr))
        return ("bin", inst.opcode, inst.type, ops)
    if isinstance(inst, ICmp):
        return ("icmp", inst.predicate, ops)
    if isinstance(inst, FCmp):
        return ("fcmp", inst.predicate, ops)
    if isinstance(inst, Cast):
        return ("cast", inst.opcode, inst.type, ops)
    if isinstance(inst, GetElementPtr):
        return ("gep", inst.source_type, ops)
    if isinstance(inst, Select):
        return ("select", ops)
    if isinstance(inst, Load):
        return ("load", inst.type, ops)
    return None


class _ScopedTable:
    """A stack of dictionaries: one scope per dominator-tree level."""

    def __init__(self) -> None:
        self._scopes: List[Dict[Tuple, Instruction]] = [{}]
        #: Keys of remembered loads, per scope, for cheap invalidation.
        self._load_keys: List[List[Tuple]] = [[]]
        self._killed: set = set()

    def push(self) -> None:
        self._scopes.append({})
        self._load_keys.append([])

    def pop(self) -> None:
        for key in self._load_keys.pop():
            self._killed.discard(key)
        self._scopes.pop()

    def lookup(self, key: Tuple) -> Optional[Instruction]:
        if key[0] == "load" and key in self._killed:
            return None
        for scope in reversed(self._scopes):
            value = scope.get(key)
            if value is not None:
                return value
        return None

    def insert(self, key: Tuple, inst: Instruction) -> None:
        self._scopes[-1][key] = inst
        if key[0] == "load":
            self._killed.discard(key)
            self._load_keys[-1].append(key)

    def kill_loads(self) -> None:
        """Invalidate every remembered load, in all open scopes."""
        for scope in self._scopes:
            for key in scope:
                if key[0] == "load":
                    self._killed.add(key)


def eliminate_common_subexpressions(fn: Function) -> int:
    """Run dominator-scoped CSE; returns the number of eliminated values."""
    if fn.is_declaration:
        return 0

    domtree = DominatorTree(fn)
    children: Dict[int, List[BasicBlock]] = {}
    for block in domtree.order:
        idom = domtree.idom.get(block)
        if idom is not None:
            children.setdefault(id(idom), []).append(block)

    eliminated = 0
    table = _ScopedTable()

    def visit(block: BasicBlock) -> None:
        nonlocal eliminated
        table.push()
        if len(block.predecessors()) > 1:
            # Memory state on the join's other edges is unknown.
            table.kill_loads()
        for inst in list(block.instructions):
            if isinstance(inst, Store) or (
                isinstance(inst, Call) and not inst.is_readnone()
            ):
                table.kill_loads()
                continue
            key = _value_key(inst)
            if key is None:
                continue
            prior = table.lookup(key)
            if prior is not None and prior.type is inst.type:
                inst.replace_all_uses_with(prior)
                inst.erase_from_parent()
                eliminated += 1
            else:
                table.insert(key, inst)
        for child in children.get(id(block), ()):  # dominator-tree walk
            visit(child)
        table.pop()

    import sys

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 10000))
    try:
        if fn.blocks:
            visit(fn.entry)
    finally:
        sys.setrecursionlimit(limit)
    return eliminated
