"""IR-to-IR transformations: cleanups, unrolling, and the reroll baseline."""

from .constfold import fold_constants
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .ifconvert import convert_ifs
from .mem2reg import promote_memory_to_registers
from .pass_manager import PassError, PassManager, default_cleanup_pipeline
from .reroll import RerollStats, reroll_loops, try_reroll_loop
from .simplifycfg import simplify_cfg
from .txn import TransactionalPassManager
from .unroll import unroll_counted_loop, unroll_loops

__all__ = [
    "PassError",
    "PassManager",
    "TransactionalPassManager",
    "convert_ifs",
    "RerollStats",
    "default_cleanup_pipeline",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "fold_constants",
    "promote_memory_to_registers",
    "reroll_loops",
    "simplify_cfg",
    "try_reroll_loop",
    "unroll_counted_loop",
    "unroll_loops",
]
