"""LLVM-style loop rerolling (the baseline of the paper).

Reimplements the algorithm of paper Section II / LLVM's
``LoopRerollPass``: for each single-block counted loop it looks for a
basic induction variable, treats the unrolled increments
``iv+u, iv+2u, ...`` as the roots of the unrolled iterations, collects
each root's def-use DAG in block order, requires *exact* instruction
equivalence and *full* block coverage, and only then rewrites the loop
to a unit-step rolled form.  Unrolled reduction chains hanging off an
accumulator phi are recognised, mirroring LLVM's support for simple
reductions.

All the restrictions of the original are kept on purpose -- they are
exactly what RoLAG removes: single-block loops only, exact opcode and
type matching, full coverage (no partial rerolling), and no handling of
straight-line code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.loopinfo import CountedLoop, find_loops, match_counted_loop
from ..ir.instructions import (
    BinaryOp,
    Call,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Phi,
)
from ..ir.module import BasicBlock, Function
from ..ir.types import IntType
from ..ir.values import Constant, ConstantInt, Value


@dataclass
class RerollStats:
    """Counts how often the baseline fired (for the evaluation tables)."""

    attempted: int = 0
    rerolled: int = 0


def _same_shape(a: Instruction, b: Instruction) -> bool:
    """Exact structural equivalence required by the baseline."""
    if type(a) is not type(b):
        return False
    if a.opcode != b.opcode:
        return False
    if a.type is not b.type:
        return False
    if isinstance(a, ICmp) and a.predicate != b.predicate:
        return False
    if isinstance(a, FCmp) and a.predicate != b.predicate:
        return False
    if isinstance(a, GetElementPtr) and a.source_type is not b.source_type:
        return False
    if isinstance(a, Call) and a.callee is not b.callee:
        return False
    if len(a.operands) != len(b.operands):
        return False
    return True


def _match_reduction_chain(
    phi: Phi, block: BasicBlock, count: int
) -> Optional[List[BinaryOp]]:
    """Match ``phi -> c1 -> c2 -> ... -> cm`` accumulator chains.

    Returns the chain in execution order (c1 first) when it has exactly
    ``count`` links of one associative opcode; ``None`` otherwise.
    """
    latch_value = phi.incoming_for(block)
    if not isinstance(latch_value, BinaryOp) or latch_value.parent is not block:
        return None
    opcode = latch_value.opcode
    if not latch_value.is_associative:
        return None

    chain_rev: List[BinaryOp] = []
    cursor: Value = latch_value
    while cursor is not phi:
        if not isinstance(cursor, BinaryOp) or cursor.opcode != opcode:
            return None
        if cursor.parent is not block:
            return None
        chain_rev.append(cursor)
        lhs, rhs = cursor.operands
        next_cursor = None
        for candidate in (lhs, rhs):
            if candidate is phi or (
                isinstance(candidate, BinaryOp)
                and candidate.opcode == opcode
                and candidate.parent is block
            ):
                if next_cursor is not None:
                    return None  # ambiguous chain
                next_cursor = candidate
        if next_cursor is None:
            return None
        cursor = next_cursor
        if len(chain_rev) > count:
            return None

    chain = list(reversed(chain_rev))
    if len(chain) != count:
        return None
    # Interior links must feed only the next link.
    for link in chain[:-1]:
        if len(link.uses) != 1:
            return None
    return chain


def _chain_data_operand(link: BinaryOp, prev: Value) -> Value:
    lhs, rhs = link.operands
    return rhs if lhs is prev else lhs


def try_reroll_loop(counted: CountedLoop) -> bool:
    """Attempt to reroll one partially-unrolled counted loop."""
    block = counted.block
    iv = counted.iv
    iv_next = counted.iv_next
    cmp = counted.cmp
    term = block.terminator
    if not isinstance(iv.type, IntType):
        return False

    latch_ids = {id(iv_next), id(cmp), id(term)}

    # 1. Find the unrolled increments add(iv, c) with constant c.
    increments: Dict[int, BinaryOp] = {}
    for use in iv.uses:
        user = use.user
        if (
            isinstance(user, BinaryOp)
            and user.opcode == "add"
            and user.parent is block
            and id(user) not in latch_ids
        ):
            lhs, rhs = user.operands
            const = None
            if lhs is iv and isinstance(rhs, ConstantInt):
                const = rhs.value
            elif rhs is iv and isinstance(lhs, ConstantInt):
                const = lhs.value
            if const is not None and const > 0:
                if const in increments:
                    return False  # ambiguous duplicated increment
                increments[const] = user

    if not increments:
        return False
    unit = min(increments)
    count = len(increments) + 1
    expected = {unit * k for k in range(1, count)}
    if set(increments) != expected:
        return False
    if counted.step != unit * count:
        return False

    # 2. Reduction chains for every non-induction phi.
    chains: List[Tuple[Phi, List[BinaryOp]]] = []
    chain_ids: Set[int] = set()
    for phi in block.phis():
        if phi is iv:
            continue
        chain = _match_reduction_chain(phi, block, count)
        if chain is None:
            return False
        chains.append((phi, chain))
        chain_ids |= {id(link) for link in chain}

    # 3. Build the root list: iteration 0 is rooted at iv itself.
    roots: List[Value] = [iv] + [increments[unit * k] for k in range(1, count)]

    # 4. Collect the DAG of each root, in block order.
    exclude = set(latch_ids) | {id(r) for r in roots if isinstance(r, Instruction)}
    exclude |= chain_ids
    groups: List[List[Instruction]] = []
    for root in roots:
        seeds = []
        for use in root.uses:
            user = use.user
            if (
                isinstance(user, Instruction)
                and user.parent is block
                and id(user) not in exclude
            ):
                seeds.append(user)
        seen: Set[int] = {id(s) for s in seeds}
        work = list(seeds)
        while work:
            inst = work.pop()
            for use in inst.uses:
                user = use.user
                if not isinstance(user, Instruction):
                    continue
                if user.parent is not block:
                    continue
                if id(user) in exclude or id(user) in seen:
                    continue
                seen.add(id(user))
                work.append(user)
        groups.append([inst for inst in block.instructions if id(inst) in seen])

    # 5. Exact correspondence between groups.
    size = len(groups[0])
    if size == 0 or any(len(g) != size for g in groups):
        return False

    mappings: List[Dict[int, Value]] = [dict()]  # identity for group 0
    for g in range(1, count):
        mapping: Dict[int, Value] = {id(roots[g]): iv}
        for a, b in zip(groups[0], groups[g]):
            if not _same_shape(a, b):
                return False
            for op_a, op_b in zip(a.operands, b.operands):
                if op_a is op_b:
                    continue  # loop-invariant operand
                if op_b is roots[g] and op_a is iv:
                    continue
                if (
                    isinstance(op_b, Instruction)
                    and id(op_b) in mapping
                    and mapping[id(op_b)] is op_a
                ):
                    continue
                if isinstance(op_a, Constant) and op_a == op_b:
                    # LLVM constants are uniqued, so identity comparison
                    # suffices there; ours are not, so equal int/float
                    # constants must compare equivalent explicitly.
                    continue
                return False
            mapping[id(b)] = a
        mappings.append(mapping)

    # 6. Chain data operands must correspond across iterations.
    for phi, chain in chains:
        prev: Value = phi
        data0 = _chain_data_operand(chain[0], phi)
        for g in range(1, count):
            data_g = _chain_data_operand(chain[g], chain[g - 1])
            if data_g is data0:
                continue
            if isinstance(data_g, Constant) and data_g == data0:
                continue
            if (
                isinstance(data_g, Instruction)
                and id(data_g) in mappings[g]
                and mappings[g][id(data_g)] is data0
            ):
                continue
            return False

    # 7. Full coverage of the block.
    covered: Set[int] = set(latch_ids) | chain_ids
    covered |= {id(r) for r in roots if isinstance(r, Instruction)}
    for group in groups:
        covered |= {id(inst) for inst in group}
    for inst in block.instructions:
        if isinstance(inst, Phi):
            continue  # iv and accumulator phis are allowed
        if id(inst) not in covered:
            return False

    # 8. Values of iterations 1..n-1 must not escape the block.
    for g in range(1, count):
        for inst in groups[g]:
            for use in inst.uses:
                user = use.user
                if not isinstance(user, Instruction) or user.parent is not block:
                    return False
        root = roots[g]
        if isinstance(root, Instruction):
            for use in root.uses:
                user = use.user
                if not isinstance(user, Instruction) or user.parent is not block:
                    return False

    # 9. Rewrite.  Reduction chains first: retarget phi and external uses
    #    of the last link to the first link, then drop links 2..m.
    for phi, chain in chains:
        first, last = chain[0], chain[-1]
        for use in list(last.uses):
            user = use.user
            if user is phi:
                user.set_operand(use.index, first)
            elif isinstance(user, Instruction) and user.parent is not block:
                user.set_operand(use.index, first)
        for link in reversed(chain[1:]):
            if link.uses:
                return False  # should not happen; bail safely
            link.erase_from_parent()

    for g in range(count - 1, 0, -1):
        for inst in reversed(groups[g]):
            inst.erase_from_parent()
        root = roots[g]
        if isinstance(root, Instruction):
            root.erase_from_parent()

    lhs, rhs = iv_next.operands
    if isinstance(rhs, ConstantInt):
        iv_next.set_operand(1, ConstantInt(iv.type, unit))
    else:
        iv_next.set_operand(0, ConstantInt(iv.type, unit))
    return True


def reroll_loops(fn: Function, stats: Optional[RerollStats] = None) -> int:
    """Run the baseline reroller over every loop of ``fn``."""
    if fn.is_declaration:
        return 0
    rerolled = 0
    for loop in find_loops(fn):
        counted = match_counted_loop(loop)
        if counted is None:
            continue
        if stats is not None:
            stats.attempted += 1
        if try_reroll_loop(counted):
            rerolled += 1
            if stats is not None:
                stats.rerolled += 1
    return rerolled
