"""Dead code elimination.

Removes instructions with no uses and no side effects, dead allocas
(including their stores when nothing ever loads from them is *not*
assumed -- only fully unused allocas go), and unreachable blocks.

Traps are observable behaviour in this IR (see ``repro.ir.interp``),
so potentially trapping instructions -- division/remainder with a
possibly-zero divisor, loads through arbitrary pointers -- are kept
even when their value is unused.  Loads through a (still live) alloca
cannot trap and remain removable.
"""

from __future__ import annotations


from ..analysis.domtree import DominatorTree
from ..ir.instructions import Alloca, Call, Instruction, Load
from ..ir.module import Function
from ..ir.values import GlobalVariable


def _removable(inst: Instruction) -> bool:
    if inst.uses:
        return False
    if isinstance(inst, Call):
        return inst.is_readnone() or inst.is_readonly()
    if isinstance(inst, Alloca):
        return True
    if isinstance(inst, Load):
        # A dead load is only removable when it provably cannot trap:
        # reading directly through an alloca or a whole global is always
        # in bounds, anything else (gep arithmetic, inttoptr, arguments)
        # might fault and the fault is observable behaviour.
        return isinstance(inst.pointer, (Alloca, GlobalVariable))
    return not inst.has_side_effects() and not inst.may_trap()


def eliminate_dead_code(fn: Function) -> int:
    """Iteratively remove dead instructions; returns removal count."""
    if fn.is_declaration:
        return 0
    removed = 0

    # Remove unreachable blocks first.
    domtree = DominatorTree(fn)
    for block in list(fn.blocks):
        if not domtree.is_reachable(block):
            for succ in block.successors():
                for phi in succ.phis():
                    phi.remove_incoming(block)
            for inst in list(block.instructions):
                inst.erase_from_parent()
                removed += 1
            block.erase_from_parent()

    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for inst in reversed(list(block.instructions)):
                if inst.is_terminator:
                    continue
                if _removable(inst):
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
    return removed
