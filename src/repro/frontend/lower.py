"""AST-to-IR lowering for mini-C.

Locals become allocas (promoted to SSA by mem2reg afterwards).  ``for``
and ``while`` loops are *rotated* during lowering -- guard, then a
body+latch block that re-evaluates the condition -- so that simple
counted loops arrive at the canonical single-block shape the unroller,
the reroll baseline, and RoLAG's evaluation all expect.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..ir.builder import IRBuilder
from ..ir.instructions import Alloca
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import FunctionType, I32, IntType
from ..ir.values import (
    Constant,
    ConstantAggregate,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    Value,
    zero_constant_for,
)
from . import ast
from .ctypes import (
    CArray,
    CInt,
    CPtr,
    CStruct,
    CType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    VOIDT,
    usual_arithmetic_conversion,
)
from .parser import parse


class LowerError(Exception):
    """Raised when the program cannot be lowered."""


TypedValue = Tuple[Value, CType]


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Tuple[Value, CType]] = {}

    def lookup(self, name: str) -> Optional[Tuple[Value, CType]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def define(self, name: str, slot: Value, ctype: CType) -> None:
        self.names[name] = (slot, ctype)


class Lowerer:
    """Lowers one translation unit into a fresh module."""

    def __init__(self, unit: ast.TranslationUnit, module_name: str = "minic"):
        self.unit = unit
        self.module = Module(module_name)
        self.globals: Dict[str, Tuple[GlobalVariable, CType]] = {}
        self.functions: Dict[str, Tuple[Function, CType, List[CType]]] = {}
        # Per-function state:
        self.builder: Optional[IRBuilder] = None
        self.function: Optional[Function] = None
        self.return_type: CType = VOIDT
        self.scope: Optional[_Scope] = None
        self.entry_block: Optional[BasicBlock] = None
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []

    # ----- top level ------------------------------------------------------------

    def run(self) -> Module:
        # Two passes: signatures first so calls can be forward.
        """Lower the whole translation unit; returns the module."""
        for item in self.unit.items:
            if isinstance(item, ast.StructDef):
                struct = CStruct(item.name, list(item.fields))
                self.module.register_struct(struct.to_ir())
            elif isinstance(item, ast.GlobalDef):
                self._lower_global(item)
            elif isinstance(item, ast.FunctionDef):
                self._declare_function(item)
        for item in self.unit.items:
            if isinstance(item, ast.FunctionDef) and item.body is not None:
                self._lower_function(item)
        return self.module

    def _lower_global(self, item: ast.GlobalDef) -> None:
        ir_type = item.ctype.to_ir()
        init: Optional[Constant] = None
        if not item.is_extern:
            if item.init is None:
                init = zero_constant_for(ir_type)
            else:
                init = self._const_init(item.init, item.ctype)
        gv = self.module.add_global(item.name, ir_type, init, item.is_const)
        self.globals[item.name] = (gv, item.ctype)

    def _const_init(self, expr: ast.Expr, ctype: CType) -> Constant:
        if isinstance(expr, ast.InitList):
            if not isinstance(ctype, CArray):
                raise LowerError("initializer list for non-array global")
            elements = []
            for element in expr.elements:
                elements.append(self._const_init(element, ctype.element))
            while len(elements) < ctype.count:
                elements.append(zero_constant_for(ctype.element.to_ir()))
            return ConstantAggregate(ctype.to_ir(), elements)
        value = self._const_eval(expr)
        ir_type = ctype.to_ir()
        if isinstance(ir_type, IntType):
            return ConstantInt(ir_type, int(value))
        from ..ir.types import FloatType

        if isinstance(ir_type, FloatType):
            return ConstantFloat(ir_type, float(value))
        raise LowerError(f"cannot initialise global of type {ctype}")

    def _const_eval(self, expr: ast.Expr) -> Union[int, float]:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_eval(expr.operand)
        if isinstance(expr, ast.CastExpr):
            inner = self._const_eval(expr.operand)
            return int(inner) if expr.to.is_integer else float(inner)
        if isinstance(expr, ast.Binary):
            a = self._const_eval(expr.lhs)
            b = self._const_eval(expr.rhs)
            ops = {
                "+": lambda: a + b,
                "-": lambda: a - b,
                "*": lambda: a * b,
                "/": lambda: a // b if isinstance(a, int) else a / b,
                "%": lambda: a % b,
                "<<": lambda: a << b,
                ">>": lambda: a >> b,
            }
            if expr.op in ops:
                return ops[expr.op]()
        raise LowerError("global initializer is not a constant expression")

    def _declare_function(self, item: ast.FunctionDef) -> None:
        if item.name in self.functions:
            return
        param_ctypes = [p.ctype for p in item.params]
        fnty = FunctionType(
            item.return_type.to_ir(), [t.to_ir() for t in param_ctypes]
        )
        fn = self.module.add_function(
            item.name, fnty, [p.name or f"arg{i}" for i, p in enumerate(item.params)]
        )
        for attr in item.attributes:
            fn.attributes.add(attr)
        self.functions[item.name] = (fn, item.return_type, param_ctypes)

    # ----- function bodies -------------------------------------------------------

    def _lower_function(self, item: ast.FunctionDef) -> None:
        fn, ret_ct, param_cts = self.functions[item.name]
        self.function = fn
        self.return_type = ret_ct
        self.scope = _Scope()
        self.break_targets = []
        self.continue_targets = []

        entry = fn.add_block("entry")
        self.entry_block = entry
        self.builder = IRBuilder(entry)

        for arg, param, ctype in zip(fn.arguments, item.params, param_cts):
            slot = self._entry_alloca(ctype.to_ir(), f"{param.name}.addr")
            self.builder.store(arg, slot)
            self.scope.define(param.name, slot, ctype)

        self._lower_block(item.body)

        if self.builder.block.terminator is None:
            if ret_ct.is_void:
                self.builder.ret()
            else:
                self.builder.ret(zero_constant_for(ret_ct.to_ir()))

        # Remove empty dead blocks created after returns.
        for block in list(fn.blocks):
            if block.terminator is None:
                if not block.uses and not block.instructions:
                    block.erase_from_parent()
                else:
                    builder = IRBuilder(block)
                    builder.unreachable()

    def _entry_alloca(self, ir_type, name: str) -> Alloca:
        alloca = Alloca(ir_type, self.function.next_name(name))
        index = 0
        for i, inst in enumerate(self.entry_block.instructions):
            if isinstance(inst, Alloca):
                index = i + 1
            else:
                break
        self.entry_block.insert(index, alloca)
        return alloca

    def _new_block(self, name: str) -> BasicBlock:
        return self.function.add_block(self.function.next_name(name))

    # ----- statements -----------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        self.scope = _Scope(self.scope)
        for stmt in block.statements:
            self._lower_stmt(stmt)
        self.scope = self.scope.parent

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if self.builder.block.terminator is not None:
            # Unreachable code after return/break: park it in a dead block.
            dead = self._new_block("dead")
            self.builder.position_at_end(dead)

        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._rvalue(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_targets:
                raise LowerError("break outside loop")
            self.builder.br(self.break_targets[-1])
        elif isinstance(stmt, ast.Continue):
            if not self.continue_targets:
                raise LowerError("continue outside loop")
            self.builder.br(self.continue_targets[-1])
        else:
            raise LowerError(f"cannot lower statement {stmt!r}")

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        slot = self._entry_alloca(stmt.ctype.to_ir(), stmt.name)
        self.scope.define(stmt.name, slot, stmt.ctype)
        if stmt.init is not None:
            if isinstance(stmt.init, ast.InitList):
                if not isinstance(stmt.ctype, CArray):
                    raise LowerError("initializer list for non-array")
                for i, element in enumerate(stmt.init.elements):
                    value, vt = self._rvalue(element)
                    value = self._convert(value, vt, stmt.ctype.element)
                    gep = self.builder.gep(
                        stmt.ctype.to_ir(),
                        slot,
                        [ConstantInt(IntType(64), 0), ConstantInt(IntType(64), i)],
                    )
                    self.builder.store(value, gep)
            else:
                value, vt = self._rvalue(stmt.init)
                value = self._convert(value, vt, stmt.ctype)
                self.builder.store(value, slot)

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._condition(stmt.cond)
        then_block = self._new_block("if.then")
        merge_block = self._new_block("if.end")
        else_block = merge_block
        if stmt.otherwise is not None:
            else_block = self._new_block("if.else")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._lower_stmt(stmt.then)
        if self.builder.block.terminator is None:
            self.builder.br(merge_block)

        if stmt.otherwise is not None:
            self.builder.position_at_end(else_block)
            self._lower_stmt(stmt.otherwise)
            if self.builder.block.terminator is None:
                self.builder.br(merge_block)

        self.builder.position_at_end(merge_block)

    def _lower_while(self, stmt: ast.While) -> None:
        # Rotated: guard once, then a body block with the exit test at
        # the bottom.
        exit_block = self._new_block("while.end")
        body_block = self._new_block("while.body")
        guard = self._condition(stmt.cond)
        self.builder.cond_br(guard, body_block, exit_block)

        latch_block = self._new_block("while.latch")
        self.break_targets.append(exit_block)
        self.continue_targets.append(latch_block)
        self.builder.position_at_end(body_block)
        self._lower_stmt(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.br(latch_block)
        self.break_targets.pop()
        self.continue_targets.pop()

        self.builder.position_at_end(latch_block)
        again = self._condition(stmt.cond)
        self.builder.cond_br(again, body_block, exit_block)
        self.builder.position_at_end(exit_block)

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        body_block = self._new_block("do.body")
        exit_block = self._new_block("do.end")
        latch_block = self._new_block("do.latch")
        self.builder.br(body_block)
        self.break_targets.append(exit_block)
        self.continue_targets.append(latch_block)
        self.builder.position_at_end(body_block)
        self._lower_stmt(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.br(latch_block)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.position_at_end(latch_block)
        cond = self._condition(stmt.cond)
        self.builder.cond_br(cond, body_block, exit_block)
        self.builder.position_at_end(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        self.scope = _Scope(self.scope)
        if stmt.init is not None:
            if isinstance(stmt.init, ast.ExprStmt):
                self._rvalue(stmt.init.expr)
            else:
                self._lower_stmt(stmt.init)

        exit_block = self._new_block("for.end")
        body_block = self._new_block("for.body")
        if stmt.cond is not None:
            guard = self._condition(stmt.cond)
            self.builder.cond_br(guard, body_block, exit_block)
        else:
            self.builder.br(body_block)

        latch_block = self._new_block("for.latch")
        self.break_targets.append(exit_block)
        self.continue_targets.append(latch_block)
        self.builder.position_at_end(body_block)
        self._lower_stmt(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.br(latch_block)
        self.break_targets.pop()
        self.continue_targets.pop()

        self.builder.position_at_end(latch_block)
        if stmt.step is not None:
            self._rvalue(stmt.step)
        if stmt.cond is not None:
            again = self._condition(stmt.cond)
            self.builder.cond_br(again, body_block, exit_block)
        else:
            self.builder.br(body_block)
        self.builder.position_at_end(exit_block)
        self.scope = self.scope.parent

    def _lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            if not self.return_type.is_void:
                raise LowerError("return without value in non-void function")
            self.builder.ret()
            return
        value, vt = self._rvalue(stmt.value)
        value = self._convert(value, vt, self.return_type)
        self.builder.ret(value)

    # ----- conditions (produce i1) ----------------------------------------------

    _CMP_SIGNED = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
    _CMP_UNSIGNED = {"<": "ult", "<=": "ule", ">": "ugt", ">=": "uge"}
    _CMP_FLOAT = {"<": "olt", "<=": "ole", ">": "ogt", ">=": "oge",
                  "==": "oeq", "!=": "one"}

    def _condition(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.Binary) and expr.op in (
            "<", "<=", ">", ">=", "==", "!="
        ):
            return self._comparison(expr)
        if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        if isinstance(expr, ast.Unary) and expr.op == "!":
            inner = self._condition(expr.operand)
            return self.builder.xor(inner, ConstantInt(IntType(1), 1))
        value, ctype = self._rvalue(expr)
        if ctype.is_float:
            return self.builder.fcmp(
                "one", value, ConstantFloat(ctype.to_ir(), 0.0)
            )
        zero = (
            ConstantInt(value.type, 0)
            if value.type.is_integer
            else zero_constant_for(value.type)
        )
        if value.type.is_integer and value.type.bits == 1:
            return value
        return self.builder.icmp("ne", value, zero)

    def _comparison(self, expr: ast.Binary) -> Value:
        lhs, lt = self._rvalue(expr.lhs)
        rhs, rt = self._rvalue(expr.rhs)
        if lt.is_pointer or rt.is_pointer:
            pred = {"==": "eq", "!=": "ne"}.get(
                expr.op, self._CMP_UNSIGNED.get(expr.op)
            )
            if lhs.type is not rhs.type:
                rhs = self.builder.bitcast(rhs, lhs.type)
            return self.builder.icmp(pred, lhs, rhs)
        common = usual_arithmetic_conversion(lt, rt)
        lhs = self._convert(lhs, lt, common)
        rhs = self._convert(rhs, rt, common)
        if common.is_float:
            return self.builder.fcmp(self._CMP_FLOAT[expr.op], lhs, rhs)
        if expr.op in ("==", "!="):
            pred = "eq" if expr.op == "==" else "ne"
        elif common.signed:
            pred = self._CMP_SIGNED[expr.op]
        else:
            pred = self._CMP_UNSIGNED[expr.op]
        return self.builder.icmp(pred, lhs, rhs)

    def _short_circuit(self, expr: ast.Binary) -> Value:
        # a && b  ->  a ? b : false ;  a || b  ->  a ? true : b
        rhs_block = self._new_block("sc.rhs")
        merge_block = self._new_block("sc.end")
        lhs = self._condition(expr.lhs)
        lhs_block = self.builder.block
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, merge_block)
        else:
            self.builder.cond_br(lhs, merge_block, rhs_block)
        self.builder.position_at_end(rhs_block)
        rhs = self._condition(expr.rhs)
        rhs_end = self.builder.block
        self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)
        phi = self.builder.phi(IntType(1))
        phi.add_incoming(
            ConstantInt(IntType(1), 0 if expr.op == "&&" else 1), lhs_block
        )
        phi.add_incoming(rhs, rhs_end)
        return phi

    # ----- lvalues -----------------------------------------------------------------

    def _lvalue(self, expr: ast.Expr) -> TypedValue:
        """Address of the expression plus the pointee's C type."""
        if isinstance(expr, ast.NameRef):
            local = self.scope.lookup(expr.name)
            if local is not None:
                return local
            if expr.name in self.globals:
                gv, ctype = self.globals[expr.name]
                return gv, ctype
            raise LowerError(f"unknown identifier {expr.name!r}")
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer, ctype = self._rvalue(expr.operand)
            if not ctype.is_pointer:
                raise LowerError("dereference of non-pointer")
            return pointer, ctype.to
        if isinstance(expr, ast.Index):
            return self._index_lvalue(expr)
        if isinstance(expr, ast.Member):
            return self._member_lvalue(expr)
        raise LowerError(f"expression is not an lvalue: {expr!r}")

    def _index_lvalue(self, expr: ast.Index) -> TypedValue:
        index, it = self._rvalue(expr.index)
        index = self._convert(index, it, LONG)
        base_expr = expr.base
        # Array lvalue: index within the array type.
        if self._is_array_lvalue(base_expr):
            addr, ctype = self._lvalue(base_expr)
            assert isinstance(ctype, CArray)
            gep = self.builder.gep(
                ctype.to_ir(), addr, [ConstantInt(IntType(64), 0), index]
            )
            return gep, ctype.element
        pointer, ctype = self._rvalue(base_expr)
        if not ctype.is_pointer:
            raise LowerError("indexing a non-pointer")
        gep = self.builder.gep(ctype.to.to_ir(), pointer, [index])
        return gep, ctype.to

    def _member_lvalue(self, expr: ast.Member) -> TypedValue:
        if expr.arrow:
            base, ctype = self._rvalue(expr.base)
            if not (ctype.is_pointer and ctype.to.is_struct):
                raise LowerError("-> on non-struct-pointer")
            struct = ctype.to
        else:
            base, struct = self._lvalue(expr.base)
            if not struct.is_struct:
                raise LowerError(". on non-struct")
        index = struct.field_index(expr.name)
        gep = self.builder.gep(
            struct.to_ir(),
            base,
            [ConstantInt(IntType(64), 0), ConstantInt(IntType(64), index)],
        )
        return gep, struct.field_type(expr.name)

    def _is_array_lvalue(self, expr: ast.Expr) -> bool:
        try:
            if isinstance(expr, ast.NameRef):
                local = self.scope.lookup(expr.name)
                if local is not None:
                    return local[1].is_array
                if expr.name in self.globals:
                    return self.globals[expr.name][1].is_array
            if isinstance(expr, ast.Member):
                return self._member_field_is_array(expr)
            if isinstance(expr, ast.Index):
                # element of an array of arrays
                base_is_array = self._is_array_lvalue(expr.base)
                if base_is_array:
                    ctype = self._array_element_type(expr.base)
                    return ctype.is_array if ctype else False
                return False
        except LowerError:
            return False
        return False

    def _member_field_is_array(self, expr: ast.Member) -> bool:
        struct = self._struct_of(expr.base, expr.arrow)
        if struct is None:
            return False
        try:
            return struct.field_type(expr.name).is_array
        except KeyError:
            return False

    def _struct_of(self, expr: ast.Expr, arrow: bool) -> Optional[CStruct]:
        if arrow:
            ctype = self._static_type(expr)
            if ctype and ctype.is_pointer and ctype.to.is_struct:
                return ctype.to
            return None
        ctype = self._static_type(expr)
        if ctype and ctype.is_struct:
            return ctype
        return None

    def _static_type(self, expr: ast.Expr) -> Optional[CType]:
        """Best-effort type of an expression without emitting code."""
        if isinstance(expr, ast.NameRef):
            local = self.scope.lookup(expr.name)
            if local is not None:
                return local[1]
            if expr.name in self.globals:
                return self.globals[expr.name][1]
            return None
        if isinstance(expr, ast.Member):
            struct = self._struct_of(expr.base, expr.arrow)
            if struct is None:
                return None
            try:
                return struct.field_type(expr.name)
            except KeyError:
                return None
        if isinstance(expr, ast.Index):
            base = self._static_type(expr.base)
            if base is None:
                return None
            if base.is_array:
                return base.element
            if base.is_pointer:
                return base.to
            return None
        if isinstance(expr, ast.Unary) and expr.op == "*":
            base = self._static_type(expr.operand)
            if base is not None and base.is_pointer:
                return base.to
            return None
        return None

    def _array_element_type(self, expr: ast.Expr) -> Optional[CType]:
        ctype = self._static_type(expr)
        if ctype is not None and ctype.is_array:
            return ctype.element
        return None

    # ----- rvalues -----------------------------------------------------------------

    def _rvalue(self, expr: ast.Expr) -> TypedValue:
        if isinstance(expr, ast.IntLit):
            if expr.long:
                return ConstantInt(IntType(64), expr.value), CInt(64, not expr.unsigned)
            return ConstantInt(I32, expr.value), CInt(32, not expr.unsigned)
        if isinstance(expr, ast.FloatLit):
            if expr.is_float32:
                return ConstantFloat(FLOAT.to_ir(), expr.value), FLOAT
            return ConstantFloat(DOUBLE.to_ir(), expr.value), DOUBLE
        if isinstance(expr, (ast.NameRef, ast.Index, ast.Member)) or (
            isinstance(expr, ast.Unary) and expr.op == "*"
        ):
            addr, ctype = self._lvalue(expr)
            if ctype.is_array:
                # Arrays decay to a pointer to their first element.
                gep = self.builder.gep(
                    ctype.to_ir(),
                    addr,
                    [ConstantInt(IntType(64), 0), ConstantInt(IntType(64), 0)],
                )
                return gep, CPtr(ctype.element)
            if ctype.is_struct:
                raise LowerError("struct values are not supported; use pointers")
            return self.builder.load(ctype.to_ir(), addr), ctype
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        if isinstance(expr, ast.CastExpr):
            value, vt = self._rvalue(expr.operand)
            return self._convert(value, vt, expr.to), expr.to
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            return self._lower_incdec(expr)
        raise LowerError(f"cannot lower expression {expr!r}")

    def _lower_unary(self, expr: ast.Unary) -> TypedValue:
        if expr.op == "&":
            addr, ctype = self._lvalue(expr.operand)
            if ctype.is_array:
                return addr, CPtr(ctype)
            return addr, CPtr(ctype)
        if expr.op == "-":
            value, ctype = self._rvalue(expr.operand)
            if ctype.is_float:
                zero = ConstantFloat(ctype.to_ir(), 0.0)
                return self.builder.binop("fsub", zero, value), ctype
            common = usual_arithmetic_conversion(ctype, INT)
            value = self._convert(value, ctype, common)
            zero = ConstantInt(common.to_ir(), 0)
            return self.builder.sub(zero, value), common
        if expr.op == "~":
            value, ctype = self._rvalue(expr.operand)
            common = usual_arithmetic_conversion(ctype, INT)
            value = self._convert(value, ctype, common)
            minus1 = ConstantInt(common.to_ir(), -1)
            return self.builder.xor(value, minus1), common
        if expr.op == "!":
            cond = self._condition(expr.operand)
            flipped = self.builder.xor(cond, ConstantInt(IntType(1), 1))
            return self.builder.zext(flipped, I32), INT
        raise LowerError(f"unsupported unary {expr.op!r}")

    _BIN_INT = {
        "+": "add", "-": "sub", "*": "mul",
        "&": "and", "|": "or", "^": "xor", "<<": "shl",
    }
    _BIN_FLOAT = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def _lower_binary(self, expr: ast.Binary) -> TypedValue:
        op = expr.op
        if op == ",":
            self._rvalue(expr.lhs)
            return self._rvalue(expr.rhs)
        if op in ("&&", "||"):
            cond = self._short_circuit(expr)
            return self.builder.zext(cond, I32), INT
        if op in ("<", "<=", ">", ">=", "==", "!="):
            cond = self._comparison(expr)
            return self.builder.zext(cond, I32), INT

        lhs, lt = self._rvalue(expr.lhs)
        rhs, rt = self._rvalue(expr.rhs)

        # Pointer arithmetic.
        if lt.is_pointer and rt.is_integer and op in ("+", "-"):
            index = self._convert(rhs, rt, LONG)
            if op == "-":
                index = self.builder.sub(ConstantInt(IntType(64), 0), index)
            gep = self.builder.gep(lt.to.to_ir(), lhs, [index])
            return gep, lt
        if rt.is_pointer and lt.is_integer and op == "+":
            index = self._convert(lhs, lt, LONG)
            gep = self.builder.gep(rt.to.to_ir(), rhs, [index])
            return gep, rt

        common = usual_arithmetic_conversion(lt, rt)
        lhs = self._convert(lhs, lt, common)
        rhs = self._convert(rhs, rt, common)
        if common.is_float:
            opcode = self._BIN_FLOAT.get(op)
            if opcode is None:
                raise LowerError(f"invalid float op {op!r}")
            return self.builder.binop(opcode, lhs, rhs), common
        if op == "/":
            opcode = "sdiv" if common.signed else "udiv"
        elif op == "%":
            opcode = "srem" if common.signed else "urem"
        elif op == ">>":
            opcode = "ashr" if common.signed else "lshr"
        else:
            opcode = self._BIN_INT.get(op)
            if opcode is None:
                raise LowerError(f"invalid int op {op!r}")
        return self.builder.binop(opcode, lhs, rhs), common

    def _lower_assign(self, expr: ast.Assign) -> TypedValue:
        addr, ctype = self._lvalue(expr.target)
        if expr.op == "=":
            value, vt = self._rvalue(expr.value)
            value = self._convert(value, vt, ctype)
            self.builder.store(value, addr)
            return value, ctype
        # Compound assignment: load, compute, store.
        binop = expr.op[:-1]
        synthetic = ast.Binary(binop, expr.target, expr.value)
        value, vt = self._lower_binary(synthetic)
        value = self._convert(value, vt, ctype)
        # _lower_binary re-evaluated the lvalue; acceptable for the
        # side-effect-free targets mini-C supports.
        self.builder.store(value, addr)
        return value, ctype

    def _lower_conditional(self, expr: ast.Conditional) -> TypedValue:
        cond = self._condition(expr.cond)
        then_block = self._new_block("cond.then")
        else_block = self._new_block("cond.else")
        merge_block = self._new_block("cond.end")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        tv, tt = self._rvalue(expr.if_true)
        then_end = self.builder.block

        self.builder.position_at_end(else_block)
        fv, ft = self._rvalue(expr.if_false)
        else_end = self.builder.block

        if tt.is_arithmetic and ft.is_arithmetic:
            common = usual_arithmetic_conversion(tt, ft)
        else:
            common = tt
        self.builder.position_at_end(then_end)
        tv = self._convert(tv, tt, common)
        self.builder.br(merge_block)
        self.builder.position_at_end(else_end)
        fv = self._convert(fv, ft, common)
        self.builder.br(merge_block)

        self.builder.position_at_end(merge_block)
        phi = self.builder.phi(common.to_ir())
        phi.add_incoming(tv, then_end)
        phi.add_incoming(fv, else_end)
        return phi, common

    def _lower_call(self, expr: ast.CallExpr) -> TypedValue:
        info = self.functions.get(expr.callee)
        if info is None:
            # Implicit declaration: infer the signature from this call.
            arg_values = [self._rvalue(a) for a in expr.args]
            param_cts = [t for _, t in arg_values]
            fnty = FunctionType(I32, [t.to_ir() for t in param_cts])
            fn = self.module.add_function(expr.callee, fnty)
            self.functions[expr.callee] = (fn, INT, param_cts)
            call = self.builder.call(fn, [v for v, _ in arg_values])
            return call, INT
        fn, ret_ct, param_cts = info
        args: List[Value] = []
        for i, arg in enumerate(expr.args):
            value, vt = self._rvalue(arg)
            if i < len(param_cts):
                value = self._convert(value, vt, param_cts[i])
            args.append(value)
        call = self.builder.call(fn, args)
        return call, ret_ct

    def _lower_incdec(self, expr) -> TypedValue:
        addr, ctype = self._lvalue(expr.target)
        old = self.builder.load(ctype.to_ir(), addr)
        if ctype.is_pointer:
            delta = 1 if expr.op == "++" else -1
            new = self.builder.gep(
                ctype.to.to_ir(), old, [ConstantInt(IntType(64), delta)]
            )
        elif ctype.is_float:
            one = ConstantFloat(ctype.to_ir(), 1.0)
            opcode = "fadd" if expr.op == "++" else "fsub"
            new = self.builder.binop(opcode, old, one)
        else:
            one = ConstantInt(ctype.to_ir(), 1)
            opcode = "add" if expr.op == "++" else "sub"
            new = self.builder.binop(opcode, old, one)
        self.builder.store(new, addr)
        if isinstance(expr, ast.PostIncDec):
            return old, ctype
        return new, ctype

    # ----- conversions ---------------------------------------------------------------

    def _convert(self, value: Value, src: CType, dst: CType) -> Value:
        if src == dst or src.to_ir() is dst.to_ir() and not (
            src.is_integer and dst.is_integer and src.signed != dst.signed
        ):
            if src.is_integer and dst.is_integer and src.signed != dst.signed:
                return value  # same representation
            if src.to_ir() is dst.to_ir():
                return value
        if src.is_integer and dst.is_integer:
            if src.bits == dst.bits:
                return value
            if src.bits > dst.bits:
                return self.builder.trunc(value, dst.to_ir())
            if src.signed:
                return self.builder.sext(value, dst.to_ir())
            return self.builder.zext(value, dst.to_ir())
        if src.is_integer and dst.is_float:
            opcode = "sitofp" if src.signed else "uitofp"
            return self.builder.cast(opcode, value, dst.to_ir())
        if src.is_float and dst.is_integer:
            opcode = "fptosi" if dst.signed else "fptoui"
            return self.builder.cast(opcode, value, dst.to_ir())
        if src.is_float and dst.is_float:
            if src.bits == dst.bits:
                return value
            opcode = "fpext" if dst.bits > src.bits else "fptrunc"
            return self.builder.cast(opcode, value, dst.to_ir())
        if src.is_pointer and dst.is_pointer:
            if value.type is dst.to_ir():
                return value
            return self.builder.bitcast(value, dst.to_ir())
        if src.is_pointer and dst.is_integer:
            return self.builder.cast("ptrtoint", value, dst.to_ir())
        if src.is_integer and dst.is_pointer:
            return self.builder.cast("inttoptr", value, dst.to_ir())
        if src.is_array and dst.is_pointer:
            return value  # already decayed
        raise LowerError(f"cannot convert {src} to {dst}")


def lower(unit: ast.TranslationUnit, module_name: str = "minic") -> Module:
    """Lower a parsed translation unit to IR (no optimization)."""
    return Lowerer(unit, module_name).run()


def compile_c(
    source: str, module_name: str = "minic", optimize: bool = True
) -> Module:
    """Front door: mini-C source text to (optionally cleaned-up) IR."""
    module = lower(parse(source), module_name)
    from ..ir.verifier import verify_module

    verify_module(module)
    if optimize:
        from ..transforms.pass_manager import default_cleanup_pipeline

        default_cleanup_pipeline(verify=True).run(module)
        verify_module(module)
    return module
