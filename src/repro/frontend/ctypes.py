"""C-level type model for the mini-C frontend.

Tracks signedness (which the IR does not), so the lowering can pick
``sdiv``/``udiv``, ``ashr``/``lshr`` and signed/unsigned comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)


class CType:
    """Base class of frontend types."""

    def to_ir(self) -> Type:
        """The IR type this C type lowers to."""
        raise NotImplementedError

    @property
    def is_integer(self) -> bool:
        """Whether this is an integer type."""
        return isinstance(self, CInt)

    @property
    def is_float(self) -> bool:
        """Whether this is a floating type."""
        return isinstance(self, CFloat)

    @property
    def is_pointer(self) -> bool:
        """Whether this is a pointer type."""
        return isinstance(self, CPtr)

    @property
    def is_array(self) -> bool:
        """Whether this is an array type."""
        return isinstance(self, CArray)

    @property
    def is_struct(self) -> bool:
        """Whether this is a struct type."""
        return isinstance(self, CStruct)

    @property
    def is_void(self) -> bool:
        """Whether this is void."""
        return isinstance(self, CVoid)

    @property
    def is_arithmetic(self) -> bool:
        """Integer or floating type."""
        return self.is_integer or self.is_float

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CType) and self.to_ir() is other.to_ir() and (
            not (self.is_integer and other.is_integer)
            or self.signed == other.signed  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash(str(self))


@dataclass(frozen=True)
class CVoid(CType):
    """The C ``void`` type."""
    def to_ir(self) -> Type:
        """Lowers to IR ``void``."""
        return VOID

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class CInt(CType):
    """A fixed-width integer with signedness."""
    bits: int
    signed: bool = True

    def to_ir(self) -> Type:
        """Lowers to ``iN``."""
        return IntType(self.bits)

    def __str__(self) -> str:
        names = {8: "char", 16: "short", 32: "int", 64: "long"}
        base = names.get(self.bits, f"int{self.bits}")
        return base if self.signed else f"unsigned {base}"


@dataclass(frozen=True)
class CFloat(CType):
    """``float`` or ``double``."""
    bits: int

    def to_ir(self) -> Type:
        """Lowers to ``float``/``double``."""
        return FloatType(self.bits)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


@dataclass(frozen=True)
class CPtr(CType):
    """Pointer to another C type (``void*`` lowers to ``i8*``)."""
    to: CType

    def to_ir(self) -> Type:
        """Lowers to a typed IR pointer."""
        inner = self.to.to_ir()
        if inner.is_void:
            from ..ir.types import I8

            inner = I8  # void* is modelled as i8*
        return PointerType(inner)

    def __str__(self) -> str:
        return f"{self.to}*"


@dataclass(frozen=True)
class CArray(CType):
    """Fixed-length array."""
    element: CType
    count: int

    def to_ir(self) -> Type:
        """Lowers to ``[N x elem]``."""
        return ArrayType(self.element.to_ir(), self.count)

    def __str__(self) -> str:
        return f"{self.element}[{self.count}]"


class CStruct(CType):
    """A named struct with ordered (name, type) fields."""

    def __init__(self, name: str, fields: Optional[List[Tuple[str, CType]]] = None):
        self.name = name
        self.fields: List[Tuple[str, CType]] = fields or []
        self._ir: Optional[StructType] = None

    def set_fields(self, fields: List[Tuple[str, CType]]) -> None:
        """Install (or replace) the ordered field list."""
        self.fields = fields
        self._ir = None

    def field_index(self, name: str) -> int:
        """Position of the named field."""
        for i, (field_name, _) in enumerate(self.fields):
            if field_name == name:
                return i
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def field_type(self, name: str) -> CType:
        """Type of the named field."""
        return self.fields[self.field_index(name)][1]

    def to_ir(self) -> StructType:
        """The interned named IR struct for this C struct."""
        if self._ir is None:
            self._ir = StructType([t.to_ir() for _, t in self.fields], self.name)
        return self._ir

    def __str__(self) -> str:
        return f"struct {self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CStruct) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))


INT = CInt(32, True)
UINT = CInt(32, False)
CHAR = CInt(8, True)
UCHAR = CInt(8, False)
SHORT = CInt(16, True)
LONG = CInt(64, True)
ULONG = CInt(64, False)
FLOAT = CFloat(32)
DOUBLE = CFloat(64)
VOIDT = CVoid()


def usual_arithmetic_conversion(a: CType, b: CType) -> CType:
    """Result type of a binary arithmetic op on ``a`` and ``b``."""
    if a.is_float or b.is_float:
        bits = max(
            a.bits if a.is_float else 0,
            b.bits if b.is_float else 0,
        )
        return CFloat(max(bits, 32))
    assert a.is_integer and b.is_integer
    bits = max(a.bits, b.bits, 32)  # integer promotion to at least int
    signed = True
    if (a.bits >= bits and not a.signed) or (b.bits >= bits and not b.signed):
        signed = False
    return CInt(bits, signed)
