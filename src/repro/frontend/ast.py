"""Abstract syntax tree of the mini-C language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .ctypes import CType


# ----- expressions -------------------------------------------------------


class Expr:
    """Base class of expressions."""

    line: int = 0


@dataclass
class IntLit(Expr):
    """Integer literal (with u/l suffix flags)."""
    value: int
    unsigned: bool = False
    long: bool = False


@dataclass
class FloatLit(Expr):
    """Floating point literal (``f`` suffix selects float32)."""
    value: float
    is_float32: bool = False


@dataclass
class NameRef(Expr):
    """Reference to a variable, parameter or global."""
    name: str


@dataclass
class Unary(Expr):
    """Prefix operator application (``- ! ~ & *``)."""
    op: str  # "-" "!" "~" "&" "*"
    operand: Expr


@dataclass
class Binary(Expr):
    """Infix binary operator application."""
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    """Plain or compound assignment."""
    op: str  # "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? a : b`` operator."""
    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class CallExpr(Expr):
    """Function call by name."""
    callee: str
    args: List[Expr]


@dataclass
class Index(Expr):
    """Array or pointer subscript ``base[index]``."""
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    """Struct member access (``.`` or ``->``)."""
    base: Expr
    name: str
    arrow: bool  # True for ->


@dataclass
class CastExpr(Expr):
    """Explicit C cast ``(type)expr``."""
    to: CType
    operand: Expr


@dataclass
class PostIncDec(Expr):
    """Postfix ``x++`` / ``x--``."""
    op: str  # "++" or "--"
    target: Expr


@dataclass
class PreIncDec(Expr):
    """Prefix ``++x`` / ``--x``."""
    op: str
    target: Expr


# ----- statements -------------------------------------------------------------


class Stmt:
    """Base class of statements."""

    line: int = 0


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its effects."""
    expr: Expr


@dataclass
class DeclStmt(Stmt):
    """A local variable declaration with optional initializer."""
    ctype: CType
    name: str
    init: Optional[Expr]


@dataclass
class Block(Stmt):
    """A brace-enclosed statement list."""
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    """``if``/``else`` statement."""
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt]


@dataclass
class While(Stmt):
    """``while`` loop."""
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    """``do { } while`` loop."""
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    """C-style ``for`` loop."""
    init: Optional[Union[Stmt, Expr]]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    """``return`` with optional value."""
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    """``break`` out of the innermost loop."""
    pass


@dataclass
class Continue(Stmt):
    """``continue`` to the innermost loop's latch."""
    pass


# ----- top level ------------------------------------------------------------


@dataclass
class Param:
    """One formal parameter (type + name)."""
    ctype: CType
    name: str


@dataclass
class FunctionDef:
    """A function definition or extern prototype."""
    return_type: CType
    name: str
    params: List[Param]
    body: Optional[Block]  # None for extern prototypes
    attributes: List[str] = field(default_factory=list)


@dataclass
class GlobalDef:
    """A global variable definition."""
    ctype: CType
    name: str
    init: Optional[Expr]  # or InitList
    is_extern: bool = False
    is_const: bool = False


@dataclass
class InitList(Expr):
    """Brace initializer list ``{a, b, ...}``."""
    elements: List[Expr]


@dataclass
class StructDef:
    """A named struct definition."""
    name: str
    fields: List[Tuple[str, CType]]


@dataclass
class TranslationUnit:
    """The parsed contents of one source file."""
    items: List[Union[FunctionDef, GlobalDef, StructDef]] = field(
        default_factory=list
    )
