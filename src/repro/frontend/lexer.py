"""Lexer for the mini-C language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List


KEYWORDS = frozenset(
    {
        "int", "unsigned", "signed", "char", "short", "long", "float",
        "double", "void", "struct", "if", "else", "while", "for", "do",
        "return", "break", "continue", "extern", "static", "const",
        "sizeof",
    }
)

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<float>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?|\d+[fF])
    | (?P<hex>0[xX][0-9a-fA-F]+)
    | (?P<int>\d+[uUlL]*)
    | (?P<char>'(\\.|[^'\\])')
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<op><<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|->|[-+*/%<>=!&|^~?:;,.(){}\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass
class Token:
    """One lexed token: kind, text, and source line."""
    kind: str  # "int" | "float" | "char" | "ident" | "keyword" | "op" | "eof"
    text: str
    line: int


class LexError(Exception):
    """Raised on characters the lexer cannot tokenize."""


def tokenize(source: str) -> List[Token]:
    """Split mini-C source into tokens (comments and whitespace dropped)."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexError(f"line {line}: unexpected character {source[pos]!r}")
        kind = match.lastgroup
        text = match.group()
        if kind not in ("ws", "comment"):
            if kind == "ident" and text in KEYWORDS:
                kind = "keyword"
            elif kind == "hex":
                kind = "int"
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens
