"""Mini-C frontend: lexer, parser, AST, and lowering to the IR."""

from .ctypes import (
    CArray,
    CFloat,
    CInt,
    CPtr,
    CStruct,
    CType,
    CVoid,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    UINT,
    VOIDT,
)
from .lexer import LexError, Token, tokenize
from .lower import LowerError, compile_c, lower
from .parser import CParseError, CParser, parse

__all__ = [
    "CArray", "CFloat", "CInt", "CParseError", "CParser", "CPtr",
    "CStruct", "CType", "CVoid", "DOUBLE", "FLOAT", "INT", "LONG",
    "LexError", "LowerError", "Token", "UINT", "VOIDT", "compile_c",
    "lower", "parse", "tokenize",
]
