"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from . import ast
from .ctypes import (
    CArray,
    CInt,
    CPtr,
    CStruct,
    CType,
    DOUBLE,
    FLOAT,
    VOIDT,
)
from .lexer import Token, tokenize


class CParseError(Exception):
    """Raised on malformed mini-C source."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")


_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_BINARY_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class CParser:
    """Parses a translation unit.  Use :func:`parse` instead."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs: Dict[str, CStruct] = {}

    # ----- token plumbing ----------------------------------------------------

    @property
    def tok(self) -> Token:
        """The current token."""
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        """Look ahead without consuming."""
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.tok
        self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        """Consume the token if it matches; else None."""
        token = self.tok
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        """Consume a required token or raise CParseError."""
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise CParseError(
                f"expected {want!r}, got {self.tok.text!r}", self.tok.line
            )
        return token

    def error(self, message: str) -> CParseError:
        """A CParseError at the current position."""
        return CParseError(message, self.tok.line)

    # ----- types ----------------------------------------------------------------

    def at_type(self) -> bool:
        """Whether the current token starts a type."""
        token = self.tok
        if token.kind != "keyword":
            return False
        return token.text in (
            "int", "unsigned", "signed", "char", "short", "long",
            "float", "double", "void", "struct", "const",
        )

    def parse_type(self) -> CType:
        """Parse a (possibly pointer) type."""
        while self.accept("keyword", "const"):
            pass
        base = self._parse_base_type()
        while self.accept("op", "*"):
            base = CPtr(base)
            while self.accept("keyword", "const"):
                pass
        return base

    def _parse_base_type(self) -> CType:
        token = self.tok
        if token.kind != "keyword":
            raise self.error(f"expected type, got {token.text!r}")
        text = token.text
        if text == "struct":
            self.advance()
            name = self.expect("ident").text
            struct = self.structs.get(name)
            if struct is None:
                struct = CStruct(name)
                self.structs[name] = struct
            return struct
        if text == "void":
            self.advance()
            return VOIDT
        if text == "float":
            self.advance()
            return FLOAT
        if text == "double":
            self.advance()
            return DOUBLE

        signed = True
        bits = 32
        saw_any = False
        while self.tok.kind == "keyword" and self.tok.text in (
            "unsigned", "signed", "int", "char", "short", "long"
        ):
            word = self.advance().text
            saw_any = True
            if word == "unsigned":
                signed = False
            elif word == "signed":
                signed = True
            elif word == "char":
                bits = 8
            elif word == "short":
                bits = 16
            elif word == "long":
                bits = 64
            elif word == "int":
                pass
        if not saw_any:
            raise self.error(f"expected type, got {text!r}")
        return CInt(bits, signed)

    # ----- top level -------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        """Parse the whole file."""
        unit = ast.TranslationUnit()
        while self.tok.kind != "eof":
            if (
                self.tok.kind == "keyword"
                and self.tok.text == "struct"
                and self.peek().kind == "ident"
                and self.peek(2).text == "{"
            ):
                unit.items.append(self._parse_struct_def())
                continue
            unit.items.append(self._parse_declaration())
        return unit

    def _parse_array_suffix(self, base: CType) -> CType:
        """``T name[A][B]`` is an A-array of B-arrays of T."""
        counts: List[int] = []
        while self.accept("op", "["):
            counts.append(int(self.expect("int").text.rstrip("uUlL"), 0))
            self.expect("op", "]")
        ctype = base
        for count in reversed(counts):
            ctype = CArray(ctype, count)
        return ctype

    def _parse_struct_def(self) -> ast.StructDef:
        self.expect("keyword", "struct")
        name = self.expect("ident").text
        self.expect("op", "{")
        fields: List[Tuple[str, CType]] = []
        while not self.accept("op", "}"):
            base = self.parse_type()
            while True:
                field_name = self.expect("ident").text
                ctype = self._parse_array_suffix(base)
                fields.append((field_name, ctype))
                if not self.accept("op", ","):
                    break
            self.expect("op", ";")
        self.expect("op", ";")
        struct = self.structs.get(name)
        if struct is None:
            struct = CStruct(name)
            self.structs[name] = struct
        struct.set_fields(fields)
        return ast.StructDef(name, fields)

    def _parse_declaration(self) -> Union[ast.FunctionDef, ast.GlobalDef]:
        is_extern = False
        is_const = False
        attributes: List[str] = []
        while self.tok.kind == "keyword" and self.tok.text in (
            "extern", "static", "const"
        ):
            word = self.advance().text
            if word == "extern":
                is_extern = True
            elif word == "const":
                is_const = True
        ctype = self.parse_type()
        name = self.expect("ident").text

        if self.accept("op", "("):
            params: List[ast.Param] = []
            if not self.accept("op", ")"):
                if self.tok.kind == "keyword" and self.tok.text == "void" \
                        and self.peek().text == ")":
                    self.advance()
                else:
                    while True:
                        param_type = self.parse_type()
                        param_name = ""
                        if self.tok.kind == "ident":
                            param_name = self.advance().text
                        while self.accept("op", "["):
                            # Array parameters decay to pointers.
                            if self.tok.kind == "int":
                                self.advance()
                            self.expect("op", "]")
                            param_type = CPtr(param_type)
                        params.append(ast.Param(param_type, param_name))
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
            if self.accept("op", ";"):
                return ast.FunctionDef(ctype, name, params, None, attributes)
            body = self._parse_block()
            return ast.FunctionDef(ctype, name, params, body, attributes)

        ctype = self._parse_array_suffix(ctype)
        init: Optional[ast.Expr] = None
        if self.accept("op", "="):
            init = self._parse_initializer()
        self.expect("op", ";")
        return ast.GlobalDef(ctype, name, init, is_extern, is_const)

    def _parse_initializer(self) -> ast.Expr:
        if self.accept("op", "{"):
            elements: List[ast.Expr] = []
            if not self.accept("op", "}"):
                while True:
                    elements.append(self._parse_initializer())
                    if not self.accept("op", ","):
                        break
                self.expect("op", "}")
            return ast.InitList(elements)
        return self.parse_assignment()

    # ----- statements --------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        self.expect("op", "{")
        block = ast.Block()
        while not self.accept("op", "}"):
            block.statements.append(self.parse_statement())
        return block

    def parse_statement(self) -> ast.Stmt:
        """Parse one statement."""
        token = self.tok
        if token.kind == "op" and token.text == "{":
            return self._parse_block()
        if token.kind == "keyword":
            text = token.text
            if text == "if":
                return self._parse_if()
            if text == "while":
                return self._parse_while()
            if text == "do":
                return self._parse_do_while()
            if text == "for":
                return self._parse_for()
            if text == "return":
                self.advance()
                value = None
                if not (self.tok.kind == "op" and self.tok.text == ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.Return(value)
            if text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break()
            if text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue()
            if self.at_type():
                return self._parse_decl_stmt()
        stmt = ast.ExprStmt(self.parse_expression())
        self.expect("op", ";")
        return stmt

    def _parse_decl_stmt(self) -> ast.Stmt:
        ctype = self.parse_type()
        decls: List[ast.Stmt] = []
        while True:
            name = self.expect("ident").text
            this_type = self._parse_array_suffix(ctype)
            init = None
            if self.accept("op", "="):
                init = self._parse_initializer()
            decls.append(ast.DeclStmt(this_type, name, init))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(decls)

    def _parse_if(self) -> ast.If:
        self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        otherwise = None
        if self.accept("keyword", "else"):
            otherwise = self.parse_statement()
        return ast.If(cond, then, otherwise)

    def _parse_while(self) -> ast.While:
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.While(cond, body)

    def _parse_do_while(self) -> ast.DoWhile:
        self.expect("keyword", "do")
        body = self.parse_statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(body, cond)

    def _parse_for(self) -> ast.For:
        self.expect("keyword", "for")
        self.expect("op", "(")
        init: Optional[Union[ast.Stmt, ast.Expr]] = None
        if not self.accept("op", ";"):
            if self.at_type():
                init = self._parse_decl_stmt()  # consumes the ';'
            else:
                init = ast.ExprStmt(self.parse_expression())
                self.expect("op", ";")
        cond = None
        if not self.accept("op", ";"):
            cond = self.parse_expression()
            self.expect("op", ";")
        step = None
        if not self.accept("op", ")"):
            step = self.parse_expression()
            self.expect("op", ")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body)

    # ----- expressions -----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        """Parse a full (comma) expression."""
        expr = self.parse_assignment()
        while self.accept("op", ","):
            rhs = self.parse_assignment()
            expr = ast.Binary(",", expr, rhs)
        return expr

    def parse_assignment(self) -> ast.Expr:
        """Parse an assignment-level expression."""
        lhs = self._parse_conditional()
        if self.tok.kind == "op" and self.tok.text in _ASSIGN_OPS:
            op = self.advance().text
            rhs = self.parse_assignment()
            return ast.Assign(op, lhs, rhs)
        return lhs

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self.accept("op", "?"):
            if_true = self.parse_assignment()
            self.expect("op", ":")
            if_false = self._parse_conditional()
            return ast.Conditional(cond, if_true, if_false)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_PRECEDENCE):
            return self._parse_unary()
        ops = _BINARY_PRECEDENCE[level]
        lhs = self._parse_binary(level + 1)
        while self.tok.kind == "op" and self.tok.text in ops:
            op = self.advance().text
            rhs = self._parse_binary(level + 1)
            lhs = ast.Binary(op, lhs, rhs)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "op":
            if token.text in ("-", "!", "~", "&", "*", "+"):
                self.advance()
                operand = self._parse_unary()
                if token.text == "+":
                    return operand
                return ast.Unary(token.text, operand)
            if token.text in ("++", "--"):
                self.advance()
                target = self._parse_unary()
                return ast.PreIncDec(token.text, target)
            if token.text == "(":
                # Either a cast or a parenthesised expression.
                saved = self.pos
                self.advance()
                if self.at_type():
                    ctype = self.parse_type()
                    if self.tok.text == ")":
                        self.advance()
                        operand = self._parse_unary()
                        return ast.CastExpr(ctype, operand)
                self.pos = saved
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(expr, index)
            elif self.accept("op", "."):
                name = self.expect("ident").text
                expr = ast.Member(expr, name, False)
            elif self.accept("op", "->"):
                name = self.expect("ident").text
                expr = ast.Member(expr, name, True)
            elif self.tok.kind == "op" and self.tok.text in ("++", "--"):
                op = self.advance().text
                expr = ast.PostIncDec(op, expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "int":
            self.advance()
            text = token.text
            unsigned = "u" in text.lower()
            is_long = "l" in text.lower()
            value = int(text.rstrip("uUlL"), 0)
            return ast.IntLit(value, unsigned, is_long)
        if token.kind == "float":
            self.advance()
            text = token.text
            is_f32 = text[-1] in "fF"
            return ast.FloatLit(float(text.rstrip("fF")), is_f32)
        if token.kind == "char":
            self.advance()
            body = token.text[1:-1]
            if body.startswith("\\"):
                table = {"\\n": 10, "\\t": 9, "\\0": 0, "\\r": 13, "\\\\": 92, "\\'": 39}
                value = table.get(body, ord(body[1]))
            else:
                value = ord(body)
            return ast.IntLit(value)
        if token.kind == "ident":
            name = self.advance().text
            if self.accept("op", "("):
                args: List[ast.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                return ast.CallExpr(name, args)
            return ast.NameRef(name)
        if token.kind == "op" and token.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {token.text!r}")


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C source into an AST."""
    return CParser(source).parse_translation_unit()
