"""Trap-aware execution observation and comparison.

An :class:`Observation` captures everything the oracle treats as
observable behaviour of one function call:

* completion status -- ``ok``, ``trap`` or ``timeout``;
* the returned value (pointer returns are normalized, addresses are
  not stable across module variants);
* final bytes of every original global (compiler-generated
  ``__rolag*`` tables are excluded) and of every caller buffer;
* the extern call trace, with pointer arguments normalized.

Trap policy: a transformed function must trap exactly when the
original does, but *which* trap fires first and the partial memory
state at the fault are implementation-defined -- legal instruction
scheduling inside a rolled loop can reorder independent faulting
operations.  So two trapping observations always compare equal, and
two completing observations compare fully.  A timeout
(:class:`~repro.ir.interp.StepLimitExceeded`) on either side makes the
pair inconclusive rather than a mismatch.
"""

from __future__ import annotations

import random
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faultinject import fire
from ..ir.compile_eval import CompiledProgram, make_machine
from ..ir.interp import Machine, StepLimitExceeded, TrapError
from ..ir.module import Function, Module
from ..ir.types import FloatType, IntType, PointerType
from ..ir.values import GlobalVariable

#: Globals whose name starts with one of these are compiler artifacts
#: (e.g. RoLAG mismatch tables), not program state.
_ARTIFACT_PREFIXES = ("__rolag",)

#: Extern-trace integers at or above this magnitude are treated as
#: addresses and normalized (matches ``tests/helpers.py``).
_POINTER_THRESHOLD = 4096

#: Default interpreter budget per observed call.
DEFAULT_STEP_LIMIT = 500_000

#: Default bytes allocated for a pointer argument with unknown layout.
DEFAULT_BUFFER_BYTES = 64


@dataclass(frozen=True)
class Observation:
    """One execution's observable behaviour (comparable, hashable)."""

    status: str  # "ok" | "trap" | "timeout"
    result: object = None
    trap_kind: str = ""
    globals_bytes: Tuple[Tuple[str, bytes], ...] = ()
    buffers: Tuple[bytes, ...] = ()
    extern_trace: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    steps: int = 0

    def summary(self) -> str:
        """A one-line human description."""
        if self.status == "ok":
            return f"ok result={self.result!r} steps={self.steps}"
        if self.status == "trap":
            return f"trap({self.trap_kind}) steps={self.steps}"
        return f"timeout steps={self.steps}"


@dataclass(frozen=True)
class ArgumentVector:
    """Concrete inputs for one call.

    ``values`` holds one entry per formal parameter: an ``int`` or
    ``float`` scalar, or ``bytes`` for a pointer parameter (a fresh
    buffer with those initial contents is allocated per run).
    """

    values: Tuple[object, ...]

    def describe(self) -> str:
        parts = []
        for value in self.values:
            if isinstance(value, bytes):
                parts.append(f"buffer[{len(value)}]={value.hex()}")
            else:
                parts.append(repr(value))
        return "(" + ", ".join(parts) + ")"


def _trap_kind(error: TrapError) -> str:
    message = str(error)
    if "by zero" in message:
        return "div-by-zero"
    if "out-of-bounds" in message:
        return "oob"
    if "unreachable" in message:
        return "unreachable"
    return "trap"


def _normalize_trace_args(args: Sequence[object]) -> Tuple[object, ...]:
    out: List[object] = []
    for arg in args:
        if isinstance(arg, int) and abs(arg) >= _POINTER_THRESHOLD:
            out.append("<ptr>")
        else:
            out.append(arg)
    return tuple(out)


def oracle_externs(module: Module) -> Dict[str, object]:
    """Deterministic, address-independent handlers for every extern.

    The interpreter's built-in default derives a value from the raw
    arguments, which include machine addresses for pointer parameters;
    addresses differ between an original and a transformed module once
    RoLAG appends lookup-table globals.  These handlers hash the
    *normalized* arguments instead, so both sides see identical extern
    behaviour.
    """

    handlers: Dict[str, object] = {}
    for fn in module.functions:
        if not fn.is_declaration:
            continue
        handlers[fn.name] = _make_handler(fn.name, fn.return_type)
    return handlers


def _make_handler(name: str, return_type):
    def handler(machine: Machine, args: Sequence[object]) -> object:
        material = repr((name, _normalize_trace_args(args)))
        seed = zlib.crc32(material.encode("utf-8")) & 0x7FFFFFFF
        if return_type.is_void:
            return None
        if isinstance(return_type, IntType):
            wrapped = seed & return_type.mask
            if return_type.bits > 1 and wrapped >= (1 << (return_type.bits - 1)):
                wrapped -= 1 << return_type.bits
            return wrapped
        if isinstance(return_type, FloatType):
            return float(seed % 1000)
        return 0  # pointer returns: null

    return handler


def program_for(module: Module, evaluator: str):
    """A shareable compilation cache, or ``None`` for the interpreter.

    Pass the result to every :func:`observe_call` against the same
    (unmutated) module so repeated observations pay lowering once.
    """
    if evaluator == "compiled":
        return CompiledProgram(module)
    if evaluator == "bytecode":
        from ..ir.bytecode_eval import BytecodeProgram

        return BytecodeProgram(module)
    return None


def observe_call(
    module: Module,
    fn_name: str,
    vector: ArgumentVector,
    step_limit: int = DEFAULT_STEP_LIMIT,
    evaluator: str = "interp",
    program: Optional[object] = None,
) -> Observation:
    """Run ``@fn_name`` on a fresh machine and capture the observation.

    ``evaluator`` selects the execution backend (see
    ``repro.ir.compile_eval``); observations are backend-independent
    and compare equal across evaluators, including ``steps``.
    ``program`` optionally shares one compiled form across many
    observations of the same module.
    """
    fire("difftest.observe")
    machine = make_machine(
        module, evaluator, step_limit=step_limit, program=program
    )
    for name, handler in oracle_externs(module).items():
        machine.register_extern(name, handler)
    fn = module.get_function(fn_name)
    if fn is None:
        raise KeyError(f"no function @{fn_name}")

    args: List[object] = []
    buffer_slots: List[Tuple[int, int]] = []
    for value in vector.values:
        if isinstance(value, bytes):
            address = machine.alloc(max(len(value), 1))
            machine.write_bytes(address, value)
            buffer_slots.append((address, len(value)))
            args.append(address)
        else:
            args.append(value)

    status, result, trap_kind = "ok", None, ""
    try:
        result = machine.call(fn, args)
    except StepLimitExceeded:
        return Observation(status="timeout", steps=machine.steps)
    except TrapError as error:
        status, trap_kind = "trap", _trap_kind(error)

    if status == "trap":
        # Partial state at a fault is implementation-defined: record
        # only that (and what kind of) a trap happened.
        return Observation(status="trap", trap_kind=trap_kind, steps=machine.steps)

    if isinstance(fn.return_type, PointerType):
        result = "<ptr>"
    globals_bytes = tuple(
        sorted(
            (name, content)
            for name, content in machine.global_contents().items()
            if not name.startswith(_ARTIFACT_PREFIXES)
        )
    )
    buffers = tuple(
        bytes(machine.read_bytes(address, size))
        for address, size in buffer_slots
    )
    trace = tuple(
        (name, _normalize_trace_args(call_args))
        for name, call_args in machine.extern_trace
    )
    return Observation(
        status="ok",
        result=result,
        globals_bytes=globals_bytes,
        buffers=buffers,
        extern_trace=trace,
        steps=machine.steps,
    )


def compare_observations(
    reference: Observation, candidate: Observation
) -> Optional[str]:
    """None when equivalent/inconclusive, else a mismatch description."""
    if "timeout" in (reference.status, candidate.status):
        return None  # inconclusive: budget exhausted, not a divergence
    if reference.status != candidate.status:
        return (
            f"status {reference.summary()} != {candidate.summary()}"
        )
    if reference.status == "trap":
        return None  # both trap: partial state is implementation-defined
    if reference.result != candidate.result:
        return f"result {reference.result!r} != {candidate.result!r}"
    if reference.globals_bytes != candidate.globals_bytes:
        ref = dict(reference.globals_bytes)
        cand = dict(candidate.globals_bytes)
        names = sorted(
            name
            for name in set(ref) | set(cand)
            if ref.get(name) != cand.get(name)
        )
        return f"globals differ: {', '.join('@' + n for n in names)}"
    if reference.buffers != candidate.buffers:
        return "argument buffer contents differ"
    if reference.extern_trace != candidate.extern_trace:
        return (
            f"extern trace {reference.extern_trace!r} != "
            f"{candidate.extern_trace!r}"
        )
    return None


# ----- argument vector generation ------------------------------------------

_INT_CANDIDATES = (0, 1, 2, 3, 5, 8, 15, 16, -1, -2, 7, 63)


def _scalar_for(ty, rng: random.Random) -> object:
    if isinstance(ty, IntType):
        if ty.bits == 1:
            return rng.randrange(2)
        if rng.random() < 0.5:
            value = rng.choice(_INT_CANDIDATES)
        else:
            value = rng.randrange(-(1 << 7), 1 << 7)
        # Sprinkle width-specific edges (INT_MIN / INT_MAX).
        if rng.random() < 0.15:
            value = rng.choice((ty.signed_min, ty.signed_max, -1))
        return value
    if isinstance(ty, FloatType):
        return float(rng.choice((0, 1, -1, 2, 10))) + rng.random()
    raise ValueError(f"cannot build a scalar of type {ty}")


def _buffer_for(rng: random.Random, size: int) -> bytes:
    words = size // 4
    values = [rng.randrange(-100, 100) for _ in range(words)]
    return struct.pack(f"<{words}i", *values) + b"\0" * (size - words * 4)


def make_argument_vectors(
    fn: Function,
    seed: int,
    count: int,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
) -> List[ArgumentVector]:
    """``count`` deterministic vectors matching ``fn``'s signature.

    Integer arguments are biased toward small values (many corpus
    functions use them as trip counts) plus occasional width edges;
    pointer arguments become patterned buffers of ``buffer_bytes``.
    """
    rng = random.Random((seed * 7_368_787 + len(fn.arguments)) & 0xFFFFFFFF)
    vectors: List[ArgumentVector] = []
    for _ in range(count):
        values: List[object] = []
        for argument in fn.arguments:
            if isinstance(argument.type, PointerType):
                values.append(_buffer_for(rng, buffer_bytes))
            else:
                values.append(_scalar_for(argument.type, rng))
        vectors.append(ArgumentVector(tuple(values)))
    return vectors
