"""Differential-testing oracle for miscompile hunting.

The subsystem that replaces LLVM's verifier + regression suites in the
original paper's methodology: every size win RoLAG reports can be
backed by a machine-checked semantic-equivalence argument.

* :mod:`.fuzzer` -- :class:`FunctionFuzzer`, a seeded generator of
  valid, terminating IR functions biased toward RoLAG-rollable shapes
  (store runs, call runs, reduction trees, mixed-lane blocks) that also
  plants deliberate trap hazards (division by possibly-zero values,
  stores through near-null pointers, out-of-range shift amounts).
* :mod:`.oracle` -- trap-aware observation capture and comparison:
  return value, global/buffer memory, extern call trace, trap status.
* :mod:`.bisect` -- on mismatch, replays the pipeline pass by pass to
  name the guilty pass and emits a minimized, parseable IR repro.
* :mod:`.runner` -- the ``repro difftest`` campaign loop and the
  driver's ``check_semantics=True`` entry point.
* :mod:`.parity` -- the same fuzzer corpus pointed at the evaluator
  backends themselves: compiled vs. interpreted observations must be
  identical, steps included.
"""

from .bisect import MismatchRecord, bisect_pipeline, minimize_record
from .fuzzer import FunctionFuzzer, FuzzConfig
from .oracle import (
    Observation,
    compare_observations,
    make_argument_vectors,
    observe_call,
    oracle_externs,
    program_for,
)
from .parity import check_backend_parity
from .runner import (
    DifftestReport,
    check_module_semantics,
    default_pipeline,
    run_difftest,
)

__all__ = [
    "DifftestReport",
    "FunctionFuzzer",
    "FuzzConfig",
    "MismatchRecord",
    "Observation",
    "bisect_pipeline",
    "check_backend_parity",
    "check_module_semantics",
    "compare_observations",
    "default_pipeline",
    "make_argument_vectors",
    "minimize_record",
    "observe_call",
    "oracle_externs",
    "program_for",
    "run_difftest",
]
