"""Cross-backend parity: every evaluator tier vs. the reference interpreter.

PR 2's differential oracle checks *transforms* against the
interpreter; this layer turns the same fuzzer corpus into a harness
for *evaluator backends* (``repro.ir.compile_eval``'s closure compiler
and ``repro.ir.bytecode_eval``'s superinstruction register machine).
Every fuzzed function is observed under each backend on identical
argument vectors, and the full
:class:`~repro.difftest.oracle.Observation` must compare **equal** --
not merely :func:`compare_observations`-equivalent.  That pins
results, final global/buffer bytes, extern traces, trap statuses *and
kinds*, and the dynamic step count, which the cost model's profile
guidance relies on.

With ``run_pipeline=True`` each case is additionally pushed through
the full cleanup + reroll + RoLAG pipeline and the transformed module
is held to the same standard, so rolled loops (the IR shape this
repository exists to produce) are always part of the parity corpus.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..rolag.config import RolagConfig
from .fuzzer import FunctionFuzzer, FuzzConfig
from .oracle import (
    DEFAULT_STEP_LIMIT,
    Observation,
    make_argument_vectors,
    observe_call,
    program_for,
)


#: Non-reference backends the parity sweep checks against the interpreter.
PARITY_BACKENDS = ("compiled", "bytecode")


def _describe_diff(
    reference: Observation, candidate: Observation, backend: str = "compiled"
) -> str:
    if reference == candidate:
        return "equal"
    parts = []
    for name in (
        "status",
        "result",
        "trap_kind",
        "globals_bytes",
        "buffers",
        "extern_trace",
        "steps",
    ):
        ref = getattr(reference, name)
        cand = getattr(candidate, name)
        if ref != cand:
            parts.append(f"{name}: interp={ref!r} {backend}={cand!r}")
    return "; ".join(parts)


def check_backend_parity(
    seed: int,
    count: int,
    vectors_per_case: int = 3,
    step_limit: int = DEFAULT_STEP_LIMIT,
    run_pipeline: bool = True,
    config: Optional[RolagConfig] = None,
    fuzz_config: Optional[FuzzConfig] = None,
    backends: tuple = PARITY_BACKENDS,
) -> List[str]:
    """Observe ``count`` fuzzed cases under every backend.

    Each backend in ``backends`` (default: all non-interpreter tiers)
    is compared against the reference interpreter.  Returns a list of
    human-readable mismatch descriptions; an empty list is the passing
    verdict.  Timeouts must also agree: all backends count steps
    identically, so a budget exhausted under one must be exhausted
    under the others at the same count.
    """
    fuzzer = FunctionFuzzer(seed, fuzz_config)
    mismatches: List[str] = []
    for index in range(count):
        module, fn_name = fuzzer.build(index)
        text = print_module(module)
        variants = [("fuzzed", parse_module(text))]
        if run_pipeline:
            from .runner import default_pipeline

            transformed = parse_module(text)
            try:
                for _stage_name, apply_stage in default_pipeline(config):
                    apply_stage(transformed)
                verify_module(transformed)
            except Exception:
                # A pipeline bug (invalid IR or a raising pass) is the
                # difftest campaign's finding, not a backend
                # divergence; skip the variant.
                pass
            else:
                variants.append(("transformed", transformed))

        fn = parse_module(text).get_function(fn_name)
        vectors = make_argument_vectors(
            fn, (seed * 1_000_003 + index) & 0x7FFFFFFF, vectors_per_case
        )
        for variant_name, variant in variants:
            programs = {}
            build_failed = False
            for backend in backends:
                try:
                    programs[backend] = program_for(variant, backend)
                except Exception as error:
                    mismatches.append(
                        f"seed={seed} index={index} {variant_name} "
                        f"@{fn_name}: {backend} backend failed to build: "
                        f"{type(error).__name__}: {error}"
                    )
                    build_failed = True
            if build_failed:
                continue
            for vector in vectors:
                try:
                    reference = observe_call(
                        variant, fn_name, vector, step_limit=step_limit
                    )
                except Exception as error:
                    mismatches.append(
                        f"seed={seed} index={index} {variant_name} "
                        f"@{fn_name} {vector.describe()}: evaluator "
                        f"error: {type(error).__name__}: {error}"
                    )
                    continue
                for backend in backends:
                    try:
                        candidate = observe_call(
                            variant,
                            fn_name,
                            vector,
                            step_limit=step_limit,
                            evaluator=backend,
                            program=programs[backend],
                        )
                    except Exception as error:
                        # An evaluator that raises (backend bug or
                        # injected fault) is itself a parity finding:
                        # report it per vector, structurally, and keep
                        # going.
                        mismatches.append(
                            f"seed={seed} index={index} {variant_name} "
                            f"@{fn_name} {vector.describe()}: {backend} "
                            f"evaluator error: "
                            f"{type(error).__name__}: {error}"
                        )
                        continue
                    if reference != candidate:
                        mismatches.append(
                            f"seed={seed} index={index} {variant_name} "
                            f"@{fn_name} {vector.describe()}: "
                            f"{_describe_diff(reference, candidate, backend)}"
                        )
    return mismatches
