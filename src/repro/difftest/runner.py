"""Differential-testing campaigns and the driver's semantics check.

:func:`run_difftest` is the ``repro difftest`` engine: fuzz ``count``
functions, push each through the full cleanup + reroll + RoLAG
pipeline, and compare observable behaviour on several argument vectors.
Every end-to-end divergence is bisected to the guilty pass and
minimized; anything that diverges end-to-end but fails to re-bisect is
reported as *unexplained* (the acceptance bar is zero of those).

:func:`check_module_semantics` is the lightweight entry point the batch
driver uses when ``check_semantics=True``: given the already-built
original and transformed modules for one corpus function, it replays a
few vectors and returns pass/fail plus human-readable details.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..faultinject import DeadlineExceeded, deadline_scope
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import VerificationError, verify_module
from ..rolag.config import RolagConfig
from ..transforms import default_cleanup_pipeline, reroll_loops
from ..rolag.pipeline import roll_loops_in_module
from .bisect import MismatchRecord, PipelineStage, bisect_pipeline, minimize_record
from .fuzzer import FunctionFuzzer, FuzzConfig
from .oracle import (
    DEFAULT_STEP_LIMIT,
    compare_observations,
    make_argument_vectors,
    observe_call,
    program_for,
)


def _per_function(fn_pass: Callable) -> Callable[[Module], int]:
    def apply(module: Module) -> int:
        total = 0
        for fn in module.functions:
            if not fn.is_declaration:
                total += fn_pass(fn)
        return total

    return apply


def default_pipeline(config: Optional[RolagConfig] = None) -> List[PipelineStage]:
    """The pipeline the size evaluation runs, as named difftest stages.

    Mirrors the driver: the -Os style cleanup pipeline, the reroll
    baseline, then RoLAG itself.  Per-stage verification is left to the
    caller (the campaign verifies after the whole pipeline and the
    bisector verifies after every stage).
    """
    config = config if config is not None else RolagConfig()
    stages: List[PipelineStage] = [
        (name, _per_function(fn_pass))
        for name, fn_pass in default_cleanup_pipeline(verify=False).passes
    ]
    stages.append(("reroll", _per_function(reroll_loops)))
    stages.append(
        ("rolag", lambda module: roll_loops_in_module(module, config=config))
    )
    return stages


@dataclass
class DifftestReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    cases: int
    vectors_per_case: int
    mismatches: List[MismatchRecord] = field(default_factory=list)
    #: End-to-end divergences that did not reproduce under per-pass
    #: replay -- a sign of nondeterminism, never acceptable.
    unexplained: List[str] = field(default_factory=list)
    #: Cases the campaign could not complete: a pipeline stage or the
    #: evaluator raised, or the per-case deadline expired.  Structured
    #: (origin + exception) instead of a traceback taking the run down.
    errors: List[str] = field(default_factory=list)
    trap_cases: int = 0
    timeout_cases: int = 0
    rolled_loops: int = 0
    repro_paths: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.mismatches
            and not self.unexplained
            and not self.errors
        )

    def summary(self) -> str:
        lines = [
            f"difftest: {self.cases} cases, seed {self.seed}, "
            f"{self.vectors_per_case} vectors/case",
            f"  rolled loops: {self.rolled_loops}",
            f"  cases observing a trap: {self.trap_cases}",
            f"  inconclusive (timeout) observations: {self.timeout_cases}",
            f"  mismatches: {len(self.mismatches)}"
            f" | unexplained: {len(self.unexplained)}"
            f" | errors: {len(self.errors)}",
        ]
        for record in self.mismatches:
            lines.append(
                f"  MISMATCH {record.origin}: pass '{record.stage}' -- "
                f"{record.detail}"
            )
        for note in self.unexplained:
            lines.append(f"  UNEXPLAINED {note}")
        for note in self.errors:
            lines.append(f"  ERROR {note}")
        for path in self.repro_paths:
            lines.append(f"  repro written: {path}")
        if self.ok:
            lines.append("  OK: no unexplained mismatches")
        return "\n".join(lines)


def run_difftest(
    seed: int,
    count: int,
    config: Optional[RolagConfig] = None,
    fuzz_config: Optional[FuzzConfig] = None,
    vectors_per_case: int = 3,
    step_limit: int = DEFAULT_STEP_LIMIT,
    repro_dir: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    evaluator: str = "interp",
    case_deadline: Optional[float] = None,
) -> DifftestReport:
    """Fuzz ``count`` functions and differentially test the pipeline.

    Each case is printed, reparsed, transformed and observed; the
    reference observation also comes from a reparse so that a
    printer/parser round-trip defect cannot masquerade as a pass bug.
    ``evaluator`` picks the execution backend for every observation
    (reference, candidate and the bisector's replays).

    One broken case never aborts the campaign: a pipeline stage or
    evaluator that raises -- including faults injected through
    ``repro.faultinject`` -- and a case that overruns ``case_deadline``
    are recorded as structured entries in
    :attr:`DifftestReport.errors` and the campaign moves on.
    """
    fuzzer = FunctionFuzzer(seed, fuzz_config)
    stages = default_pipeline(config)
    report = DifftestReport(
        seed=seed, cases=count, vectors_per_case=vectors_per_case
    )
    for index in range(count):
        if progress is not None:
            progress(index, count)
        module, fn_name = fuzzer.build(index)
        text = print_module(module)
        origin = f"fuzz seed={seed} index={index}"
        try:
            with deadline_scope(case_deadline):
                _run_difftest_case(
                    report, stages, text, fn_name, origin, seed, index,
                    vectors_per_case, step_limit, repro_dir, evaluator,
                )
        except DeadlineExceeded as error:
            report.errors.append(f"{origin}: case deadline exceeded "
                                 f"({error})")
        except Exception as error:
            report.errors.append(
                f"{origin}: {type(error).__name__}: {error}"
            )
    if progress is not None:
        progress(count, count)
    return report


def _run_difftest_case(
    report: DifftestReport,
    stages: List[PipelineStage],
    text: str,
    fn_name: str,
    origin: str,
    seed: int,
    index: int,
    vectors_per_case: int,
    step_limit: int,
    repro_dir: Optional[str],
    evaluator: str,
) -> None:
    """One campaign case: observe, transform, compare, bisect."""
    reference_module = parse_module(text)
    fn = reference_module.get_function(fn_name)
    vectors = make_argument_vectors(
        fn, (seed * 1_000_003 + index) & 0x7FFFFFFF, vectors_per_case
    )
    reference_program = program_for(reference_module, evaluator)
    reference = [
        observe_call(
            reference_module,
            fn_name,
            v,
            step_limit=step_limit,
            evaluator=evaluator,
            program=reference_program,
        )
        for v in vectors
    ]
    if any(obs.status == "trap" for obs in reference):
        report.trap_cases += 1
    report.timeout_cases += sum(
        1 for obs in reference if obs.status == "timeout"
    )

    # The reference module is only ever *read* above (observation runs
    # in per-machine memory, and the bisector replays from ``text``),
    # so the pipeline can consume it in place instead of paying a
    # second parse of the identical source.
    transformed = reference_module
    detail: Optional[str] = None
    try:
        for stage_name, apply_stage in stages:
            changed = apply_stage(transformed)
            if stage_name == "rolag":
                report.rolled_loops += int(changed or 0)
        verify_module(transformed)
    except VerificationError as error:
        detail = f"pipeline produced invalid IR: {error}"
    if detail is None:
        # The program compiles the *post-pipeline* IR: built only
        # after every stage has run and the module is verified.
        transformed_program = program_for(transformed, evaluator)
        for vector, expected in zip(vectors, reference):
            actual = observe_call(
                transformed,
                fn_name,
                vector,
                step_limit=step_limit,
                evaluator=evaluator,
                program=transformed_program,
            )
            detail = compare_observations(expected, actual)
            if detail is not None:
                break
    if detail is None:
        return

    record = bisect_pipeline(
        text,
        fn_name,
        stages,
        vectors,
        step_limit,
        origin=origin,
        evaluator=evaluator,
    )
    if record is None:
        report.unexplained.append(f"{origin}: {detail} (did not rebisect)")
        return
    record = minimize_record(record, stages, step_limit, evaluator=evaluator)
    record.origin = origin
    report.mismatches.append(record)
    if repro_dir is not None:
        os.makedirs(repro_dir, exist_ok=True)
        path = os.path.join(
            repro_dir, f"case{index:05d}_{record.stage}.ll"
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(record.to_text())
        report.repro_paths.append(path)


def check_module_semantics(
    original: Module,
    transformed: Module,
    *,
    seed: int,
    vectors_per_fn: int = 3,
    step_limit: int = 200_000,
    evaluator: str = "interp",
) -> Tuple[bool, List[str]]:
    """Replay a few vectors on both modules; (ok, mismatch details).

    Functions whose signatures the vector generator cannot synthesize
    (exotic parameter types) are skipped -- the check is best-effort
    evidence, not a proof.

    An evaluator that raises (a backend bug, or an injected fault)
    yields a structured ``evaluator error`` detail for that function
    rather than a traceback; cooperative deadline signals pass through
    so the driver can classify the job as a timeout.
    """
    details: List[str] = []
    try:
        original_program = program_for(original, evaluator)
        transformed_program = program_for(transformed, evaluator)
    except DeadlineExceeded:
        raise
    except Exception as error:
        return (
            False,
            [f"evaluator setup failed: {type(error).__name__}: {error}"],
        )
    for fn in original.functions:
        if fn.is_declaration:
            continue
        if transformed.get_function(fn.name) is None:
            details.append(f"@{fn.name}: missing from transformed module")
            continue
        try:
            vectors = make_argument_vectors(fn, seed, vectors_per_fn)
        except ValueError:
            continue
        for vector in vectors:
            try:
                reference = observe_call(
                    original,
                    fn.name,
                    vector,
                    step_limit=step_limit,
                    evaluator=evaluator,
                    program=original_program,
                )
                candidate = observe_call(
                    transformed,
                    fn.name,
                    vector,
                    step_limit=step_limit,
                    evaluator=evaluator,
                    program=transformed_program,
                )
            except DeadlineExceeded:
                raise
            except Exception as error:
                details.append(
                    f"@{fn.name} {vector.describe()}: evaluator error: "
                    f"{type(error).__name__}: {error}"
                )
                break
            detail = compare_observations(reference, candidate)
            if detail is not None:
                details.append(f"@{fn.name} {vector.describe()}: {detail}")
                break
    return (not details, details)
