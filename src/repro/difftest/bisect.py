"""Pass-level bisection and repro minimization.

When the oracle finds a mismatch between an original function and its
fully-transformed version, :func:`bisect_pipeline` replays the same
pipeline one pass at a time from the original IR text, observing after
every pass, and names the first pass whose output diverges from the
original behaviour.  :func:`minimize_record` then shrinks the
pre-guilty-pass IR by deleting use-free instructions while the
mismatch persists, producing a small, parseable repro
(:meth:`MismatchRecord.to_text`) suitable for checking into
``tests/repros/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..faultinject import DeadlineExceeded
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import VerificationError, verify_module
from .oracle import (
    ArgumentVector,
    DEFAULT_STEP_LIMIT,
    Observation,
    compare_observations,
    observe_call,
    program_for,
)

#: A named module transformation, e.g. ``("dce", run_dce_on_module)``.
PipelineStage = Tuple[str, Callable[[Module], object]]


@dataclass
class MismatchRecord:
    """Everything needed to reproduce one miscompile."""

    fn_name: str
    stage: str
    vector: ArgumentVector
    detail: str
    #: Parseable IR entering the guilty pass (the actual repro input).
    ir_before: str
    #: IR the guilty pass produced.
    ir_after: str
    expected: Observation
    actual: Observation
    #: Where the case came from (fuzzer seed/index, corpus path, ...).
    origin: str = ""
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        """A self-describing repro file: comments + parseable IR.

        The IR section parses with :func:`repro.ir.parse_module`; the
        leading ``;`` comments record how to replay it (see
        ``docs/difftest.md``).
        """
        lines = [
            "; difftest mismatch repro",
            f"; origin: {self.origin or 'unknown'}",
            f"; function: @{self.fn_name}",
            f"; guilty pass: {self.stage}",
            f"; vector: {self.vector.describe()}",
            f"; expected: {self.expected.summary()}",
            f"; actual (after {self.stage}): {self.actual.summary()}",
            f"; detail: {self.detail}",
        ]
        lines += [f"; note: {note}" for note in self.notes]
        lines.append(";")
        lines.append("; IR entering the guilty pass:")
        lines.append("")
        lines.append(self.ir_before.rstrip("\n"))
        lines.append("")
        return "\n".join(lines)


def _observe_all(
    module: Module,
    fn_name: str,
    vectors: Sequence[ArgumentVector],
    step_limit: int,
    evaluator: str = "interp",
) -> List[Observation]:
    # One compiled program per snapshot of the module: the bisector
    # mutates the module between observation rounds, so the cache must
    # not outlive this call.
    program = program_for(module, evaluator)
    return [
        observe_call(
            module,
            fn_name,
            vector,
            step_limit=step_limit,
            evaluator=evaluator,
            program=program,
        )
        for vector in vectors
    ]


def bisect_pipeline(
    ir_text: str,
    fn_name: str,
    stages: Sequence[PipelineStage],
    vectors: Sequence[ArgumentVector],
    step_limit: int = DEFAULT_STEP_LIMIT,
    origin: str = "",
    evaluator: str = "interp",
) -> Optional[MismatchRecord]:
    """Replay ``stages`` over ``ir_text`` and name the first guilty pass.

    Returns None when no stage diverges (the end-to-end mismatch did
    not reproduce -- which itself indicates nondeterminism and is
    reported by the caller).
    """
    reference_module = parse_module(ir_text)
    reference = _observe_all(
        reference_module, fn_name, vectors, step_limit, evaluator
    )

    module = parse_module(ir_text)
    for stage_name, apply_stage in stages:
        before_text = print_module(module)
        try:
            apply_stage(module)
            verify_module(module)
        except DeadlineExceeded:
            raise
        except VerificationError as error:
            # A pass that corrupts the IR is guilty by definition.
            return MismatchRecord(
                fn_name=fn_name,
                stage=stage_name,
                vector=vectors[0],
                detail=f"verifier: {error}",
                ir_before=before_text,
                ir_after=print_module(module),
                expected=reference[0],
                actual=Observation(status="trap", trap_kind="invalid-ir"),
                origin=origin,
            )
        except Exception as error:
            # So is a pass that raises outright (including injected
            # faults): name it instead of surfacing a bare traceback.
            return MismatchRecord(
                fn_name=fn_name,
                stage=stage_name,
                vector=vectors[0],
                detail=f"stage raised: {type(error).__name__}: {error}",
                ir_before=before_text,
                ir_after=print_module(module),
                expected=reference[0],
                actual=Observation(status="trap", trap_kind="stage-error"),
                origin=origin,
            )
        # Fresh program per stage: the stage just mutated the module.
        stage_program = program_for(module, evaluator)
        for vector, expected in zip(vectors, reference):
            actual = observe_call(
                module,
                fn_name,
                vector,
                step_limit=step_limit,
                evaluator=evaluator,
                program=stage_program,
            )
            detail = compare_observations(expected, actual)
            if detail is not None:
                return MismatchRecord(
                    fn_name=fn_name,
                    stage=stage_name,
                    vector=vector,
                    detail=detail,
                    ir_before=before_text,
                    ir_after=print_module(module),
                    expected=expected,
                    actual=actual,
                    origin=origin,
                )
    return None


def _mismatch_for(
    ir_text: str,
    fn_name: str,
    stages: Sequence[PipelineStage],
    vectors: Sequence[ArgumentVector],
    step_limit: int,
    evaluator: str = "interp",
) -> Optional[MismatchRecord]:
    try:
        return bisect_pipeline(
            ir_text, fn_name, stages, vectors, step_limit, evaluator=evaluator
        )
    except Exception:  # malformed candidate: not a usable reduction
        return None


def minimize_record(
    record: MismatchRecord,
    stages: Sequence[PipelineStage],
    step_limit: int = DEFAULT_STEP_LIMIT,
    max_rounds: int = 8,
    evaluator: str = "interp",
) -> MismatchRecord:
    """Shrink the repro while the mismatch persists.

    Two reductions are attempted, both validated by re-running the full
    bisection on the candidate: narrowing to the single mismatching
    vector, then repeatedly deleting use-free non-terminator
    instructions (and unread globals) from the original IR.  The guilty
    pass may legitimately shift during reduction; the record always
    reflects the final replay.
    """
    best = record
    vectors = [record.vector]
    current_text = record.ir_before

    reduced = _mismatch_for(
        current_text, record.fn_name, stages, vectors, step_limit, evaluator
    )
    if reduced is None:
        return best
    reduced.origin = record.origin
    best = reduced
    current_text = best.ir_before if _is_smaller(best, record) else current_text

    for _ in range(max_rounds):
        shrunk = _shrink_once(
            current_text, record.fn_name, stages, vectors, step_limit, evaluator
        )
        if shrunk is None:
            break
        current_text, best = shrunk
        best.origin = record.origin
    best.notes.append("minimized: use-free instruction shaving")
    return best


def _is_smaller(candidate: MismatchRecord, reference: MismatchRecord) -> bool:
    return len(candidate.ir_before) <= len(reference.ir_before)


def _shrink_once(
    ir_text: str,
    fn_name: str,
    stages: Sequence[PipelineStage],
    vectors: Sequence[ArgumentVector],
    step_limit: int,
    evaluator: str = "interp",
) -> Optional[Tuple[str, MismatchRecord]]:
    """Try deleting one use-free instruction; keep the first that works."""
    module = parse_module(ir_text)
    fn = module.get_function(fn_name)
    if fn is None:
        return None
    candidates = []
    for block in fn.blocks:
        for position, inst in enumerate(block.instructions):
            if inst.is_terminator or inst.uses:
                continue
            candidates.append((block.name, position))
    for block_name, position in reversed(candidates):
        candidate_module = parse_module(ir_text)
        candidate_fn = candidate_module.get_function(fn_name)
        target_block = next(
            (b for b in candidate_fn.blocks if b.name == block_name), None
        )
        if target_block is None or position >= len(target_block.instructions):
            continue
        target_block.instructions[position].erase_from_parent()
        try:
            verify_module(candidate_module)
        except VerificationError:
            continue
        candidate_text = print_module(candidate_module)
        record = _mismatch_for(
            candidate_text, fn_name, stages, vectors, step_limit, evaluator
        )
        if record is not None:
            return candidate_text, record
    return None
