"""Seeded generator of random-but-valid IR functions.

:class:`FunctionFuzzer` builds one fresh module per case index, always
containing a single ``@fuzz`` function of signature
``i32 (i32 %a, i32 %b, i32* %p)`` plus global arrays/scalars and opaque
extern declarations.  Generation is biased toward the shapes RoLAG can
roll -- unrolled store runs, extern call runs, reduction trees, joint
mixed-lane blocks -- so the oracle exercises the interesting paths of
the pipeline instead of fuzzing noise.

Generated functions are *valid* (the verifier accepts them) and
*terminating* (no back edges), but deliberately **not** trap-free: the
fuzzer plants division/remainder by possibly-zero values, stores
through near-null pointers behind data-dependent branches, and
out-of-range shift amounts, because trap behaviour and the
modulo-bit-width shift semantics are part of the contract the oracle
checks (see ``repro.ir.interp``).

Everything is derived from ``random.Random(seed, case index)`` state:
the same seed reproduces the same corpus on any machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import ArrayType, FunctionType, I32, I64, IntType, PointerType
from ..ir.values import ConstantInt, GlobalVariable, Value, zero_constant_for
from ..ir.verifier import verify_module

#: Interesting i32 operand values (INT_MIN, -1, widths, off-by-ones).
I32_EDGES = (0, 1, -1, 2, 7, 31, 32, 33, 63, 64, 2**31 - 1, -(2**31))

#: Weighted opcode deck for scalar arithmetic.
_ARITH_DECK = (
    ["add"] * 4 + ["sub"] * 3 + ["mul"] * 2
    + ["xor"] * 2 + ["and"] * 2 + ["or"] * 2
    + ["shl", "lshr", "ashr", "sdiv", "srem", "udiv", "urem"]
)

_SHIFT_AMOUNTS = (0, 1, 3, 5, 31, 32, 33, 64, 100)

_ICMP_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ugt")


@dataclass(frozen=True)
class FuzzConfig:
    """Tunables of the function generator."""

    #: i32 elements per global array and per caller buffer.
    array_len: int = 16
    #: Shape count per function (store runs, diamonds, ...).
    min_shapes: int = 2
    max_shapes: int = 5
    #: Plant trap hazards (maybe-zero divisors, near-null stores).
    allow_traps: bool = True
    #: Declare externs and generate call runs.
    allow_calls: bool = True
    #: Generate branchy shapes (diamonds, guarded hazards).
    allow_branches: bool = True


class FunctionFuzzer:
    """Reproducible source of difftest cases.

    >>> module, name = FunctionFuzzer(seed=0).build(17)
    """

    def __init__(self, seed: int, config: Optional[FuzzConfig] = None) -> None:
        self.seed = seed
        self.config = config or FuzzConfig()

    def build(self, index: int) -> Tuple[Module, str]:
        """Generate (and verify) the module for one case index."""
        rng = random.Random((self.seed * 1_000_003 + index) & 0xFFFFFFFF)
        module = _CaseBuilder(rng, self.config).build()
        verify_module(module)
        return module, "fuzz"


class _CaseBuilder:
    """Builds one module; single use."""

    def __init__(self, rng: random.Random, config: FuzzConfig) -> None:
        self.rng = rng
        self.config = config
        self.module = Module("difftest")
        array_ty = ArrayType(I32, config.array_len)
        self.arrays: List[GlobalVariable] = [
            self.module.add_global(
                f"g{i}", array_ty, zero_constant_for(array_ty)
            )
            for i in range(rng.randrange(1, 3))
        ]
        self.scalar = self.module.add_global(
            "s0", I32, ConstantInt(I32, rng.randrange(-50, 50))
        )
        self.externs = []
        if config.allow_calls:
            for i in range(rng.randrange(1, 3)):
                self.externs.append(
                    self.module.add_function(f"ext{i}", FunctionType(I32, [I32]))
                )
        self.fn = self.module.add_function(
            "fuzz",
            FunctionType(I32, [I32, I32, PointerType(I32)]),
            ["a", "b", "p"],
        )
        self.builder = IRBuilder(self.fn.add_block("entry"))
        #: i32 values usable as operands at the current insertion point.
        #: Only ever holds entry-path values (or merge phis), so every
        #: pool member dominates every later insertion point.
        self.pool: List[Value] = [self.fn.arguments[0], self.fn.arguments[1]]

    # ----- operand / arithmetic helpers ------------------------------------

    def _const(self) -> ConstantInt:
        rng = self.rng
        if rng.random() < 0.5:
            return ConstantInt(I32, rng.choice(I32_EDGES))
        return ConstantInt(I32, rng.randrange(-100, 100))

    def operand(self) -> Value:
        """A random i32 operand: pooled value or constant."""
        if self.rng.random() < 0.7:
            return self.rng.choice(self.pool)
        return self._const()

    def _safe_divisor(self, value: Value) -> Value:
        # (v & 7) | 1 is odd and nonzero: never traps.
        masked = self.builder.and_(value, ConstantInt(I32, 7))
        return self.builder.or_(masked, ConstantInt(I32, 1))

    def arith(self, record: bool = True) -> Value:
        """Emit one random binop at the insertion point."""
        rng = self.rng
        op = rng.choice(_ARITH_DECK)
        a = self.operand()
        b = self.operand()
        if op in ("sdiv", "udiv", "srem", "urem"):
            if not self.config.allow_traps or rng.random() < 0.6:
                b = self._safe_divisor(b)
            elif rng.random() < 0.5:
                # Maybe-zero divisor: traps on some argument vectors.
                b = self.builder.and_(b, ConstantInt(I32, 3))
        elif op in ("shl", "lshr", "ashr") and rng.random() < 0.5:
            # Deliberately include out-of-range constant amounts; the
            # documented semantics reduce them modulo the bit width.
            b = ConstantInt(I32, rng.choice(_SHIFT_AMOUNTS))
        value = self.builder.binop(op, a, b)
        if record:
            self.pool.append(value)
        return value

    def _array_slot(self, gv: GlobalVariable, index: int) -> Value:
        return self.builder.gep(
            gv.value_type,
            gv,
            [ConstantInt(I32, 0), ConstantInt(I32, index)],
        )

    def _buffer_slot(self, index: int) -> Value:
        return self.builder.gep(
            I32, self.fn.arguments[2], [ConstantInt(I32, index)]
        )

    def _slot(self, target, index: int) -> Value:
        if target is None:
            return self._buffer_slot(index)
        return self._array_slot(target, index)

    def _pick_target(self):
        """A store/load target: a global array, or None for the buffer."""
        if self.rng.random() < 0.35:
            return None
        return self.rng.choice(self.arrays)

    # ----- shapes ----------------------------------------------------------

    def shape_store_run(self) -> None:
        """An unrolled affine store run: ``t[base+k] = v + k*stride``."""
        rng = self.rng
        lanes = rng.randrange(3, 7)
        target = self._pick_target()
        base = rng.randrange(0, self.config.array_len - lanes + 1)
        value = self.arith() if rng.random() < 0.6 else self.operand()
        stride = rng.choice((0, 1, 2, 3, 5))
        for k in range(lanes):
            lane_value = value
            if stride and k:
                lane_value = self.builder.add(
                    value, ConstantInt(I32, k * stride)
                )
            self.builder.store(lane_value, self._slot(target, base + k))

    def shape_call_run(self) -> None:
        """A run of calls to one extern with affine arguments."""
        rng = self.rng
        if not self.externs:
            return self.shape_store_run()
        ext = rng.choice(self.externs)
        lanes = rng.randrange(3, 6)
        base = self.operand()
        acc = self.operand()
        for k in range(lanes):
            arg = self.builder.add(base, ConstantInt(I32, k))
            result = self.builder.call(ext, [arg])
            acc = self.builder.xor(acc, result)
        self.pool.append(acc)

    def shape_reduction(self) -> None:
        """An unrolled reduction tree over consecutive loads."""
        rng = self.rng
        width = rng.randrange(4, 9)
        target = self._pick_target()
        base = rng.randrange(0, self.config.array_len - width + 1)
        op = rng.choice(("add", "xor", "and", "or", "mul"))
        acc = self.builder.load(I32, self._slot(target, base))
        for k in range(1, width):
            element = self.builder.load(I32, self._slot(target, base + k))
            acc = self.builder.binop(op, acc, element)
        self.pool.append(acc)

    def shape_mixed_lanes(self) -> None:
        """Interleaved stores to two targets (joint-group bait)."""
        rng = self.rng
        lanes = rng.randrange(3, 6)
        target_a = self._pick_target()
        target_b = rng.choice(self.arrays)
        base_a = rng.randrange(0, self.config.array_len - lanes + 1)
        base_b = rng.randrange(0, self.config.array_len - lanes + 1)
        value = self.operand()
        for k in range(lanes):
            first = self.builder.add(value, ConstantInt(I32, k))
            second = self.builder.xor(value, ConstantInt(I32, k + 1))
            self.builder.store(first, self._slot(target_a, base_a + k))
            self.builder.store(second, self._slot(target_b, base_b + k))

    def shape_diamond(self) -> None:
        """A two-sided branch merged by phis (if-conversion bait)."""
        rng = self.rng
        cond = self.builder.icmp(
            rng.choice(_ICMP_PREDS), self.operand(), self.operand()
        )
        true_block = self.fn.add_block()
        false_block = self.fn.add_block()
        merge = self.fn.add_block()
        self.builder.cond_br(cond, true_block, false_block)

        # Branch bodies read only dominating (entry-path) values and do
        # not extend the pool; their results meet again in merge phis.
        self.builder.position_at_end(true_block)
        true_value = self.arith(record=False)
        self.builder.br(merge)
        self.builder.position_at_end(false_block)
        false_value = self.arith(record=False)
        self.builder.br(merge)

        self.builder.position_at_end(merge)
        phi = self.builder.phi(I32)
        phi.add_incoming(true_value, true_block)
        phi.add_incoming(false_value, false_block)
        self.pool.append(phi)

    def shape_scalar_update(self) -> None:
        """Read-modify-write of the global scalar."""
        op = self.rng.choice(("add", "xor", "sub", "or"))
        old = self.builder.load(I32, self.scalar)
        new = self.builder.binop(op, old, self.operand())
        self.builder.store(new, self.scalar)
        self.pool.append(new)

    def shape_width_mix(self) -> None:
        """Arithmetic at i64/i8 width with casts back to i32.

        Exercises the wrap-to-width contract between the constant
        folder and the interpreter at non-native widths.
        """
        rng = self.rng
        if rng.random() < 0.5:
            wide = self.builder.sext(self.operand(), I64)
            mixed = self.builder.binop(
                rng.choice(("add", "mul", "xor")),
                wide,
                ConstantInt(I64, rng.choice((1, -1, 2**40, -(2**35)))),
            )
            back = self.builder.trunc(mixed, I32)
        else:
            narrow_ty = IntType(8)
            narrow = self.builder.trunc(self.operand(), narrow_ty)
            mixed = self.builder.binop(
                rng.choice(("add", "mul", "shl")),
                narrow,
                ConstantInt(narrow_ty, rng.randrange(-128, 128)),
            )
            ext = self.builder.sext if rng.random() < 0.5 else self.builder.zext
            back = ext(mixed, I32)
        self.pool.append(back)

    def shape_trap_hazard(self) -> None:
        """A guarded near-null store: traps on some vectors only."""
        rng = self.rng
        if not (self.config.allow_traps and self.config.allow_branches):
            return self.shape_store_run()
        guard_value = self.operand()
        cond = self.builder.icmp(
            "slt", guard_value, ConstantInt(I32, rng.randrange(-20, 20))
        )
        hazard = self.fn.add_block()
        cont = self.fn.add_block()
        self.builder.cond_br(cond, hazard, cont)
        self.builder.position_at_end(hazard)
        # Addresses 0..63 form the interpreter's trap page; masking with
        # 63 keeps the fault deterministic and layout-independent.
        address = self.builder.and_(self.operand(), ConstantInt(I32, 63))
        pointer = self.builder.cast("inttoptr", address, PointerType(I32))
        self.builder.store(self.operand(), pointer)
        self.builder.br(cont)
        self.builder.position_at_end(cont)

    # ----- top level -------------------------------------------------------

    def build(self) -> Module:
        rng = self.rng
        shapes = [
            (self.shape_store_run, 4),
            (self.shape_reduction, 3),
            (self.shape_mixed_lanes, 2),
            (self.shape_scalar_update, 2),
            (self.shape_width_mix, 2),
        ]
        if self.config.allow_calls:
            shapes.append((self.shape_call_run, 2))
        if self.config.allow_branches:
            shapes.append((self.shape_diamond, 2))
        if self.config.allow_traps:
            shapes.append((self.shape_trap_hazard, 1))
        deck = [shape for shape, weight in shapes for _ in range(weight)]

        count = rng.randrange(self.config.min_shapes, self.config.max_shapes + 1)
        for _ in range(count):
            rng.choice(deck)()
            if rng.random() < 0.5:
                self.arith()

        result = self.operand()
        for _ in range(rng.randrange(1, 3)):
            result = self.builder.xor(result, self.operand())
        self.builder.ret(result)
        return self.module


def fuzz_corpus(
    seed: int, count: int, config: Optional[FuzzConfig] = None
) -> Sequence[Tuple[Module, str]]:
    """Materialize ``count`` cases (mostly for tests; the runner streams)."""
    fuzzer = FunctionFuzzer(seed, config)
    return [fuzzer.build(index) for index in range(count)]
