"""Convenience builder for constructing IR programmatically."""

from __future__ import annotations

from typing import Optional, Sequence

from .instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function
from .types import FloatType, IntType, Type, I32, I64
from .values import ConstantFloat, ConstantInt, Value


class IRBuilder:
    """Appends instructions at an insertion point, LLVM-style.

    >>> b = IRBuilder(block)
    >>> x = b.add(a, b.i32(1), name="x")
    """

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block
        self.insert_index: Optional[int] = None  # None = append at end

    # ----- positioning ------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> None:
        """Append subsequent instructions at the end of ``block``."""
        self.block = block
        self.insert_index = None

    def position_before(self, inst: Instruction) -> None:
        """Insert subsequent instructions right before ``inst``."""
        assert inst.parent is not None
        self.block = inst.parent
        self.insert_index = self.block.instructions.index(inst)

    @property
    def function(self) -> Function:
        """The function owning the current insertion block."""
        assert self.block is not None and self.block.parent is not None
        return self.block.parent

    def _insert(self, inst: Instruction, name: str = "") -> Instruction:
        assert self.block is not None, "builder has no insertion block"
        if name and not inst.type.is_void:
            inst.name = name
        elif not inst.type.is_void and not inst.name:
            inst.name = self.function.next_name()
        if self.insert_index is None:
            self.block.append(inst)
        else:
            self.block.insert(self.insert_index, inst)
            self.insert_index += 1
        return inst

    # ----- constants ----------------------------------------------------------

    def i1(self, value: int) -> ConstantInt:
        """An ``i1`` constant (0 or 1)."""
        return ConstantInt(IntType(1), value)

    def i8(self, value: int) -> ConstantInt:
        """An ``i8`` constant."""
        return ConstantInt(IntType(8), value)

    def i32(self, value: int) -> ConstantInt:
        """An ``i32`` constant."""
        return ConstantInt(I32, value)

    def i64(self, value: int) -> ConstantInt:
        """An ``i64`` constant."""
        return ConstantInt(I64, value)

    def f32(self, value: float) -> ConstantFloat:
        """A ``float`` constant."""
        return ConstantFloat(FloatType(32), value)

    def f64(self, value: float) -> ConstantFloat:
        """A ``double`` constant."""
        return ConstantFloat(FloatType(64), value)

    # ----- arithmetic ----------------------------------------------------------

    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit a binary instruction with the given opcode."""
        return self._insert(BinaryOp(opcode, lhs, rhs), name)

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit integer addition."""
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit integer subtraction."""
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit integer multiplication."""
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit signed integer division."""
        return self.binop("sdiv", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit bitwise AND."""
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit bitwise OR."""
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit bitwise XOR."""
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit a left shift."""
        return self.binop("shl", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit float addition."""
        return self.binop("fadd", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        """Emit float multiplication."""
        return self.binop("fmul", lhs, rhs, name)

    # ----- comparisons / select -------------------------------------------------

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        """Emit an integer/pointer comparison (``eq``, ``slt``, ...)."""
        return self._insert(ICmp(predicate, lhs, rhs), name)

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> FCmp:
        """Emit a float comparison (``olt``, ``oeq``, ...)."""
        return self._insert(FCmp(predicate, lhs, rhs), name)

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Select:
        """Emit ``select cond, a, b``."""
        return self._insert(Select(cond, a, b), name)

    # ----- casts -------------------------------------------------------------

    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Cast:
        """Emit a conversion with the given cast opcode."""
        return self._insert(Cast(opcode, value, to_type), name)

    def trunc(self, value: Value, to_type: Type, name: str = "") -> Cast:
        """Emit an integer truncation."""
        return self.cast("trunc", value, to_type, name)

    def zext(self, value: Value, to_type: Type, name: str = "") -> Cast:
        """Emit a zero extension."""
        return self.cast("zext", value, to_type, name)

    def sext(self, value: Value, to_type: Type, name: str = "") -> Cast:
        """Emit a sign extension."""
        return self.cast("sext", value, to_type, name)

    def bitcast(self, value: Value, to_type: Type, name: str = "") -> Cast:
        """Emit a lossless bit reinterpretation."""
        return self.cast("bitcast", value, to_type, name)

    # ----- memory ------------------------------------------------------------

    def alloca(self, ty: Type, name: str = "") -> Alloca:
        """Emit a stack allocation of one ``ty``."""
        return self._insert(Alloca(ty), name)

    def gep(
        self,
        source_type: Type,
        pointer: Value,
        indices: Sequence[Value],
        name: str = "",
    ) -> GetElementPtr:
        """Emit a ``getelementptr`` address computation."""
        return self._insert(GetElementPtr(source_type, pointer, indices), name)

    def load(self, ty: Type, pointer: Value, name: str = "") -> Load:
        """Emit a memory read of ``ty`` through ``pointer``."""
        return self._insert(Load(ty, pointer), name)

    def store(self, value: Value, pointer: Value) -> Store:
        """Emit a memory write of ``value`` through ``pointer``."""
        return self._insert(Store(value, pointer))

    # ----- calls / control flow --------------------------------------------------

    def call(self, callee: Value, args: Sequence[Value], name: str = "") -> Call:
        """Emit a direct call."""
        return self._insert(Call(callee, args), name)

    def phi(self, ty: Type, name: str = "") -> Phi:
        """Emit an (initially empty) phi node of type ``ty``."""
        return self._insert(Phi(ty), name)

    def br(self, target: BasicBlock) -> Br:
        """Emit an unconditional branch."""
        return self._insert(Br(target))

    def cond_br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Br:
        """Emit a conditional branch."""
        return self._insert(Br(cond, if_true, if_false))

    def ret(self, value: Optional[Value] = None) -> Ret:
        """Emit a return (with optional value)."""
        return self._insert(Ret(value))

    def unreachable(self) -> Unreachable:
        """Emit an ``unreachable`` terminator."""
        return self._insert(Unreachable())
