"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

Implements a hand-written lexer and recursive-descent parser for the
LLVM-flavoured syntax.  Forward references (phi operands, branch
targets, values used before their definition line) are resolved through
placeholder values that are patched once the function body is complete.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from .instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
    BINARY_OPCODES,
    CAST_OPCODES,
)
from .module import BasicBlock, Function, Module
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from .values import (
    Constant,
    ConstantAggregate,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantZero,
    UndefValue,
    Value,
)


class ParseError(Exception):
    """Raised on malformed IR text."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>[ \t\r\n]+)
    | (?P<comment>;[^\n]*)
    | (?P<local>%[A-Za-z0-9._$-]+)
    | (?P<global>@[A-Za-z0-9._$-]+)
    | (?P<float>-?\d+\.\d+(e[+-]?\d+)?)
    | (?P<int>-?\d+)
    | (?P<ident>[A-Za-z_][A-Za-z0-9._]*)
    | (?P<ellipsis>\.\.\.)
    | (?P<punct>[()\[\]{}<>,=:*])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:
        return f"Token({self.kind},{self.text!r})"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup
        text = match.group()
        line += text.count("\n")
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line))
        pos = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


class _Forward(Value):
    """Placeholder for a value referenced before its definition."""

    def __init__(self, name: str) -> None:
        super().__init__(VOID, name)


class Parser:
    """Parses a whole module.  Use :func:`parse_module` instead."""

    def __init__(self, source: str) -> None:
        self.tokens = _tokenize(source)
        self.pos = 0
        self.module = Module()

    # ----- token helpers --------------------------------------------------

    @property
    def tok(self) -> _Token:
        """The current token."""
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        """Consume and return the current token."""
        token = self.tok
        self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        """Consume the token if it matches; else None."""
        token = self.tok
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        """Consume a required token or raise ParseError."""
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise ParseError(f"expected {want!r}, got {self.tok.text!r}", self.tok.line)
        return token

    def error(self, message: str) -> ParseError:
        """A ParseError at the current position."""
        return ParseError(message, self.tok.line)

    # ----- types ------------------------------------------------------------

    def parse_type(self) -> Type:
        """Parse a type (with pointer suffixes)."""
        ty = self._parse_base_type()
        while self.accept("punct", "*"):
            ty = PointerType(ty)
        return ty

    def _parse_base_type(self) -> Type:
        token = self.tok
        if token.kind == "ident":
            text = token.text
            if text == "void":
                self.advance()
                return VOID
            if text == "float":
                self.advance()
                return FloatType(32)
            if text == "double":
                self.advance()
                return FloatType(64)
            match = re.fullmatch(r"i(\d+)", text)
            if match:
                self.advance()
                return IntType(int(match.group(1)))
            raise self.error(f"unknown type {text!r}")
        if token.kind == "local" and token.text.startswith("%struct."):
            self.advance()
            name = token.text[len("%struct."):]
            struct = StructType.get_named(name)
            if struct is None:
                struct = StructType((), name)
            return struct
        if self.accept("punct", "["):
            count = int(self.expect("int").text)
            self.expect("ident", "x")
            element = self.parse_type()
            self.expect("punct", "]")
            return ArrayType(element, count)
        if self.accept("punct", "{"):
            fields = []
            if not self.accept("punct", "}"):
                fields.append(self.parse_type())
                while self.accept("punct", ","):
                    fields.append(self.parse_type())
                self.expect("punct", "}")
            return StructType(fields)
        raise self.error(f"expected type, got {token.text!r}")

    # ----- module level -------------------------------------------------------

    def parse_module(self) -> Module:
        """Parse the whole module."""
        self._prescan_signatures()
        while self.tok.kind != "eof":
            if self.tok.kind == "local" and self.tok.text.startswith("%struct."):
                self._parse_struct_def()
            elif self.tok.kind == "global":
                self._parse_global()
            elif self.tok.kind == "ident" and self.tok.text == "define":
                self._parse_define()
            elif self.tok.kind == "ident" and self.tok.text == "declare":
                self._parse_declare()
            else:
                raise self.error(f"unexpected top-level token {self.tok.text!r}")
        return self.module

    def _prescan_signatures(self) -> None:
        """Register struct names and function signatures before bodies.

        Allows a function to call another one defined later in the file
        and lets types reference named structs defined anywhere.
        """
        saved = self.pos
        # First register all struct definitions (their bodies may be
        # needed to parse function signatures).
        i = 0
        while i < len(self.tokens):
            token = self.tokens[i]
            if (
                token.kind == "local"
                and token.text.startswith("%struct.")
                and i + 2 < len(self.tokens)
                and self.tokens[i + 1].text == "="
                and self.tokens[i + 2].text == "type"
            ):
                self.pos = i
                self._parse_struct_def()
                i = self.pos
                continue
            i += 1
        # Then register every define/declare signature.
        i = 0
        while i < len(self.tokens):
            token = self.tokens[i]
            if token.kind == "ident" and token.text in ("define", "declare"):
                self.pos = i + 1
                return_type = self.parse_type()
                name = self.expect("global").text[1:]
                self.expect("punct", "(")
                params: List[Type] = []
                vararg = False
                arg_names: List[str] = []
                if not self.accept("punct", ")"):
                    while True:
                        if self.accept("ellipsis"):
                            vararg = True
                            break
                        params.append(self.parse_type())
                        if self.tok.kind == "local":
                            arg_names.append(self.advance().text[1:])
                        if not self.accept("punct", ","):
                            break
                    self.expect("punct", ")")
                if self.module.get_function(name) is None:
                    self.module.add_function(
                        name, FunctionType(return_type, params, vararg), arg_names
                    )
                i = self.pos
                continue
            i += 1
        self.pos = saved

    def _parse_struct_def(self) -> None:
        token = self.advance()
        name = token.text[len("%struct."):]
        self.expect("punct", "=")
        self.expect("ident", "type")
        self.expect("punct", "{")
        fields = []
        if not self.accept("punct", "}"):
            fields.append(self.parse_type())
            while self.accept("punct", ","):
                fields.append(self.parse_type())
            self.expect("punct", "}")
        struct = StructType(fields, name)
        self.module.register_struct(struct)

    def _parse_global(self) -> None:
        name = self.advance().text[1:]
        self.expect("punct", "=")
        external = bool(self.accept("ident", "external"))
        is_const = False
        if self.accept("ident", "constant"):
            is_const = True
        else:
            self.expect("ident", "global")
        value_type = self.parse_type()
        initializer: Optional[Constant] = None
        if not external:
            initializer = self.parse_constant(value_type)
        self.module.add_global(name, value_type, initializer, is_const)

    def parse_constant(self, ty: Type) -> Constant:
        """Parse a constant of the given type."""
        token = self.tok
        if token.kind == "int":
            self.advance()
            if not isinstance(ty, IntType):
                raise self.error(f"integer literal for non-integer type {ty}")
            return ConstantInt(ty, int(token.text))
        if token.kind == "float":
            self.advance()
            return ConstantFloat(ty, float(token.text))
        if token.kind == "ident":
            if token.text in ("true", "false"):
                self.advance()
                return ConstantInt(IntType(1), 1 if token.text == "true" else 0)
            if token.text == "undef":
                self.advance()
                return UndefValue(ty)
            if token.text == "null":
                self.advance()
                return ConstantNull(ty)
            if token.text == "zeroinitializer":
                self.advance()
                return ConstantZero(ty)
        if token.kind == "punct" and token.text == "[":
            self.advance()
            elements = []
            if not self.accept("punct", "]"):
                while True:
                    elem_ty = self.parse_type()
                    elements.append(self.parse_constant(elem_ty))
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", "]")
            return ConstantAggregate(ty, elements)
        if token.kind == "punct" and token.text == "{":
            self.advance()
            elements = []
            if not self.accept("punct", "}"):
                while True:
                    elem_ty = self.parse_type()
                    elements.append(self.parse_constant(elem_ty))
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", "}")
            return ConstantAggregate(ty, elements)
        raise self.error(f"expected constant, got {token.text!r}")

    def _parse_declare(self) -> None:
        self.expect("ident", "declare")
        return_type = self.parse_type()
        name = self.expect("global").text[1:]
        self.expect("punct", "(")
        params: List[Type] = []
        vararg = False
        if not self.accept("punct", ")"):
            while True:
                if self.accept("ellipsis"):
                    vararg = True
                    break
                params.append(self.parse_type())
                if self.tok.kind == "local":
                    self.advance()
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        fn = self.module.get_function(name)
        if fn is None:
            fn = self.module.add_function(
                name, FunctionType(return_type, params, vararg)
            )
        while self.tok.kind == "ident" and self.tok.text in ("readnone", "readonly"):
            fn.attributes.add(self.advance().text)

    def _parse_define(self) -> None:
        self.expect("ident", "define")
        return_type = self.parse_type()
        name = self.expect("global").text[1:]
        self.expect("punct", "(")
        params: List[Type] = []
        arg_names: List[str] = []
        if not self.accept("punct", ")"):
            while True:
                params.append(self.parse_type())
                arg_tok = self.expect("local")
                arg_names.append(arg_tok.text[1:])
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        fn = self.module.get_function(name)
        if fn is None:
            fn = self.module.add_function(
                name, FunctionType(return_type, params), arg_names
            )
        self.expect("punct", "{")
        self._parse_body(fn)
        self.expect("punct", "}")

    # ----- function body ---------------------------------------------------

    def _parse_body(self, fn: Function) -> None:
        values: Dict[str, Value] = {f"%{a.name}": a for a in fn.arguments}
        forwards: Dict[str, _Forward] = {}

        def lookup_block(label: str) -> BasicBlock:
            key = f"%{label}"
            existing = values.get(key)
            if isinstance(existing, BasicBlock):
                return existing
            if key in forwards:
                placeholder = forwards[key]
            else:
                placeholder = _Forward(label)
                forwards[key] = placeholder
            return placeholder  # type: ignore[return-value]

        def lookup_local(name: str) -> Value:
            if name in values:
                return values[name]
            if name in forwards:
                return forwards[name]
            placeholder = _Forward(name[1:])
            forwards[name] = placeholder
            return placeholder

        def define(name: str, value: Value) -> None:
            if name in values:
                raise self.error(f"redefinition of {name}")
            values[name] = value
            if name in forwards:
                forwards.pop(name).replace_all_uses_with(value)

        block: Optional[BasicBlock] = None
        while not (self.tok.kind == "punct" and self.tok.text == "}"):
            # A label introduces a new block: `name:`
            if (
                self.tok.kind in ("ident", "int")
                and self.tokens[self.pos + 1].kind == "punct"
                and self.tokens[self.pos + 1].text == ":"
            ):
                label = self.advance().text
                self.advance()
                block = fn.add_block(label)
                define(f"%{label}", block)
                continue
            if block is None:
                block = fn.add_block("entry")
                define("%entry", block)
            self._parse_instruction(fn, block, lookup_local, lookup_block, define)

        unresolved = [name for name in forwards]
        if unresolved:
            raise self.error(f"unresolved references: {', '.join(unresolved)}")

    def _parse_operand(self, ty: Type, lookup_local) -> Value:
        token = self.tok
        if token.kind == "local":
            self.advance()
            return lookup_local(token.text)
        if token.kind == "global":
            self.advance()
            name = token.text[1:]
            target = self.module.get_global(name) or self.module.get_function(name)
            if target is None:
                raise self.error(f"unknown global @{name}")
            return target
        return self.parse_constant(ty)

    def _parse_instruction(self, fn, block, lookup_local, lookup_block, define) -> None:
        name: Optional[str] = None
        if self.tok.kind == "local":
            name = self.advance().text
            self.expect("punct", "=")
        inst = self._parse_instruction_rhs(fn, lookup_local, lookup_block)
        if name is not None:
            inst.name = name[1:]
            define(name, inst)
        block.append(inst)

    def _parse_instruction_rhs(self, fn, lookup_local, lookup_block):
        token = self.tok
        if token.kind != "ident":
            raise self.error(f"expected instruction, got {token.text!r}")
        op = token.text

        if op in BINARY_OPCODES:
            self.advance()
            ty = self.parse_type()
            lhs = self._parse_operand(ty, lookup_local)
            self.expect("punct", ",")
            rhs = self._parse_operand(ty, lookup_local)
            return BinaryOp(op, self._coerce(lhs, ty), self._coerce(rhs, ty))

        if op == "icmp" or op == "fcmp":
            self.advance()
            predicate = self.expect("ident").text
            ty = self.parse_type()
            lhs = self._parse_operand(ty, lookup_local)
            self.expect("punct", ",")
            rhs = self._parse_operand(ty, lookup_local)
            cls = ICmp if op == "icmp" else FCmp
            return cls(predicate, self._coerce(lhs, ty), self._coerce(rhs, ty))

        if op == "select":
            self.advance()
            cond_ty = self.parse_type()
            cond = self._parse_operand(cond_ty, lookup_local)
            self.expect("punct", ",")
            a_ty = self.parse_type()
            a = self._parse_operand(a_ty, lookup_local)
            self.expect("punct", ",")
            b_ty = self.parse_type()
            b = self._parse_operand(b_ty, lookup_local)
            return Select(cond, self._coerce(a, a_ty), self._coerce(b, b_ty))

        if op in CAST_OPCODES:
            self.advance()
            from_ty = self.parse_type()
            value = self._parse_operand(from_ty, lookup_local)
            self.expect("ident", "to")
            to_ty = self.parse_type()
            return Cast(op, self._coerce(value, from_ty), to_ty)

        if op == "getelementptr":
            self.advance()
            source_type = self.parse_type()
            self.expect("punct", ",")
            ptr_ty = self.parse_type()
            pointer = self._parse_operand(ptr_ty, lookup_local)
            indices = []
            index_types = []
            while self.accept("punct", ","):
                idx_ty = self.parse_type()
                indices.append(self._parse_operand(idx_ty, lookup_local))
                index_types.append(idx_ty)
            gep = GetElementPtr.__new__(GetElementPtr)
            result = GetElementPtr._result_type(source_type, indices)
            from .instructions import Instruction as _I
            _I.__init__(gep, result)
            gep.source_type = source_type
            gep.add_operand(self._coerce(pointer, ptr_ty))
            for idx in indices:
                gep.add_operand(idx)
            return gep

        if op == "load":
            self.advance()
            ty = self.parse_type()
            self.expect("punct", ",")
            ptr_ty = self.parse_type()
            pointer = self._parse_operand(ptr_ty, lookup_local)
            return Load(ty, self._coerce(pointer, ptr_ty))

        if op == "store":
            self.advance()
            val_ty = self.parse_type()
            value = self._parse_operand(val_ty, lookup_local)
            self.expect("punct", ",")
            ptr_ty = self.parse_type()
            pointer = self._parse_operand(ptr_ty, lookup_local)
            return Store(self._coerce(value, val_ty), self._coerce(pointer, ptr_ty))

        if op == "call":
            self.advance()
            self.parse_type()  # return type (redundant with callee)
            callee_tok = self.expect("global")
            callee = self.module.get_function(callee_tok.text[1:])
            if callee is None:
                raise self.error(f"unknown function {callee_tok.text}")
            self.expect("punct", "(")
            args = []
            if not self.accept("punct", ")"):
                while True:
                    arg_ty = self.parse_type()
                    args.append(
                        self._coerce(self._parse_operand(arg_ty, lookup_local), arg_ty)
                    )
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", ")")
            return Call(callee, args)

        if op == "phi":
            self.advance()
            ty = self.parse_type()
            phi = Phi(ty)
            while True:
                self.expect("punct", "[")
                value = self._parse_operand(ty, lookup_local)
                self.expect("punct", ",")
                label = self.expect("local").text[1:]
                self.expect("punct", "]")
                phi.add_incoming(self._coerce(value, ty), lookup_block(label))
                if not self.accept("punct", ","):
                    break
            return phi

        if op == "br":
            self.advance()
            if self.accept("ident", "label"):
                label = self.expect("local").text[1:]
                return Br(lookup_block(label))
            cond_ty = self.parse_type()
            cond = self._parse_operand(cond_ty, lookup_local)
            self.expect("punct", ",")
            self.expect("ident", "label")
            t = self.expect("local").text[1:]
            self.expect("punct", ",")
            self.expect("ident", "label")
            f = self.expect("local").text[1:]
            return Br(cond, lookup_block(t), lookup_block(f))

        if op == "ret":
            self.advance()
            if self.accept("ident", "void"):
                return Ret()
            ty = self.parse_type()
            value = self._parse_operand(ty, lookup_local)
            return Ret(self._coerce(value, ty))

        if op == "unreachable":
            self.advance()
            return Unreachable()

        if op == "alloca":
            self.advance()
            ty = self.parse_type()
            return Alloca(ty)

        raise self.error(f"unknown instruction {op!r}")

    @staticmethod
    def _coerce(value: Value, ty: Type) -> Value:
        """Give forward placeholders their real type once it is known."""
        if isinstance(value, _Forward) and value.type.is_void:
            value.type = ty
        return value


def parse_module(source: str) -> Module:
    """Parse IR text into a :class:`Module`."""
    return Parser(source).parse_module()


def parse_function(source: str) -> Function:
    """Parse IR text expected to contain exactly one function definition."""
    module = parse_module(source)
    defs = [f for f in module.functions if not f.is_declaration]
    if len(defs) != 1:
        raise ValueError("expected exactly one function definition")
    return defs[0]
